//! Cross-crate security-property tests: §6 of the paper, exercised through
//! the whole stack (simulated network → Tor → Bento → sandbox/conclave).

use bento::function::{Function, FunctionApi, FunctionRegistry};
use bento::manifest::Manifest;
use bento::protocol::{FunctionSpec, ImageKind};
use bento::testnet::BentoNetwork;
use bento::{BentoBoxNode, BentoClientNode, BentoEvent, MiddleboxPolicy};
use simnet::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// A function that tries to use Stem without having requested it.
struct SneakyFn {
    failed_circuits: u32,
}
impl Function for SneakyFn {
    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, _input: Vec<u8>) {
        // Its manifest requests NO stem calls: the firewall must refuse.
        api.build_circuit(None);
        api.output(b"tried".to_vec());
        api.output_end();
    }
    fn on_circuit_failed(&mut self, api: &mut FunctionApi<'_>, _circ: u64) {
        self.failed_circuits += 1;
        api.output(b"denied".to_vec());
    }
}

/// A function that stores one secret via the mediated filesystem.
struct SecretKeeper;
impl Function for SecretKeeper {
    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, input: Vec<u8>) {
        api.fs_write("secrets/payload", &input).expect("fs");
        api.output(b"stored".to_vec());
        api.output_end();
    }
}

fn registry() -> FunctionRegistry {
    fn make_sneaky(_p: &[u8]) -> Box<dyn Function> {
        Box::new(SneakyFn { failed_circuits: 0 })
    }
    fn make_keeper(_p: &[u8]) -> Box<dyn Function> {
        Box::new(SecretKeeper)
    }
    let mut r = FunctionRegistry::new();
    r.register("sneaky", make_sneaky);
    r.register("keeper", make_keeper);
    r
}

/// Run the standard connect/request/upload dance; returns session pieces.
fn setup(
    bn: &mut BentoNetwork,
    image: ImageKind,
    manifest: Manifest,
    t0: u64,
) -> (simnet::NodeId, bento::BoxConn, bento::tokens::Token) {
    let client = bn.add_bento_client("tester");
    bn.net.sim.run_until(secs(t0 + 2));
    let conn = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            n.bento
                .connect_box(ctx, &mut n.tor, &boxes[0])
                .expect("session")
        });
    bn.net.sim.run_until(secs(t0 + 5));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento.request_container(ctx, &mut n.tor, conn, image);
        });
    bn.net.sim.run_until(secs(t0 + 9));
    let (container, inv, _) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, _| n.container_ready(conn))
        .expect("container ready");
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest,
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(t0 + 13));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(n.upload_ok(conn), "{:?}", n.bento_events);
    });
    (client, conn, inv)
}

/// §5.3/§6.2: the Stem firewall blocks a function whose manifest did not
/// request circuit access, even when the node policy would allow it.
#[test]
fn stem_firewall_blocks_unrequested_circuits() {
    let mut bn = BentoNetwork::build(301, 1, MiddleboxPolicy::permissive(), registry);
    let (client, conn, inv) = setup(&mut bn, ImageKind::Plain, Manifest::minimal("sneaky"), 0);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento.invoke(ctx, &mut n.tor, conn, inv, vec![]);
        });
    bn.net.sim.run_until(secs(17));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        let out = n.output_bytes(conn);
        // Ordering of "tried"/"denied" depends on action-application order;
        // both must be present.
        let s = String::from_utf8_lossy(&out);
        assert!(s.contains("tried") && s.contains("denied"), "got {s:?}");
    });
    // The denial is logged for the operator.
    let bx = bn.boxes[0];
    bn.net.sim.with_node::<BentoBoxNode, _>(bx, |n, _| {
        assert!(n.bento.stem_violations() > 0, "violation recorded");
    });
}

/// §5.4/§6.2: with the SGX image, the operator's view of the function's
/// storage is ciphertext only — the secret never appears on the box's disk.
#[test]
fn operator_cannot_read_fs_protect_contents() {
    let mut bn = BentoNetwork::build(302, 1, MiddleboxPolicy::permissive(), registry);
    let manifest = Manifest::minimal("keeper").with_disk(1 << 20).with_sgx();
    let (client, conn, inv) = setup(&mut bn, ImageKind::Sgx, manifest, 0);
    let secret = b"the dissident list: alice, bob, carol".to_vec();
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento.invoke(ctx, &mut n.tor, conn, inv, secret.clone());
        });
    bn.net.sim.run_until(secs(18));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert_eq!(n.output_bytes(conn), b"stored");
    });
    // Operator-side inspection: nothing legible.
    let bx = bn.boxes[0];
    bn.net.sim.with_node::<BentoBoxNode, _>(bx, |n, _| {
        let views = n.bento.operator_storage_view();
        assert!(!views.is_empty(), "the function did store something");
        for (container, blobs) in views {
            for (id, ct) in blobs {
                assert!(
                    !ct.windows(9).any(|w| w == b"dissident"),
                    "container {container}: plaintext leaked in blob {id:?}"
                );
            }
        }
    });
}

/// §5.4: if the platform's TCB is stale (a published vulnerability), the
/// client's attestation check refuses the box before uploading anything.
#[test]
fn stale_tcb_box_fails_attestation() {
    let mut bn = BentoNetwork::build(303, 1, MiddleboxPolicy::permissive(), registry);
    // A vulnerability is published: IAS raises the minimum TCB above what
    // the (already provisioned) box platform runs.
    bn.ias.lock().expect("ias lock").set_min_tcb(99);
    let client = bn.add_bento_client("cautious");
    bn.net.sim.run_until(secs(2));
    let conn = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            n.bento
                .connect_box(ctx, &mut n.tor, &boxes[0])
                .expect("session")
        });
    bn.net.sim.run_until(secs(5));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento
                .request_container(ctx, &mut n.tor, conn, ImageKind::Sgx);
        });
    bn.net.sim.run_until(secs(10));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(
            n.bento_events
                .iter()
                .any(|e| matches!(e, BentoEvent::AttestationFailed(c, _) if *c == conn)),
            "client must refuse the unpatched box: {:?}",
            n.bento_events
        );
        assert!(n.container_ready(conn).is_none());
    });
}

/// §6.2: a function cannot connect to destinations the relay's exit policy
/// forbids — checked end-to-end in `sandbox_enforces_manifest_at_runtime`
/// (functions crate); here we check the *aggregate* function cap: a node
/// policy of max_functions=2 holds across distinct clients.
#[test]
fn function_cap_holds_across_clients() {
    let mut policy = MiddleboxPolicy::permissive();
    policy.max_functions = 2;
    let mut bn = BentoNetwork::build(304, 1, policy, registry);
    let (_c1, _conn1, _) = setup(
        &mut bn,
        ImageKind::Plain,
        Manifest::minimal("keeper").with_disk(1024),
        0,
    );
    let (_c2, _conn2, _) = setup(
        &mut bn,
        ImageKind::Plain,
        Manifest::minimal("keeper").with_disk(1024),
        13,
    );
    // A third client is refused.
    let c3 = bn.add_bento_client("third");
    bn.net.sim.run_until(secs(29));
    let conn3 = bn.net.sim.with_node::<BentoClientNode, _>(c3, |n, ctx| {
        let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
            .into_iter()
            .cloned()
            .collect();
        n.bento
            .connect_box(ctx, &mut n.tor, &boxes[0])
            .expect("session")
    });
    bn.net.sim.run_until(secs(33));
    bn.net.sim.with_node::<BentoClientNode, _>(c3, |n, ctx| {
        n.bento
            .request_container(ctx, &mut n.tor, conn3, ImageKind::Plain);
    });
    bn.net.sim.run_until(secs(37));
    bn.net.sim.with_node::<BentoClientNode, _>(c3, |n, _| {
        assert_eq!(n.rejection(conn3), Some("function limit reached"));
    });
}
