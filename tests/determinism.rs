//! Whole-stack determinism: two runs of the same seeded experiment produce
//! byte-identical outcomes. This is the property that makes every number
//! in EXPERIMENTS.md reproducible with `cargo run -p bench`.

use bento::manifest::Manifest;
use bento::protocol::{FunctionSpec, ImageKind};
use bento::testnet::BentoNetwork;
use bento::{BentoClientNode, MiddleboxPolicy};
use bento_functions::standard_registry;
use simnet::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// A full Bento session (connect → container → upload → invoke → output),
/// reduced to comparable numbers.
fn run_once(seed: u64) -> (u64, usize, Vec<u8>, [u8; 32]) {
    let mut bn = BentoNetwork::build(seed, 1, MiddleboxPolicy::permissive(), standard_registry);
    let client = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    let conn = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            n.bento
                .connect_box(ctx, &mut n.tor, &boxes[0])
                .expect("session")
        });
    bn.net.sim.run_until(secs(5));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento
                .request_container(ctx, &mut n.tor, conn, ImageKind::Plain);
        });
    bn.net.sim.run_until(secs(9));
    let (container, inv, _) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, _| n.container_ready(conn))
        .expect("container");
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: bento_functions::dropbox::Params {
                    max_gets: 2,
                    expiry_ms: 0,
                    max_bytes: 0,
                }
                .encode(),
                manifest: Manifest::minimal("dropbox").with_disk(1 << 20),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(13));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert!(n.upload_ok(conn));
            let mut put = vec![b'P'];
            put.extend_from_slice(&vec![0x11; 30_000]);
            n.bento.invoke(ctx, &mut n.tor, conn, inv, put);
        });
    bn.net.sim.run_until(secs(17));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento.invoke(ctx, &mut n.tor, conn, inv, b"G".to_vec());
        });
    bn.net.sim.run_until(secs(40));
    let events = bn.net.sim.stats().events;
    let (out_len, out_bytes) = bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        let b = n.output_bytes(conn);
        (b.len(), b)
    });
    let digest = onion_crypto::sha256::sha256(&out_bytes);
    (
        events,
        out_len,
        out_bytes[..8.min(out_bytes.len())].to_vec(),
        digest,
    )
}

#[test]
fn identical_seeds_identical_runs() {
    let a = run_once(77);
    let b = run_once(77);
    assert_eq!(a.0, b.0, "event counts match");
    assert_eq!(a, b, "full outcome matches");
}

#[test]
fn different_seeds_still_succeed() {
    // The protocol works under many path/keys choices, not just one lucky
    // seed.
    for seed in [1u64, 2, 3, 99, 1234] {
        let (_, out_len, _, _) = run_once(seed);
        assert!(out_len >= 30_000, "seed {seed}: got {out_len} bytes");
    }
}
