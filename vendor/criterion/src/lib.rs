//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros — over a plain wall-clock timing loop (median
//! of several samples, no statistical regression analysis).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark, scaling reported rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Passed to the closure under test; `iter` runs and times it.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Settings one measurement runs under.
#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 15,
            measurement_time: Duration::from_millis(400),
        }
    }
}

fn run_bench(
    name: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibrate: find an iteration count that takes roughly one sample's
    // share of the measurement budget.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_sample = settings.measurement_time.as_secs_f64() / settings.sample_size as f64;
        if b.elapsed.as_secs_f64() >= per_sample.min(0.05) || iters >= 1 << 30 {
            let target = per_sample.max(1e-4);
            let scale = target / b.elapsed.as_secs_f64().max(1e-9);
            iters = ((iters as f64 * scale).max(1.0)) as u64;
            break;
        }
        iters *= 4;
    }
    let mut samples: Vec<f64> = (0..settings.sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!(
            "  thrpt: {:>10.2} MiB/s",
            n as f64 / median / (1024.0 * 1024.0)
        ),
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:>12.0} elem/s", n as f64 / median)
        }
        None => String::new(),
    };
    println!("{name:<40} time: {:>12.1} ns/iter{rate}", median * 1e9);
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(3);
        self
    }

    /// Total time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.settings, self.throughput, &mut f);
        self
    }

    /// End the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.into(), Settings::default(), None, &mut f);
        self
    }

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: Settings::default(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running every group, honoring cargo's test/bench flags.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes bench binaries with `--test`; there is
            // nothing to test here, so exit quickly in that mode.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benches_run_and_scale() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(10));
        g.throughput(Throughput::Bytes(64));
        let mut count = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        g.finish();
        assert!(count > 0, "benchmark body executed");
    }
}
