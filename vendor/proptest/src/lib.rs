//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! reimplements the subset of proptest the workspace's property tests use:
//! the [`proptest!`]/[`prop_assert!`] macros, the [`strategy::Strategy`]
//! trait with `prop_map`, ranges/`any`/`Just`/tuples as strategies, and the
//! `collection::vec`, `array::uniform*`, `option::of`, `sample::select`,
//! and `prop_oneof!` combinators.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! seed instead), and string strategies interpret only the simple
//! `<class>{lo,hi}` regex shape the tests use. Case count defaults to 64
//! and follows the `PROPTEST_CASES` environment variable.

pub mod test_runner {
    /// Why a test case failed.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failed property with an explanation.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The per-case random source strategies draw from (SplitMix64).
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeded constructor; the seed is reported on failure.
        pub fn new(seed: u64) -> Self {
            TestRng(seed)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// How many cases each property runs (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Drive `f` over `cases` deterministic seeds; panic on first failure.
    pub fn run(cases: u64, name: &str, f: impl Fn(&mut TestRng) -> TestCaseResult) {
        // Stable name hash (FNV-1a) so reruns replay identical cases.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        for case in 0..cases {
            let seed = h ^ case.wrapping_mul(0x9e3779b97f4a7c15);
            let mut rng = TestRng::new(seed);
            if let Err(e) = f(&mut rng) {
                panic!("property '{name}' failed at case {case} (seed {seed:#018x}): {e}");
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A cheaply clonable type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between several strategies of one value type.
    #[derive(Clone)]
    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    (self.start as i128 + (wide % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    (lo as i128 + (wide % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_float_ranges!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// String strategies from a simplified regex: an optional char-class
    /// token followed by `{lo,hi}`. Anything unrecognized falls back to
    /// printable ASCII of length 0–32.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = match self.rfind('{').zip(self.rfind('}')) {
                Some((open, close)) if open < close => {
                    let body = &self[open + 1..close];
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().unwrap_or(0usize),
                            b.trim().parse().unwrap_or(32usize),
                        ),
                        None => {
                            let n = body.trim().parse().unwrap_or(8usize);
                            (n, n)
                        }
                    }
                }
                _ => (0, 32),
            };
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            // `\PC` (any non-control char) gets occasional multibyte
            // chars; other classes degrade to printable ASCII.
            let non_control = self.starts_with("\\PC");
            (0..len)
                .map(|_| {
                    if non_control && rng.below(8) == 0 {
                        ['é', 'Ω', '→', '🦀', '中', 'ß', '¿', '☂'][rng.below(8) as usize]
                    } else {
                        (0x20u8 + rng.below(0x5f) as u8) as char
                    }
                })
                .collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('a')
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($t:ident),+) => {
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        };
    }
    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);

    /// The strategy behind [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`uniform12`]/[`uniform32`].
    #[derive(Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// A 12-element array of values from `elem`.
    pub fn uniform12<S: Strategy>(elem: S) -> UniformArray<S, 12> {
        UniformArray(elem)
    }

    /// A 32-element array of values from `elem`.
    pub fn uniform32<S: Strategy>(elem: S) -> UniformArray<S, 32> {
        UniformArray(elem)
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`select`].
    #[derive(Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select from empty collection");
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniformly one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

/// The `prop::` path tests reach combinators through.
pub mod prop {
    pub use crate::{array, collection, option, sample, strategy};
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests: each `fn` runs its body over many generated
/// inputs. Parameters are `pat in strategy` or `name: Type` (shorthand for
/// `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                $crate::test_runner::case_count(),
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng; $($params)*);
                    #[allow(clippy::redundant_closure_call)]
                    let __proptest_outcome: $crate::test_runner::TestCaseResult = (|| {
                        { $body }
                        Ok(())
                    })();
                    __proptest_outcome
                },
            );
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Internal: bind one `proptest!` parameter list entry at a time.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(), $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Generated values respect range strategies and shorthand types.
        #[test]
        fn ranges_and_shorthand(a in 3u8..7, b in 10usize..=12, c: u16, flag: bool) {
            prop_assert!((3..7).contains(&a));
            prop_assert!((10..=12).contains(&b));
            let _ = (c, flag);
        }

        /// Collections honor their length bounds; maps apply.
        #[test]
        fn combinators(v in prop::collection::vec(any::<u8>(), 2..5),
                       arr in prop::array::uniform12(any::<u8>()),
                       opt in prop::option::of(1u8..3),
                       pick in prop::sample::select(vec![10u8, 20, 30]),
                       mapped in (0u8..4).prop_map(|x| x * 2),
                       s in "\\PC{0,16}",
                       choice in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(arr.len(), 12);
            if let Some(x) = opt { prop_assert!((1..3).contains(&x)); }
            prop_assert!([10, 20, 30].contains(&pick));
            prop_assert!(mapped % 2 == 0 && mapped <= 6);
            prop_assert!(s.chars().count() <= 16);
            prop_assert!((1..5).contains(&choice));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_seed() {
        crate::test_runner::run(8, "always_fails", |_rng| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}
