//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! provides the (small) API subset the workspace actually uses: the
//! [`Rng`]/[`RngCore`] traits, a seedable [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — not the upstream ChaCha12 StdRng, but the workspace only
//! relies on determinism-per-seed, never on a specific stream.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random `T`.
    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }

    /// Fill a byte buffer or array with random bytes.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_with(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen`] can produce from the uniform ("standard")
/// distribution.
pub trait SampleStandard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts. Blanket-implemented over
/// [`SampleUniform`] so the element type unifies with the range type during
/// inference (mirroring upstream rand's structure).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Sized {
    /// Uniform in `[lo, hi)` or, when `inclusive`, `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = u128::sample(rng) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
                lo + (hi - lo) * <$t>::sample(rng)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Buffers [`Rng::fill`] accepts.
pub trait Fill {
    /// Fill `self` from `rng`.
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a single `u64` (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's deterministic PRNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().unwrap());
            }
            // An all-zero state is the one fixed point; nudge it.
            if s == [0; 4] {
                let mut sm = SplitMix64(0x5eed);
                for word in s.iter_mut() {
                    *word = sm.next_u64();
                }
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 32];
        rng.fill(&mut buf);
        assert_ne!(buf, [0u8; 32]);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_ne!(v, sorted, "shuffle moved something");
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
