//! §9.4, implemented: multipath routing as a Bento function. One 2 MiB
//! resource is fetched in three byte-ranges over three separate Tor
//! circuits and reassembled at the box — no Tor modifications, just a
//! function.
//!
//!     cargo run -p bento --example multipath_fetch

use bento::protocol::{FunctionSpec, ImageKind};
use bento::testnet::BentoNetwork;
use bento::{BentoClient, BentoClientNode, MiddleboxPolicy};
use bento_functions::multipath::{self, MultipathRequest};
use bento_functions::standard_registry;
use simnet::{SimDuration, SimTime};
use tor_net::ports::HTTP_PORT;

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn main() {
    let mut bn = BentoNetwork::build(33, 1, MiddleboxPolicy::permissive(), standard_registry);
    let body: Vec<u8> = (0..(2u32 << 20)).map(|i| (i % 251) as u8).collect();
    let server = bn
        .net
        .add_web_server("web", vec![("/big".to_string(), vec![body.clone()])]);
    let alice = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));

    let conn = bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let boxes: Vec<_> = BentoClient::discover_boxes(&n.tor)
            .into_iter()
            .cloned()
            .collect();
        n.bento
            .connect_box(ctx, &mut n.tor, &boxes[0])
            .expect("session")
    });
    bn.net.sim.run_until(secs(5));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        n.bento
            .request_container(ctx, &mut n.tor, conn, ImageKind::Plain);
    });
    bn.net.sim.run_until(secs(8));
    let (container, invocation, _) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(alice, |n, _| n.container_ready(conn))
        .expect("container");
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let spec = FunctionSpec {
            params: vec![],
            manifest: multipath::manifest(),
        };
        n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
    });
    bn.net.sim.run_until(secs(12));
    println!("multipath function installed; fetching 2 MiB over 3 circuits...");
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        assert!(n.upload_ok(conn));
        let req = MultipathRequest {
            server,
            port: HTTP_PORT,
            path: "/big".into(),
            total_len: body.len() as u64,
            k: 3,
        };
        n.bento
            .invoke(ctx, &mut n.tor, conn, invocation, req.encode());
    });
    bn.net.sim.run_until(secs(120));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, _| {
        assert!(n.output_done(conn), "fetch completed");
        let got = n.output_bytes(conn);
        assert_eq!(got, body, "ranges reassembled in order");
        println!(
            "received {} KiB, byte-identical to the origin resource.",
            got.len() / 1024
        );
        println!(
            "see `cargo run -p bench --release --bin multipath_sweep` for the k-scaling ablation."
        );
    });
}
