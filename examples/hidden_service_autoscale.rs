//! §8: the hidden-service LoadBalancer. An operator installs the
//! LoadBalancer function on a Bento box; it establishes the introduction
//! points and publishes one descriptor. As clients pile on, it forwards
//! each INTRODUCE2 to the least-loaded replica, spinning replicas up on
//! other boxes past the watermark — replica creation is transparent to
//! clients, who never learn the hidden service nodes' identities.
//!
//!     cargo run -p bento --example hidden_service_autoscale

use bento::protocol::{FunctionSpec, ImageKind};
use bento::testnet::BentoNetwork;
use bento::{BentoClient, BentoClientNode, MiddleboxPolicy};
use bento_functions::load_balancer::{lb_manifest, LbParams, ServiceParams};
use bento_functions::standard_registry;
use simnet::{NodeId, SimDuration, SimTime};
use tor_net::netbuild::TestClientNode;
use tor_net::ports::{BENTO_PORT, HS_VIRTUAL_PORT};
use tor_net::{HiddenServiceHost, StreamTarget, TorEvent};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn main() {
    // Three Bento boxes: the balancer's plus two replica hosts.
    let mut bn = BentoNetwork::build(15, 3, MiddleboxPolicy::permissive(), standard_registry);
    let operator = bn.add_bento_client("operator");
    bn.net.sim.run_until(secs(2));

    let seed = [0xA7; 32];
    let file_len = 300_000u64;
    let onion = HiddenServiceHost::new(seed, 0, true).onion_addr();
    println!("service address: {}", onion.to_string_short());

    let replica_boxes: Vec<(NodeId, u16)> =
        bn.boxes[1..3].iter().map(|b| (*b, BENTO_PORT)).collect();
    let conn = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(operator, |n, ctx| {
            let boxes: Vec<_> = BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            n.bento
                .connect_box(ctx, &mut n.tor, &boxes[0])
                .expect("session")
        });
    bn.net.sim.run_until(secs(5));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(operator, |n, ctx| {
            n.bento
                .request_container(ctx, &mut n.tor, conn, ImageKind::Plain);
        });
    bn.net.sim.run_until(secs(8));
    let (container, invocation, _) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(operator, |n, _| n.container_ready(conn))
        .expect("container");
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(operator, |n, ctx| {
            let spec = FunctionSpec {
                params: LbParams {
                    service: ServiceParams { seed, file_len },
                    n_intro: 3,
                    max_per_replica: 1, // aggressive watermark for the demo
                    replica_boxes: replica_boxes.clone(),
                }
                .encode(),
                manifest: lb_manifest(),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(25));
    println!("LoadBalancer installed; descriptor published.");

    // Three clients connect in quick succession.
    let mut clients = Vec::new();
    for name in ["c1", "c2", "c3"] {
        clients.push(bn.net.add_client(name));
    }
    bn.net.sim.run_until(secs(27));
    let mut rend = Vec::new();
    for (i, &c) in clients.iter().enumerate() {
        bn.net.sim.run_until(secs(27 + i as u64));
        rend.push(bn.net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
            n.tor.connect_onion(ctx, onion).expect("connect")
        }));
    }
    bn.net.sim.run_until(secs(45));
    for (i, (&c, &r)) in clients.iter().zip(&rend).enumerate() {
        bn.net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
            assert!(
                n.has_event(|e| matches!(e, TorEvent::RendezvousReady(h) if *h == r)),
                "client {i} rendezvous"
            );
            let s = n
                .tor
                .open_stream(ctx, r, StreamTarget::Hs(HS_VIRTUAL_PORT))
                .unwrap();
            n.tor.send_stream(ctx, r, s, b"GET");
        });
    }
    bn.net.sim.run_until(secs(120));
    for (i, &c) in clients.iter().enumerate() {
        let got = bn.net.sim.with_node::<TestClientNode, _>(c, |n, _| {
            n.events
                .iter()
                .filter_map(|e| match e {
                    TorEvent::StreamData(_, _, d) => Some(d.len()),
                    _ => None,
                })
                .sum::<usize>()
        });
        println!("client {} downloaded {} KB", i + 1, got / 1024);
        assert_eq!(got as u64, file_len);
    }
    // Ask the balancer how many machines ended up serving.
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(operator, |n, ctx| {
            n.bento.invoke(ctx, &mut n.tor, conn, invocation, vec![]);
        });
    bn.net.sim.run_until(secs(130));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(operator, |n, _| {
            let out = n.output_bytes(conn);
            if out.len() >= 13 && out.starts_with(b"machines:") {
                let machines = u32::from_be_bytes([out[9], out[10], out[11], out[12]]);
                println!(
                    "balancer reports {machines} machine(s) serving (watermark 1 forced scale-up)"
                );
            }
        });
}
