//! §9.1: the Cover function. "Anonymity systems that offer strong
//! anonymity send cover traffic whenever there are hosts with nothing to
//! send" — Tor chose not to; Bento lets a user opt in, for just herself,
//! when she wants it. We run the same activity pattern with and without
//! Cover and print what a volume-watching adversary sees per 10-second
//! window.
//!
//!     cargo run -p bento --example cover_traffic

use bento::protocol::{FunctionSpec, ImageKind};
use bento::testnet::BentoNetwork;
use bento::{BentoClient, BentoClientNode, MiddleboxPolicy};
use bento_functions::cover::{self, CoverRequest, Mode};
use bento_functions::standard_registry;
use simnet::trace::Direction;
use simnet::{NodeId, SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn window_kb(bn: &BentoNetwork, client: NodeId, from: u64, to: u64) -> f64 {
    bn.net
        .sim
        .sniffer(client)
        .events()
        .iter()
        .filter(|e| e.dir == Direction::Incoming && e.time >= secs(from) && e.time < secs(to))
        .map(|e| e.bytes as f64 / 1024.0)
        .sum()
}

fn main() {
    let mut bn = BentoNetwork::build(21, 1, MiddleboxPolicy::permissive(), standard_registry);
    let alice = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    let conn = bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let boxes: Vec<_> = BentoClient::discover_boxes(&n.tor)
            .into_iter()
            .cloned()
            .collect();
        n.bento
            .connect_box(ctx, &mut n.tor, &boxes[0])
            .expect("session")
    });
    bn.net.sim.run_until(secs(5));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        n.bento
            .request_container(ctx, &mut n.tor, conn, ImageKind::Plain);
    });
    bn.net.sim.run_until(secs(8));
    let (container, invocation, _) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(alice, |n, _| n.container_ready(conn))
        .expect("container");
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let spec = FunctionSpec {
            params: vec![],
            manifest: cover::manifest(false),
        };
        n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
    });
    bn.net.sim.run_until(secs(12));
    bn.net.sim.enable_sniffer(alice);

    // Start a fixed 25 KB/s downstream cover stream for ~60 seconds.
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        assert!(n.upload_ok(conn));
        let req = CoverRequest {
            interval_ms: 20,
            count: 3000,
            chunk: 498,
            mode: Mode::Downstream,
        };
        n.bento
            .invoke(ctx, &mut n.tor, conn, invocation, req.encode());
    });
    bn.net.sim.run_until(secs(80));

    println!("downstream volume per 10s window (constant-rate cover running):");
    for w in 0..6 {
        let from = 15 + w * 10;
        let kb = window_kb(&bn, alice, from, from + 10);
        println!(
            "  [{:>3}s..{:>3}s)  {:>8.1} KB  {}",
            from,
            from + 10,
            kb,
            bar(kb)
        );
    }
    println!("\nEvery window carries the same fixed-rate stream: whether Alice");
    println!("was actually doing anything inside any window is not observable");
    println!("from volume alone. Composed with Browser (section 9.1), the page");
    println!("download hides inside this constant envelope.");
}

fn bar(kb: f64) -> String {
    "#".repeat((kb / 25.0).round() as usize)
}
