//! Quickstart: stand up a simulated Tor network with a Bento box, fetch its
//! middlebox node policy, spawn a container, upload the Dropbox function
//! over Tor, and use it.
//!
//!     cargo run -p bento --example quickstart
//!
//! This walks the entire §5 life cycle: discover → policy → container +
//! tokens → upload → invoke → shutdown.

use bento::protocol::{FunctionSpec, ImageKind};
use bento::testnet::BentoNetwork;
use bento::{BentoClient, BentoClientNode, BentoEvent, MiddleboxPolicy};
use bento_functions::{dropbox, standard_registry};
use simnet::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn main() {
    // A Tor network (authority, guards, exits, HSDirs) plus one Bento box.
    let mut bn = BentoNetwork::build(42, 1, MiddleboxPolicy::permissive(), standard_registry);
    let alice = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    println!("[t={}] network bootstrapped", bn.net.sim.now());

    // 1. Discover Bento boxes in the consensus and open a session (a Tor
    //    circuit terminating at the box, then a stream to its Bento port).
    let conn = bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let boxes: Vec<_> = BentoClient::discover_boxes(&n.tor)
            .into_iter()
            .cloned()
            .collect();
        println!("discovered {} bento box(es) in the consensus", boxes.len());
        let conn = n
            .bento
            .connect_box(ctx, &mut n.tor, &boxes[0])
            .expect("session");
        n.bento.get_policy(ctx, &mut n.tor, conn);
        conn
    });
    bn.net.sim.run_until(secs(6));

    // 2. Read the middlebox node policy the operator advertises.
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        for ev in &n.bento_events {
            if let BentoEvent::Policy(_, p) = ev {
                println!(
                    "box policy: {} syscalls, {} stem calls, {} MB memory, {} functions max",
                    p.syscalls.len(),
                    p.stem.len(),
                    p.max_memory >> 20,
                    p.max_functions
                );
            }
        }
        // 3. Request a container; the box returns invocation + shutdown tokens.
        n.bento
            .request_container(ctx, &mut n.tor, conn, ImageKind::Plain);
    });
    bn.net.sim.run_until(secs(10));
    let (container, invocation, shutdown) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(alice, |n, _| n.container_ready(conn))
        .expect("container ready");
    println!("container {container} ready (invocation + shutdown tokens received)");

    // 4. Upload the Dropbox function with its manifest.
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let spec = FunctionSpec {
            params: dropbox::Params {
                max_gets: 2,
                expiry_ms: 0,
                max_bytes: 0,
            }
            .encode(),
            manifest: dropbox::manifest(),
        };
        n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
    });
    bn.net.sim.run_until(secs(14));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        assert!(n.upload_ok(conn), "{:?}", n.bento_events);
        println!("dropbox function installed");
        // 5. Invoke: store a note in the Tor network.
        let mut put = vec![b'P'];
        put.extend_from_slice(b"meet at the usual place");
        n.bento.invoke(ctx, &mut n.tor, conn, invocation, put);
    });
    bn.net.sim.run_until(secs(18));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        println!(
            "put acknowledged: {:?}",
            String::from_utf8_lossy(&n.output_bytes(conn))
        );
        n.bento
            .invoke(ctx, &mut n.tor, conn, invocation, b"G".to_vec());
    });
    bn.net.sim.run_until(secs(22));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let all = n.output_bytes(conn);
        let note = &all[2..]; // after the "OK"
        println!("fetched back: {:?}", String::from_utf8_lossy(note));
        // 6. Shut the function down with the shutdown token.
        n.bento.shutdown(ctx, &mut n.tor, conn, shutdown);
    });
    bn.net.sim.run_until(secs(26));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, _| {
        assert!(n
            .bento_events
            .iter()
            .any(|e| matches!(e, BentoEvent::ShutdownAck(_))));
        println!("container shut down; done.");
    });
}
