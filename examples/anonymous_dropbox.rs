//! Figure 2: composing functions. Alice instructs Browser (on box A) to
//! deliver the fetched page to a Dropbox it deploys on box B, then goes
//! offline entirely. Later she comes back and fetches the page from the
//! Dropbox — she was not even online while the website was downloaded.
//!
//!     cargo run -p bento --example anonymous_dropbox

use bento::protocol::{FunctionSpec, ImageKind};
use bento::testnet::BentoNetwork;
use bento::tokens::Token;
use bento::{BentoClient, BentoClientNode, MiddleboxPolicy};
use bento_functions::browser::{self, BrowseRequest};
use bento_functions::standard_registry;
use bento_functions::web::SiteModel;
use simnet::{SimDuration, SimTime};
use tor_net::ports::{BENTO_PORT, HTTP_PORT};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn main() {
    let mut bn = BentoNetwork::build(8, 2, MiddleboxPolicy::permissive(), standard_registry);
    let site = SiteModel::generate(9, 77);
    let server = bn.net.add_web_server("web", site.server_pages());
    let box_b = bn.boxes[1];
    let alice = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));

    // Install Browser on box A.
    let conn = bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let boxes: Vec<_> = BentoClient::discover_boxes(&n.tor)
            .into_iter()
            .cloned()
            .collect();
        // Box A must be a *different* machine from the Dropbox host.
        let box_a = boxes.iter().find(|b| b.addr != box_b).expect("two boxes");
        println!(
            "box A: {:?} hosts Browser; box B gets the Dropbox",
            box_a.nickname
        );
        n.bento
            .connect_box(ctx, &mut n.tor, box_a)
            .expect("session")
    });
    bn.net.sim.run_until(secs(5));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        // Browser's manifest targets the SGX conclave image.
        n.bento
            .request_container(ctx, &mut n.tor, conn, ImageKind::Sgx);
    });
    bn.net.sim.run_until(secs(8));
    let (container, invocation, _) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(alice, |n, _| n.container_ready(conn))
        .expect("container");
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let spec = FunctionSpec {
            params: vec![],
            manifest: browser::manifest(true), // composition needs Stem calls
        };
        n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
    });
    bn.net.sim.run_until(secs(16));

    // "1. Install Browser+Dropbox" — then Alice goes offline.
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        assert!(n.upload_ok(conn), "upload: {:?}", n.rejection(conn));
        let req = BrowseRequest {
            server,
            port: HTTP_PORT,
            path: site.html_path(),
            padding: 0,
            dropbox_on: Some((box_b, BENTO_PORT)),
        };
        n.bento
            .invoke(ctx, &mut n.tor, conn, invocation, req.encode());
        println!("Alice kicked off Browser→Dropbox and went offline.");
    });

    // The network does the work while Alice is away.
    bn.net.sim.run_until(secs(120));
    let locator = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(alice, |n, _| n.output_bytes(conn));
    assert!(locator.starts_with(b"DROPBOX:"), "locator: {locator:?}");
    let token = Token::from_bytes(&locator[12..44]).expect("token");
    println!("Browser reports the page is parked at a Dropbox on box B.");

    // Alice returns later and fetches from box B directly.
    let conn2 = bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let boxes: Vec<_> = BentoClient::discover_boxes(&n.tor)
            .into_iter()
            .cloned()
            .collect();
        let b = boxes.iter().find(|b| b.addr == box_b).unwrap();
        n.bento.connect_box(ctx, &mut n.tor, b).unwrap()
    });
    bn.net.sim.run_until(secs(126));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        n.bento.invoke(ctx, &mut n.tor, conn2, token, b"G".to_vec());
    });
    bn.net.sim.run_until(secs(200));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, _| {
        let fetched = n.output_bytes(conn2);
        let page = bento_functions::compress::decompress(&fetched).expect("digest");
        println!(
            "Alice came back online and fetched the page: {} KB (decompressed {} KB).",
            fetched.len() / 1024,
            page.len() / 1024
        );
        println!("She was offline for the entire website download.");
    });
}
