//! The paper's motivating example (Figure 1 / §3): Alice fears a
//! fingerprinting adversary watching her link, so instead of browsing she
//! installs the Browser function on a Bento box. The function fetches the
//! page at the exit, compresses it into one digest, pads it, and streams
//! it back. We show what Alice gets — and what the adversary on her link
//! actually observes.
//!
//!     cargo run -p bento --example browse_unlinkable

use bento::protocol::{FunctionSpec, ImageKind};
use bento::testnet::BentoNetwork;
use bento::{BentoClient, BentoClientNode, MiddleboxPolicy};
use bento_functions::browser::{self, BrowseRequest};
use bento_functions::standard_registry;
use bento_functions::web::SiteModel;
use simnet::trace::Direction;
use simnet::{SimDuration, SimTime};
use tor_net::ports::HTTP_PORT;

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn main() {
    let mut bn = BentoNetwork::build(7, 1, MiddleboxPolicy::permissive(), standard_registry);
    let site = SiteModel::generate(3, 77);
    println!(
        "target page: {} ({} assets, {} KB total)",
        site.html_path(),
        site.html.assets.len(),
        site.total_bytes() / 1024
    );
    let server = bn.net.add_web_server("web", site.server_pages());
    let alice = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));

    // Install the Browser function in an SGX conclave (attested upload).
    let conn = bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let boxes: Vec<_> = BentoClient::discover_boxes(&n.tor)
            .into_iter()
            .cloned()
            .collect();
        n.bento
            .connect_box(ctx, &mut n.tor, &boxes[0])
            .expect("session")
    });
    bn.net.sim.run_until(secs(5));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        n.bento
            .request_container(ctx, &mut n.tor, conn, ImageKind::Sgx);
    });
    bn.net.sim.run_until(secs(9));
    let (container, invocation, _) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(alice, |n, _| n.container_ready(conn))
        .expect("conclave attested and ready");
    println!("conclave attested; uploading Browser over the attested channel");
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let spec = FunctionSpec {
            params: vec![],
            manifest: browser::manifest(false),
        };
        n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
    });
    bn.net.sim.run_until(secs(13));

    // The adversary starts watching Alice's link now.
    bn.net.sim.enable_sniffer(alice);
    let padding = 1 << 20;
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        assert!(n.upload_ok(conn));
        let req = BrowseRequest {
            server,
            port: HTTP_PORT,
            path: site.html_path(),
            padding,
            dropbox_on: None,
        };
        n.bento
            .invoke(ctx, &mut n.tor, conn, invocation, req.encode());
    });
    bn.net.sim.run_until(secs(120));

    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, _| {
        assert!(n.output_done(conn), "browse completed");
        let bytes = n.output_bytes(conn);
        println!(
            "\nAlice received {} KB (digest + padding)",
            bytes.len() / 1024
        );
    });
    let sniff = bn.net.sim.sniffer(alice);
    let up = sniff.total_bytes(Direction::Outgoing);
    let down = sniff.total_bytes(Direction::Incoming);
    println!("\nwhat the adversary on Alice's link saw:");
    println!("  upstream:   {:>8} bytes (one small invocation)", up);
    println!("  downstream: {:>8} bytes (a constant-size blob)", down);
    println!(
        "  downstream is a multiple-ish of the {} KB padding quantum —",
        padding / 1024
    );
    println!("  no per-asset bursts, no request/response dynamics to fingerprint.");
}
