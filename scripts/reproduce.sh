#!/usr/bin/env bash
# Regenerate every table and figure of the Bento paper from scratch.
# Results land in results/*.csv and results/*.txt; every sweep binary
# also exports its telemetry as results/TELEMETRY_<name>.json
# (schema bento-telemetry/v1; validated at the end by telemetry_check).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== building (release) =="
cargo build --release -p bench

echo "== static analysis: bento_lint determinism & safety rules =="
cargo run --release -p lint

echo "== dynamic determinism check: artifacts byte-identical across perturbations =="
cargo run --release -p bench --bin determinism_check

echo "== Table 1: WF attack accuracy (longest step, ~10-15 min) =="
cargo run --release -p bench --bin table1

echo "== Table 2: page download times =="
cargo run --release -p bench --bin table2

echo "== Figure 5: hidden-service LoadBalancer =="
cargo run --release -p bench --bin figure5

echo "== section 7.3: SGX scalability =="
cargo run --release -p bench --bin scalability

echo "== section 9.1: Cover ablation =="
cargo run --release -p bench --bin cover_ablation

echo "== section 9.3: Shard recovery =="
cargo run --release -p bench --bin shard_recovery

echo "== section 9.4: multipath sweep =="
cargo run --release -p bench --bin multipath_sweep

echo "== padding-quantum ablation =="
cargo run --release -p bench --bin padding_sweep

echo "== per-cell crypto data plane baseline =="
cargo run --release -p bench --bin bench_cells -- --label optimized

echo "== simulator throughput + parallel sweep harness (batched data plane) =="
cargo run --release -p bench --bin bench_sim -- --label optimized --batch on --telemetry full

echo "== sharded engine: scalability sweep (10^4 clients, shards 1/2/4/8) =="
cargo run --release -p bench --bin scalability_sweep

echo "== chaos sweep: fault injection vs goodput + recovery assertions =="
cargo run --release -p bench --bin chaos_sweep

echo "== telemetry artifacts: schema + overhead gate =="
cargo run --release -p bench --bin telemetry_check -- \
  --file results/TELEMETRY_bench_sim.json \
  --file results/TELEMETRY_table2.json \
  --file results/TELEMETRY_figure5.json \
  --file results/TELEMETRY_scalability.json \
  --file results/TELEMETRY_cover_ablation.json \
  --file results/TELEMETRY_multipath_sweep.json \
  --file results/TELEMETRY_padding_sweep.json \
  --file results/TELEMETRY_chaos_sweep.json \
  --file results/TELEMETRY_scalability_sweep.json \
  --overhead-gate 2.0

echo "== criterion microbenches =="
cargo bench --workspace

echo "done; see results/ and EXPERIMENTS.md"
