//! Determinism regression test for the parallel trial runner: a sweep run
//! through worker threads must be **byte-for-byte identical** to the same
//! sweep run sequentially — same per-trial `SimStats`, same sniffer traces,
//! same result order, same telemetry snapshots.
//!
//! Each trial is a full Tor fetch (client → 3-hop circuit → web server) on a
//! fresh simulator, so this also pins down that the pooled-buffer data plane
//! and in-place cell crypto stay deterministic under concurrent execution.

use bench::runner::{run_trials, run_trials_traced, Trial};
use simnet::trace::Direction;
use simnet::{SimDuration, SimTime};
use tor_net::client::TerminalReq;
use tor_net::netbuild::{NetworkBuilder, TestClientNode};
use tor_net::ports::HTTP_PORT;
use tor_net::stream_frame::encode_frame;
use tor_net::{StreamTarget, TorEvent};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// Everything observable about one trial, in comparable form: the run's
/// `SimStats` plus the client's full access-link trace.
#[derive(Debug, PartialEq, Eq)]
struct TrialRecord {
    seed: u64,
    stats: (u64, u64, u64, u64),
    /// (time ns, outgoing?, bytes, conn) per sniffed transmission.
    trace: Vec<(u64, bool, u32, u64)>,
}

/// Fetch `kib` KiB through a fresh 3-hop circuit seeded with `seed`, with a
/// sniffer on the client's link.
fn fetch_trial(seed: u64, kib: usize) -> TrialRecord {
    let file_len = kib << 10;
    let mut net = NetworkBuilder::new().seed(seed).middles(3).exits(2).build();
    let page = vec![vec![0x5Au8; file_len]];
    let server = net.add_web_server("web", vec![("/page".to_string(), page)]);
    let client = net.add_client("alice");
    net.sim.enable_sniffer(client);
    net.sim.run_until(secs(2));
    let circ = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        let path = n
            .tor
            .select_path(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
            .expect("exit path");
        n.tor.build_circuit(ctx, path).expect("circuit build")
    });
    net.sim.run_until(secs(4));
    let stream = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        assert!(n.tor.is_ready(circ), "circuit ready");
        n.tor
            .open_stream(ctx, circ, StreamTarget::Node(server, HTTP_PORT))
            .expect("stream")
    });
    net.sim.run_until(secs(5));
    net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        assert!(n.has_event(
            |e| matches!(e, TorEvent::StreamConnected(c, s) if *c == circ && *s == stream)
        ));
        n.tor
            .send_stream(ctx, circ, stream, &encode_frame(b"/page"));
    });
    loop {
        let now = net.sim.now();
        net.sim.run_until(now + SimDuration::from_secs(1));
        let got = net
            .sim
            .with_node::<TestClientNode, _>(client, |n, _| n.stream_len(circ, stream));
        if got >= file_len {
            break;
        }
        assert!(net.sim.now() < secs(300), "fetch stalled at {got} bytes");
    }
    let s = net.sim.stats();
    let trace = net
        .sim
        .sniffer(client)
        .events()
        .iter()
        .map(|e| (e.time.0, e.dir == Direction::Outgoing, e.bytes, e.conn.0))
        .collect();
    TrialRecord {
        seed,
        stats: (
            s.events,
            s.msgs_delivered,
            s.bytes_delivered,
            s.conns_opened,
        ),
        trace,
    }
}

fn jobs(seeds: &[u64]) -> Vec<Trial<TrialRecord>> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            // Stagger the fetch size so per-trial traces genuinely differ
            // (the client's access link sees the same cell schedule whatever
            // relays the seed picks).
            let kib = 32 + 8 * i;
            Box::new(move || fetch_trial(seed, kib)) as Trial<TrialRecord>
        })
        .collect()
}

#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let seeds = [11u64, 12, 13, 14];
    let sequential = run_trials(1, jobs(&seeds));
    let parallel = run_trials(3, jobs(&seeds));

    // Results come back in trial-index order regardless of scheduling.
    for (rec, &seed) in sequential.iter().zip(seeds.iter()) {
        assert_eq!(rec.seed, seed, "sequential results index-ordered");
    }
    for (rec, &seed) in parallel.iter().zip(seeds.iter()) {
        assert_eq!(rec.seed, seed, "parallel results index-ordered");
    }

    // And every observable — SimStats and the full sniffer trace — matches.
    assert_eq!(sequential, parallel);

    // Sanity: the trials did real work and differ across seeds, so the
    // equality above isn't vacuous. (Chunk packing coalesces many messages
    // into one serialization quantum, so the event count sits well below the
    // one-chunk-per-message era — ~300 events per fetch.)
    for rec in &sequential {
        assert!(rec.stats.0 > 200, "trial processed events: {:?}", rec.stats);
        assert!(!rec.trace.is_empty(), "sniffer saw traffic");
    }
    assert!(
        sequential[0].trace != sequential[1].trace,
        "different seeds produce different traces"
    );
}

#[test]
fn repeated_runs_are_reproducible() {
    // The same seed through the runner twice — including once on worker
    // threads — reproduces the exact same record.
    let a = run_trials(1, jobs(&[42]));
    let b = run_trials(2, jobs(&[42]));
    assert_eq!(a[0], b[0]);
}

#[cfg(feature = "telemetry-on")]
#[test]
fn telemetry_snapshots_are_byte_identical_across_thread_counts() {
    // Full mode so histograms and spans are held to the same standard as
    // counters. The mode is process-global; no other test in this binary
    // depends on it.
    telemetry::set_mode(telemetry::Mode::Full);
    let seeds = [21u64, 22, 23];
    let seq = run_trials_traced(1, jobs(&seeds));
    let par = run_trials_traced(3, jobs(&seeds));
    for (i, ((ra, sa), (rb, sb))) in seq.iter().zip(par.iter()).enumerate() {
        assert_eq!(ra, rb, "trial {i} results match");
        let (mut ja, mut jb) = (String::new(), String::new());
        sa.write_json(&mut ja, 0);
        sb.write_json(&mut jb, 0);
        assert_eq!(ja, jb, "trial {i} snapshot bytes match");
        assert!(
            sa.counters.get("simnet.events").copied().unwrap_or(0) > 200,
            "trial {i} recorded real telemetry (not a vacuous equality)"
        );
        assert!(
            sa.hists.contains_key("simnet.run_until"),
            "full mode captured the run_until span"
        );
    }

    // The rendered export document — merged totals plus per-trial snapshots
    // in index order — is byte-identical too, and passes the schema gate.
    let fold = |trials: &[(TrialRecord, telemetry::Snapshot)]| {
        let mut totals = telemetry::Snapshot::default();
        for (_, s) in trials {
            totals.merge(s);
        }
        let snaps: Vec<telemetry::Snapshot> = trials.iter().map(|(_, s)| s.clone()).collect();
        telemetry::export::render("determinism", telemetry::Mode::Full, &totals, Some(&snaps))
    };
    let doc_seq = fold(&seq);
    let doc_par = fold(&par);
    assert_eq!(doc_seq, doc_par, "export bytes match across thread counts");
    telemetry::export::validate(&doc_seq).expect("export validates against the v1 schema");
}
