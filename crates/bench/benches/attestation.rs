//! §5.4: attestation and attested-channel overhead. The paper's claim is
//! that conclave overheads are nominal next to Tor circuit latency; the
//! `page_load` bench provides the circuit-side number to compare with.

use conclave::attest::Ias;
use conclave::channel::AttestedChannel;
use conclave::enclave::Enclave;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

fn bench_attestation(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut ias = Ias::new([1u8; 32], 3);
    let platform = ias.provision_platform(1, &mut rng);
    let enclave = Enclave::create(1, b"bento image", 24 << 20, 3);

    c.bench_function("attest/quote", |b| {
        b.iter(|| platform.quote(black_box(&enclave), [7u8; 32]))
    });
    let quote = platform.quote(&enclave, [7u8; 32]);
    c.bench_function("attest/ias_verify_and_sign", |b| {
        b.iter(|| ias.verify_quote(black_box(&quote)).unwrap())
    });
    let report = ias.verify_quote(&quote).unwrap();
    let vk = ias.verify_key();
    c.bench_function("attest/client_verify_report", |b| {
        b.iter(|| report.verify(black_box(&vk), black_box(&quote)).unwrap())
    });
    c.bench_function("attest/full_channel_establishment", |b| {
        b.iter(|| {
            let (state, hello) = AttestedChannel::client_hello(&mut rng);
            let (reply, _srv) =
                AttestedChannel::server_respond(&mut rng, &enclave, &platform, &mut ias, &hello)
                    .unwrap();
            AttestedChannel::client_finish(&state, &reply, &vk, &enclave.measurement).unwrap()
        })
    });
}

criterion_group!(benches, bench_attestation);
criterion_main!(benches);
