//! Classifier fit/predict cost on a synthetic closed world.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wfp::features::extract;
use wfp::knn::Knn;
use wfp::trace::{Packet, Trace};

fn synthetic_corpus(n_labels: usize, visits: usize) -> Vec<Trace> {
    let mut out = Vec::new();
    for v in 0..visits {
        for l in 0..n_labels {
            let n = 50 + l * 11 + v;
            let packets = (0..n)
                .map(|i| Packet {
                    t: i as f64 * 0.01,
                    signed_size: if i % (l + 2) == 0 { 514.0 } else { -498.0 },
                })
                .collect();
            out.push(Trace { label: l, packets });
        }
    }
    out
}

fn bench_attack(c: &mut Criterion) {
    let corpus = synthetic_corpus(50, 8);
    let x: Vec<Vec<f64>> = corpus.iter().map(extract).collect();
    let y: Vec<usize> = corpus.iter().map(|t| t.label).collect();
    c.bench_function("wfp/feature_extract", |b| {
        b.iter(|| extract(black_box(&corpus[0])))
    });
    c.bench_function("wfp/knn_fit_400", |b| b.iter(|| Knn::fit(3, &x, &y)));
    let model = Knn::fit(3, &x, &y);
    c.bench_function("wfp/knn_predict", |b| {
        b.iter(|| model.predict(black_box(&x[17])))
    });
}

criterion_group!(benches, bench_attack);
criterion_main!(benches);
