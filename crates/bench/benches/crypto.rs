//! Microbenchmarks of the crypto substrate: these set the per-cell and
//! per-handshake cost floor for everything in the reproduction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use onion_crypto::aead::{open_in_place, seal_in_place, AeadKey};
use onion_crypto::chacha20::ChaCha20;
use onion_crypto::hashsig::MerkleSigner;
use onion_crypto::hmac::hmac_sha256;
use onion_crypto::ntor;
use onion_crypto::sha256::{sha256, Sha256};
use onion_crypto::x25519::{x25519_base, StaticSecret};
use rand::SeedableRng;

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256/{size}"), |b| {
            b.iter(|| sha256(black_box(&data)))
        });
    }
    g.bench_function("hmac_sha256/512", |b| {
        let data = vec![1u8; 512];
        b.iter(|| hmac_sha256(b"key", black_box(&data)))
    });
    // The running-digest peek relay crypto does once per cell.
    g.bench_function("sha256/clone_finalize_509", |b| {
        let mut h = Sha256::new();
        h.update(&[0xCD; 509]);
        b.iter(|| black_box(&h).clone_finalize())
    });
    g.finish();
}

fn bench_aead(c: &mut Criterion) {
    let mut g = c.benchmark_group("aead");
    let key = AeadKey::from_master(&[42u8; 32]);
    for size in [512usize, 16 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("seal_open_in_place/{size}"), |b| {
            let mut buf = vec![0xA5u8; size];
            b.iter(|| {
                seal_in_place(&key, &[1u8; 12], b"aad", &mut buf);
                open_in_place(&key, &[1u8; 12], b"aad", &mut buf).expect("roundtrip");
            })
        });
    }
    g.finish();
}

fn bench_cipher(c: &mut Criterion) {
    let mut g = c.benchmark_group("chacha20");
    for size in [514usize, 16 * 1024, 256 * 1024] {
        let mut data = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("apply/{size}"), |b| {
            let mut cipher = ChaCha20::new(&[7; 32], &[9; 12]);
            b.iter(|| cipher.apply(black_box(&mut data)))
        });
    }
    g.finish();
}

fn bench_x25519(c: &mut Criterion) {
    c.bench_function("x25519/base_mult", |b| {
        b.iter(|| x25519_base(black_box([5u8; 32])))
    });
}

fn bench_ntor(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let identity = StaticSecret::random(&mut rng);
    let node_id = [1u8; 20];
    c.bench_function("ntor/full_handshake", |b| {
        b.iter(|| {
            let (state, onionskin) = ntor::client_begin(&mut rng, node_id, identity.public_key());
            let (reply, _server_keys) =
                ntor::server_respond(&mut rng, node_id, &identity, &onionskin).unwrap();
            ntor::client_finish(&state, &reply).unwrap()
        })
    });
}

fn bench_hashsig(c: &mut Criterion) {
    let mut signer = MerkleSigner::generate([3u8; 32], 8);
    let vk = signer.verify_key();
    let sig = signer.sign(b"benchmark message").unwrap();
    c.bench_function("hashsig/verify", |b| {
        b.iter(|| vk.verify(black_box(b"benchmark message"), black_box(&sig)))
    });
}

criterion_group!(
    benches,
    bench_hash,
    bench_cipher,
    bench_aead,
    bench_x25519,
    bench_ntor,
    bench_hashsig
);
criterion_main!(benches);
