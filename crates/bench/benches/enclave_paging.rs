//! EPC paging cost under over-commitment (§7.3's "enclaves could be paged
//! out if they are not currently being invoked").

use conclave::epc::Epc;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_paging(c: &mut Criterion) {
    let footprint = bento::server::BentoServer::enclave_footprint(0);
    c.bench_function("epc/touch_resident", |b| {
        let mut epc = Epc::default();
        epc.register(1, footprint);
        epc.touch(1);
        b.iter(|| epc.touch(1))
    });
    c.bench_function("epc/touch_thrash_8_enclaves", |b| {
        let mut epc = Epc::default();
        for id in 0..8 {
            epc.register(id, footprint);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 8;
            epc.touch(i)
        })
    });
}

criterion_group!(benches, bench_paging);
criterion_main!(benches);
