//! Cell codec and onion-layer throughput: the per-cell cost of a relay.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use onion_crypto::ntor::CircuitKeys;
use tor_net::cell::{Cell, CellCmd, RelayCell, RelayCmd};
use tor_net::relay_crypto::{CircuitCrypto, LayerCrypto};

fn keys(tag: u8) -> CircuitKeys {
    CircuitKeys {
        kf: [tag; 32],
        kb: [tag ^ 0xFF; 32],
        df: [tag.wrapping_add(1); 32],
        db: [tag.wrapping_add(2); 32],
        nf: [tag; 12],
        nb: [tag ^ 0xFF; 12],
    }
}

fn bench_cell_codec(c: &mut Criterion) {
    let cell = Cell::with_payload(7, CellCmd::Relay, &[0xAB; 300]);
    let wire = cell.encode();
    let mut g = c.benchmark_group("cell");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode", |b| b.iter(|| black_box(&cell).encode()));
    g.bench_function("decode", |b| b.iter(|| Cell::decode(black_box(&wire))));
    g.finish();
}

fn bench_onion_layers(c: &mut Criterion) {
    let mut g = c.benchmark_group("onion");
    g.throughput(Throughput::Bytes(509));
    // Client-side: seal for hop 2 of a 3-hop circuit (3 cipher passes).
    g.bench_function("seal_3hops", |b| {
        let mut crypto = CircuitCrypto::new();
        for t in [1u8, 2, 3] {
            crypto.push_hop(LayerCrypto::client_side(&keys(t)));
        }
        let rc = RelayCell::new(RelayCmd::Data, 1, vec![0u8; 400]);
        b.iter(|| {
            let mut payload = rc.encode_payload();
            crypto.seal_for_hop(2, &mut payload);
            payload
        })
    });
    // Relay-side: one unseal (decrypt + digest check attempt).
    g.bench_function("relay_unseal", |b| {
        // The relay never recognizes (middle hop): steady-state cost.
        let mut client = LayerCrypto::client_side(&keys(9));
        let mut relay = LayerCrypto::relay_side(&keys(8));
        let rc = RelayCell::new(RelayCmd::Data, 1, vec![0u8; 400]);
        b.iter(|| {
            let mut payload = rc.encode_payload();
            client.seal(&mut payload); // wrong layer: never recognized
            relay.unseal(&mut payload)
        })
    });
    // Exit-hop steady state: seal + the recognizing unseal (digest commits).
    g.bench_function("relay_unseal_recognized", |b| {
        let mut client = LayerCrypto::client_side(&keys(5));
        let mut relay = LayerCrypto::relay_side(&keys(5));
        let rc = RelayCell::new(RelayCmd::Data, 1, vec![0u8; 400]);
        b.iter(|| {
            let mut payload = rc.encode_payload();
            client.seal(&mut payload);
            assert!(relay.unseal(&mut payload));
            payload
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cell_codec, bench_onion_layers);
criterion_main!(benches);
