//! Whole-system simulation throughput: one standard-Tor page load and one
//! Browser-function page load, end to end. (Also yields the circuit-build
//! time the attestation bench compares against.)

use bento_functions::web::SiteModel;
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{Iface, SimDuration, SimTime};
use wfp::browse::BrowseNode;

fn bench_page_load(c: &mut Criterion) {
    // Each iteration runs a whole network simulation; cap the sample count
    // so the bench finishes in seconds, not hours.
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(15));
    g.bench_function("standard_tor_page_load", |b| {
        b.iter(|| {
            let site = SiteModel::generate(0, 77);
            let mut net = tor_net::netbuild::NetworkBuilder::new()
                .seed(1)
                .middles(4)
                .exits(2)
                .build();
            let server = net.add_web_server("web", site.server_pages());
            let client = net.sim.add_node(
                "alice",
                Iface::residential(),
                Box::new(BrowseNode::new(net.authority, net.authority_key)),
            );
            net.sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
            net.sim.with_node::<BrowseNode, _>(client, |n, ctx| {
                n.start_visit(ctx, server, &site.html_path());
            });
            net.sim
                .run_until(SimTime::ZERO + SimDuration::from_secs(120));
            net.sim
                .with_node::<BrowseNode, _>(client, |n, _| assert_eq!(n.visits_done, 1));
        })
    });
    g.bench_function("circuit_build", |b| {
        b.iter(|| {
            let mut net = tor_net::netbuild::NetworkBuilder::new()
                .seed(2)
                .middles(4)
                .exits(2)
                .build();
            let client = net.add_client("alice");
            net.sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
            net.sim
                .with_node::<tor_net::netbuild::TestClientNode, _>(client, |n, ctx| {
                    let path = n
                        .tor
                        .select_path(ctx, tor_net::client::TerminalReq::Any)
                        .unwrap();
                    n.tor.build_circuit(ctx, path).unwrap()
                });
            net.sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_page_load);
criterion_main!(benches);
