//! Shard's erasure-code throughput (encode/decode across k, N).

use bento_functions::erasure::{decode, encode};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_erasure(c: &mut Criterion) {
    let file = vec![0xC3u8; 1 << 20];
    let mut g = c.benchmark_group("erasure");
    g.throughput(Throughput::Bytes(file.len() as u64));
    for (k, n) in [(2u8, 4u8), (3, 7), (5, 8)] {
        g.bench_function(format!("encode/k{k}_n{n}"), |b| {
            b.iter(|| encode(black_box(&file), k, n))
        });
        let shards = encode(&file, k, n);
        // Worst case: reconstruct from parity-only shards.
        let parity: Vec<_> = shards[k as usize..2 * k as usize].to_vec();
        g.bench_function(format!("decode_parity/k{k}_n{n}"), |b| {
            b.iter(|| decode(black_box(&parity)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_erasure);
criterion_main!(benches);
