//! Machine-readable throughput baseline for the per-cell crypto data plane.
//!
//! Times the hot paths every relayed byte pays — ChaCha20 keystream
//! application, the 3-hop onion seal, the per-relay unseal (decrypt +
//! digest check), the AEAD round trip, and raw SHA-256 — and merges the
//! numbers into `results/BENCH_cells.json` under a run label
//! (`--label baseline|optimized`, default `optimized`). When both labels
//! are present the file also carries per-benchmark speedups, so the perf
//! trajectory is demonstrated rather than asserted.

use bench::arg_str;
use onion_crypto::aead::{open, seal, AeadKey};
use onion_crypto::chacha20::ChaCha20;
use onion_crypto::ntor::CircuitKeys;
use onion_crypto::sha256::sha256;
use std::fmt::Write as _;
use std::time::Instant;
use tor_net::cell::{RelayCell, RelayCmd};
use tor_net::relay_crypto::{CircuitCrypto, LayerCrypto};

/// The benchmark names, in report order. The `*_batch_N` rows report
/// **cells per second** (one op = one cell) so they compare directly with
/// the cell-at-a-time `relay_unseal` row at every batch size.
const NAMES: [&str; 15] = [
    "chacha20_apply_16384",
    "seal_3hops",
    "relay_unseal",
    "aead_roundtrip",
    "sha256_16384",
    "relay_unseal_batch_1",
    "relay_unseal_batch_4",
    "relay_unseal_batch_8",
    "relay_unseal_batch_16",
    "relay_unseal_batch_32",
    "relay_seal_batch_1",
    "relay_seal_batch_4",
    "relay_seal_batch_8",
    "relay_seal_batch_16",
    "relay_seal_batch_32",
];

/// The batch sizes behind the `*_batch_N` rows, aligned with `NAMES`.
const BATCH_SIZES: [usize; 5] = [1, 4, 8, 16, 32];

fn keys(tag: u8) -> CircuitKeys {
    CircuitKeys {
        kf: [tag; 32],
        kb: [tag ^ 0xFF; 32],
        df: [tag.wrapping_add(1); 32],
        db: [tag.wrapping_add(2); 32],
        nf: [tag; 12],
        nb: [tag ^ 0xFF; 12],
    }
}

/// Median ops/sec over five samples, after calibrating the iteration count
/// to roughly a quarter second per sample.
fn ops_per_sec(mut f: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    let iters = loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t.elapsed().as_secs_f64();
        if elapsed > 0.02 || iters >= 1 << 28 {
            break ((iters as f64 * 0.25 / elapsed.max(1e-9)).max(1.0)) as u64;
        }
        iters *= 4;
    };
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            iters as f64 / t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[2]
}

fn run_all() -> Vec<(&'static str, f64)> {
    let mut results = Vec::new();

    // Raw keystream application over a 16 KiB buffer.
    let mut cipher = ChaCha20::new(&[7; 32], &[9; 12]);
    let mut buf = vec![0u8; 16 * 1024];
    results.push((NAMES[0], ops_per_sec(|| cipher.apply(&mut buf))));

    // Client-side: seal a 509-byte cell for hop 2 of a 3-hop circuit.
    let mut circuit = CircuitCrypto::new();
    for t in [1u8, 2, 3] {
        circuit.push_hop(LayerCrypto::client_side(&keys(t)));
    }
    let template = RelayCell::new(RelayCmd::Data, 1, vec![0u8; 400]).encode_payload();
    results.push((
        NAMES[1],
        ops_per_sec(|| {
            let mut payload = template;
            circuit.seal_for_hop(2, &mut payload);
        }),
    ));

    // Relay-side steady state: strip one layer and fail the recognition
    // check (the middle-hop path every forwarded cell takes).
    let mut relay = LayerCrypto::relay_side(&keys(8));
    results.push((
        NAMES[2],
        ops_per_sec(|| {
            let mut payload = template;
            relay.unseal(&mut payload);
        }),
    ));

    // AEAD round trip on a conclave-channel-sized message.
    let key = AeadKey::from_master(&[42u8; 32]);
    let msg = vec![0xA5u8; 512];
    results.push((
        NAMES[3],
        ops_per_sec(|| {
            let sealed = seal(&key, &[1u8; 12], b"", &msg);
            open(&key, &[1u8; 12], b"", &sealed).expect("roundtrip");
        }),
    ));

    // Raw digest throughput.
    let data = vec![0xABu8; 16 * 1024];
    results.push((
        NAMES[4],
        ops_per_sec(|| {
            std::hint::black_box(sha256(&data));
        }),
    ));

    // Batched relay unseal: one run of N same-circuit cells per op, with
    // the keystream prefetch the batch data plane enables. Reported as
    // cells/sec (ops_per_sec × N) so every row shares the unit of
    // `relay_unseal`.
    for (bi, &n) in BATCH_SIZES.iter().enumerate() {
        let mut relay = LayerCrypto::relay_side(&keys(8));
        relay.enable_batch();
        let mut cells = vec![template; n];
        let mut flags = vec![false; n];
        let per_batch = ops_per_sec(|| {
            for c in cells.iter_mut() {
                *c = template;
            }
            let mut refs: Vec<&mut [u8; 509]> = cells.iter_mut().collect();
            relay.unseal_batch(&mut refs, &mut flags);
        });
        results.push((NAMES[5 + bi], per_batch * n as f64));
    }

    // Batched relay seal (exit/backward direction), same reporting unit.
    for (bi, &n) in BATCH_SIZES.iter().enumerate() {
        let mut relay = LayerCrypto::relay_side(&keys(9));
        relay.enable_batch();
        let mut cells = vec![template; n];
        let per_batch = ops_per_sec(|| {
            for c in cells.iter_mut() {
                *c = template;
            }
            let mut refs: Vec<&mut [u8; 509]> = cells.iter_mut().collect();
            relay.seal_batch(&mut refs);
        });
        results.push((NAMES[10 + bi], per_batch * n as f64));
    }

    results
}

/// Pull `"name": value` pairs out of a previous report's `"label": {...}`
/// section. This file is only ever written by this binary, so a
/// line-oriented scan is reliable.
fn parse_run(json: &str, label: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for line in json.lines() {
        let line = line.trim();
        if line.starts_with(&format!("\"{label}\": {{")) {
            in_section = true;
            continue;
        }
        if in_section {
            if line.starts_with('}') {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                let name = k.trim().trim_matches('"').to_string();
                if let Ok(value) = v.trim().trim_end_matches(',').parse::<f64>() {
                    out.push((name, value));
                }
            }
        }
    }
    out
}

fn main() {
    let label = arg_str("--label", "optimized");
    let fresh = run_all();

    let path = std::path::Path::new("results").join("BENCH_cells.json");
    let previous = std::fs::read_to_string(&path).unwrap_or_default();
    let mut runs: Vec<(String, Vec<(String, f64)>)> = ["baseline", "optimized"]
        .iter()
        .filter(|l| **l != label)
        .map(|l| (l.to_string(), parse_run(&previous, l)))
        .filter(|(_, vals)| !vals.is_empty())
        .collect();
    runs.push((
        label.clone(),
        fresh.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
    ));
    runs.sort_by_key(|(l, _)| l.clone()); // baseline before optimized

    let lookup = |which: &str, name: &str| -> Option<f64> {
        runs.iter()
            .find(|(l, _)| l == which)
            .and_then(|(_, vals)| vals.iter().find(|(n, _)| n == name))
            .map(|(_, v)| *v)
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"unit\": \"ops_per_sec\",");
    let _ = writeln!(json, "  \"payload_bytes\": 509,");
    let _ = writeln!(json, "  \"runs\": {{");
    for (ri, (run_label, vals)) in runs.iter().enumerate() {
        let _ = writeln!(json, "    \"{run_label}\": {{");
        for (i, (name, v)) in vals.iter().enumerate() {
            let comma = if i + 1 == vals.len() { "" } else { "," };
            let _ = writeln!(json, "      \"{name}\": {v:.1}{comma}");
        }
        let comma = if ri + 1 == runs.len() { "" } else { "," };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"speedup\": {{");
    let speedups: Vec<(&str, Option<f64>)> = NAMES
        .iter()
        .map(|name| {
            let s = match (lookup("baseline", name), lookup("optimized", name)) {
                (Some(b), Some(o)) if b > 0.0 => Some(o / b),
                _ => None,
            };
            (*name, s)
        })
        .collect();
    let present: Vec<&(&str, Option<f64>)> = speedups.iter().filter(|(_, s)| s.is_some()).collect();
    for (i, (name, s)) in present.iter().enumerate() {
        let comma = if i + 1 == present.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {:.2}{comma}", s.unwrap());
    }
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(&path, &json).expect("write BENCH_cells.json");

    println!("run label: {label}");
    for (name, v) in &fresh {
        let extra = match *name {
            "chacha20_apply_16384" | "sha256_16384" => {
                format!("  ({:.1} MiB/s)", v * 16384.0 / (1024.0 * 1024.0))
            }
            n if n == "seal_3hops" || n == "relay_unseal" || n.contains("_batch_") => {
                format!("  ({:.1} MiB/s of cells)", v * 509.0 / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("  {name:<24} {v:>14.0} ops/s{extra}");
    }
    for (name, s) in &speedups {
        if let Some(s) = s {
            println!("  speedup {name:<22} {s:>6.2}x");
        }
    }
    println!("wrote {}", path.display());
}
