//! **§9.3 Shard** — the k-of-N recovery property, exhaustively: for a grid
//! of (k, N), verify every k-subset reconstructs and no (k−1)-subset does.
//!
//! `cargo run -p bench --release --bin shard_recovery`

use bench::write_report;
use bento_functions::erasure::{decode, encode, ShardPiece};
use rand::{Rng, SeedableRng};

/// All size-`k` index subsets of `0..n` (n small).
fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut report = String::new();
    report.push_str("== Shard (section 9.3): any k of N reconstruct; k-1 never do ==\n");
    report.push_str(&format!(
        "{:<6} {:<6} {:<10} {:<14} {:<16} {:<14}\n",
        "k", "N", "file", "k-subsets ok", "k-1 subsets fail", "overhead"
    ));
    for (k, n) in [(1u8, 3u8), (2, 3), (2, 5), (3, 5), (3, 7), (4, 6), (5, 8)] {
        let file: Vec<u8> = (0..100_000).map(|_| rng.gen()).collect();
        let shards = encode(&file, k, n);
        let shard_bytes: usize = shards.iter().map(|s| s.data.len()).sum();
        // Every k-subset reconstructs.
        let k_subsets = subsets(n as usize, k as usize);
        let mut ok = 0;
        for idx in &k_subsets {
            let pick: Vec<ShardPiece> = idx.iter().map(|&i| shards[i].clone()).collect();
            if decode(&pick).as_deref() == Some(&file[..]) {
                ok += 1;
            }
        }
        // No (k-1)-subset reconstructs.
        let small = subsets(n as usize, k as usize - 1);
        let mut fails = 0;
        for idx in &small {
            let pick: Vec<ShardPiece> = idx.iter().map(|&i| shards[i].clone()).collect();
            if decode(&pick).is_none() {
                fails += 1;
            }
        }
        report.push_str(&format!(
            "{:<6} {:<6} {:<10} {:<14} {:<16} {:<14}\n",
            k,
            n,
            format!("{}B", file.len()),
            format!("{}/{}", ok, k_subsets.len()),
            format!("{}/{}", fails, small.len()),
            format!("{:.2}x", shard_bytes as f64 / file.len() as f64),
        ));
        assert_eq!(ok, k_subsets.len(), "recovery must hold for k={k} n={n}");
        assert_eq!(fails, small.len(), "k-1 must never suffice for k={k} n={n}");
    }
    report.push_str("\nThe network path of this property (Shard deploying Dropboxes over\n");
    report.push_str("Tor circuits, fetch k shards, reconstruct) runs in the integration\n");
    report.push_str("test `shard_deploys_and_any_k_reconstruct`.\n");
    print!("{report}");
    write_report("shard_recovery.txt", &report);
}
