//! **§7.3 scalability** — memory footprints and the SGX EPC constraint:
//! "The maximum memory usage of a Bento server and Browser is roughly
//! 16–20 MB ... add the estimated 7.3 MB required for conclaves ... SGX
//! provides 128MB of protected memory, with only 93MB usable ... enclaves
//! could be paged out if they are not currently being invoked."
//!
//! `cargo run -p bench --release --bin scalability`

use bench::runner::{run_sweep, SweepOpts, Trial};
use bench::{arg_u64, write_report};
use bento::protocol::FunctionSpec;
use bento::server::{CONCLAVE_OVERHEAD, FN_BASE_MEMORY};
use bento::testnet::BentoNetwork;
use bento::{BentoBoxNode, BentoClientNode, BentoServer, MiddleboxPolicy};
use bento_functions::standard_registry;
use conclave::epc::{Epc, EPC_TOTAL_BYTES, EPC_USABLE_BYTES};
use simnet::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// One paging-model row: (loaded, invocations, pages_in, pages_out,
/// evictions, paging cost in microseconds).
type PagingRow = (u64, u64, u64, u64, u64, u64);

fn main() {
    let opts = SweepOpts::from_args();
    let mut report = String::new();
    let mb = |b: u64| b as f64 / (1 << 20) as f64;

    // ---- Static accounting (the paper's arithmetic). ----
    let footprint = BentoServer::enclave_footprint(0);
    report.push_str("== SGX memory accounting (paper section 7.3) ==\n");
    report.push_str(&format!(
        "EPC total                        {:>8.1} MB (paper: 128 MB)\n",
        mb(EPC_TOTAL_BYTES)
    ));
    report.push_str(&format!(
        "EPC usable by applications       {:>8.1} MB (paper: 93 MB)\n",
        mb(EPC_USABLE_BYTES)
    ));
    report.push_str(&format!(
        "Bento server + Browser footprint {:>8.1} MB (paper: 16-20 MB)\n",
        mb(FN_BASE_MEMORY)
    ));
    report.push_str(&format!(
        "Conclave overhead                {:>8.1} MB (paper: 7.3 MB)\n",
        mb(CONCLAVE_OVERHEAD)
    ));
    report.push_str(&format!(
        "Per-function enclave footprint   {:>8.1} MB\n",
        mb(footprint)
    ));
    let epc = Epc::default();
    report.push_str(&format!(
        "Fully-resident concurrent functions: {}\n\n",
        epc.capacity_for(footprint)
    ));

    // ---- Paging model: more loaded functions than fit, invoked round-robin.
    // Each N is an independent model run; sweep them as trial closures.
    report.push_str("== EPC paging: N loaded conclaves, round-robin invocation ==\n");
    report.push_str("loaded   invocations   pages_in   pages_out   evictions   paging_cost\n");
    let jobs: Vec<Trial<PagingRow>> = [2u64, 3, 4, 6, 8, 12]
        .iter()
        .map(|&n| {
            Box::new(move || {
                let mut epc = Epc::default();
                for id in 0..n {
                    epc.register(id, footprint);
                }
                let rounds = 50;
                for _ in 0..rounds {
                    for id in 0..n {
                        epc.touch(id);
                    }
                }
                let s = epc.stats();
                (
                    n,
                    rounds * n,
                    s.pages_in,
                    s.pages_out,
                    s.evictions,
                    s.cost_micros(),
                )
            }) as Trial<PagingRow>
        })
        .collect();
    let mut paging_rows = Vec::new();
    for (n, invocations, pages_in, pages_out, evictions, cost_us) in run_sweep("epc_paging", jobs) {
        report.push_str(&format!(
            "{n:<8} {invocations:<13} {pages_in:<10} {pages_out:<11} {evictions:<11} \
             {cost_us:>8} us\n",
        ));
        paging_rows.push(format!(
            "{n},{invocations},{pages_in},{pages_out},{evictions},{cost_us}"
        ));
    }
    report.push('\n');

    // ---- Live check: load functions on one box until it refuses. ----
    let limit = arg_u64("--max-functions", 16) as usize;
    report.push_str("== live box: loading echo-like functions until refusal ==\n");
    let mut policy = MiddleboxPolicy::permissive();
    policy.max_functions = limit as u32;
    let mut bn = BentoNetwork::build(31, 1, policy, standard_registry);
    let client = bn.add_bento_client("loader");
    bn.net.sim.run_until(secs(2));
    let conn = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            n.bento
                .connect_box(ctx, &mut n.tor, &boxes[0])
                .expect("box")
        });
    bn.net.sim.run_until(secs(5));
    let mut loaded = 0usize;
    for i in 0..limit + 3 {
        bn.net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, ctx| {
                n.bento
                    .request_container(ctx, &mut n.tor, conn, bento::protocol::ImageKind::Sgx);
            });
        let deadline = bn.net.sim.now() + SimDuration::from_secs(15);
        let mut got = None;
        while bn.net.sim.now() < deadline {
            let now = bn.net.sim.now();
            bn.net.sim.run_until(now + SimDuration::from_millis(250));
            got = bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
                let readies = n
                    .bento_events
                    .iter()
                    .filter(|e| matches!(e, bento::BentoEvent::ContainerReady { .. }))
                    .count();
                let rejects = n
                    .bento_events
                    .iter()
                    .filter(|e| matches!(e, bento::BentoEvent::Rejected(..)))
                    .count();
                if readies > loaded {
                    Some(true)
                } else if rejects > 0 {
                    Some(false)
                } else {
                    None
                }
            });
            if got.is_some() {
                break;
            }
        }
        match got {
            Some(true) => {
                loaded += 1;
                // Upload a minimal function so the container counts as live.
                let ready = bn
                    .net
                    .sim
                    .with_node::<BentoClientNode, _>(client, |n, _| {
                        n.bento_events.iter().rev().find_map(|e| match e {
                            bento::BentoEvent::ContainerReady { container, .. } => Some(*container),
                            _ => None,
                        })
                    })
                    .expect("container id");
                bn.net
                    .sim
                    .with_node::<BentoClientNode, _>(client, |n, ctx| {
                        let spec = FunctionSpec {
                            params: bento_functions::dropbox::Params {
                                max_gets: 1,
                                expiry_ms: 0,
                                max_bytes: 0,
                            }
                            .encode(),
                            manifest: bento_functions::dropbox::manifest_sgx(),
                        };
                        n.bento.upload(ctx, &mut n.tor, conn, ready, &spec);
                    });
                let now = bn.net.sim.now();
                bn.net.sim.run_until(now + SimDuration::from_secs(8));
            }
            Some(false) => {
                report.push_str(&format!(
                    "refused at request #{} (policy max_functions = {})\n",
                    i + 1,
                    limit
                ));
                break;
            }
            None => {
                report.push_str(&format!("request #{} timed out\n", i + 1));
                break;
            }
        }
    }
    let bx = bn.boxes[0];
    bn.net.sim.with_node::<BentoBoxNode, _>(bx, |n, _| {
        let usage = n.bento.aggregate_usage();
        let epc_stats = n.bento.epc_stats();
        report.push_str(&format!("functions loaded: {loaded}\n"));
        report.push_str(&format!(
            "aggregate function memory: {:.1} MB (cap respected)\n",
            mb(usage.memory)
        ));
        report.push_str(&format!(
            "EPC resident: {:.1} MB of {:.1} MB usable; paging: {} in / {} out ({} evictions)\n",
            mb(n.bento.epc().resident()),
            mb(n.bento.epc().usable()),
            epc_stats.pages_in,
            epc_stats.pages_out,
            epc_stats.evictions,
        ));
    });

    if !opts.quiet {
        print!("{report}");
    }
    write_report("scalability.txt", &report);
    opts.write_json_table(
        "scalability_epc_paging",
        "loaded,invocations,pages_in,pages_out,evictions,paging_cost_us",
        &paging_rows,
    );
    opts.export_telemetry("scalability");
}
