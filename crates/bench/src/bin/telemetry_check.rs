//! CI gate for the telemetry subsystem: validate exported
//! `TELEMETRY_*.json` artifacts against the versioned schema and,
//! optionally, enforce the recording-overhead budget that `bench_sim`
//! measures into `results/BENCH_sim.json`.
//!
//! `cargo run -p bench --release --bin telemetry_check -- \
//!      [--file results/TELEMETRY_bench_sim.json]... \
//!      [--overhead-gate 2.0] [--bench-file results/BENCH_sim.json]`
//!
//! Every `--file` occurrence names one artifact to validate (default: the
//! `bench_sim` export). Exits non-zero on any schema failure or a busted
//! overhead gate, so it can sit directly in a CI step.

use telemetry::export::{validate, SCHEMA};

/// All values of a repeatable `--key value` arg.
fn arg_all(key: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == key)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

/// The last value of `key` in a flat JSON document (the current run's label
/// sorts last in `BENCH_sim.json`, so "last" is the fresh measurement).
fn last_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    json.lines()
        .filter_map(|l| l.trim().strip_prefix(pat.as_str()))
        .filter_map(|v| v.trim().trim_end_matches(',').parse::<f64>().ok())
        .next_back()
}

fn main() {
    let mut files = arg_all("--file");
    if files.is_empty() {
        files.push("results/TELEMETRY_bench_sim.json".to_string());
    }
    let mut failed = false;
    for file in &files {
        match std::fs::read_to_string(file) {
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                failed = true;
            }
            Ok(doc) => match validate(&doc) {
                Err(why) => {
                    eprintln!("{file}: schema validation FAILED: {why}");
                    failed = true;
                }
                Ok(()) => println!("{file}: {SCHEMA} OK"),
            },
        }
    }

    let gate = bench::arg_str("--overhead-gate", "");
    if !gate.is_empty() {
        let gate: f64 = gate.parse().expect("numeric --overhead-gate");
        let bench_file = bench::arg_str("--bench-file", "results/BENCH_sim.json");
        match std::fs::read_to_string(&bench_file) {
            Err(e) => {
                eprintln!("{bench_file}: cannot read: {e}");
                failed = true;
            }
            Ok(text) => match last_number(&text, "telemetry_overhead_pct") {
                None => {
                    eprintln!("{bench_file}: no telemetry_overhead_pct (rerun bench_sim)");
                    failed = true;
                }
                Some(overhead) if overhead > gate => {
                    eprintln!("telemetry overhead {overhead:.2}% exceeds the {gate}% gate");
                    failed = true;
                }
                Some(overhead) => {
                    println!("telemetry overhead {overhead:.2}% within the {gate}% gate");
                }
            },
        }
    }

    if failed {
        std::process::exit(1);
    }
}
