//! **Table 1** — "Accuracy of Deep Fingerprinting attacks against
//! unmodified Tor and Browser with varying amounts of padding."
//!
//! Paper values: None 93.9%, Browser+0MB 69.6%, +1MB 8.25%, +7MB 0.0%.
//!
//! Full scale: `cargo run -p bench --release --bin table1`
//! Quick check: add `--sites 20 --visits 4`.
//! Classifier ablation rows: add `--ablate`.

use bench::{arg_flag, arg_u64, write_csv};
use wfp::{collect_traces, evaluate, Classifier, CollectConfig, Defense};

fn main() {
    let n_sites = arg_u64("--sites", 100) as u32;
    let n_visits = arg_u64("--visits", 10) as u32;
    let seed = arg_u64("--seed", 1);
    let ablate = arg_flag("--ablate");

    let conditions = [
        Defense::StandardTor,
        Defense::BentoBrowser { padding: 0 },
        Defense::BentoBrowser { padding: 1 << 20 },
        Defense::BentoBrowser { padding: 7 << 20 },
    ];
    let paper = [93.9, 69.6, 8.25, 0.0];

    println!("Table 1: WF attack accuracy ({n_sites} sites x {n_visits} visits, closed world)");
    println!("{:<28} {:>10} {:>10}", "Defense", "paper %", "ours %");
    let mut rows = Vec::new();
    for (defense, paper_pct) in conditions.iter().zip(paper) {
        let cfg = CollectConfig {
            n_sites,
            n_visits,
            seed,
            corpus_seed: 77,
            defense: *defense,
            visit_timeout_s: 300,
            jitter_pct: arg_u64("--jitter", 3) as u32,
        };
        let traces = collect_traces(&cfg);
        let expected = (n_sites * n_visits) as usize;
        if traces.len() < expected * 9 / 10 {
            eprintln!(
                "warning: only {}/{} visits completed under {:?}",
                traces.len(),
                expected,
                defense
            );
        }
        let knn = evaluate(&traces, Classifier::Knn(3), 0.7);
        let nb = evaluate(&traces, Classifier::NaiveBayes, 0.7);
        let best = knn.accuracy.max(nb.accuracy);
        println!(
            "{:<28} {:>10.1} {:>10.2}",
            defense.label(),
            paper_pct,
            best * 100.0
        );
        rows.push(format!(
            "{},{:.1},{:.2},{:.2},{:.2},{},{}",
            defense.label(),
            paper_pct,
            best * 100.0,
            knn.accuracy * 100.0,
            nb.accuracy * 100.0,
            knn.n_train,
            knn.n_test
        ));
        if ablate {
            let mlp = evaluate(&traces, Classifier::Mlp, 0.7);
            println!(
                "    ablation: knn={:.2}% nb={:.2}% mlp={:.2}%",
                knn.accuracy * 100.0,
                nb.accuracy * 100.0,
                mlp.accuracy * 100.0
            );
        }
    }
    write_csv(
        "table1.csv",
        "defense,paper_pct,best_pct,knn_pct,nb_pct,n_train,n_test",
        &rows,
    );
}
