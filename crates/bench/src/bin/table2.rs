//! **Table 2** — "Download times (in seconds)" for five domains under
//! standard Tor and Browser with 0/1/7 MB padding.
//!
//! The paper's shape: 0MB is comparable to (sometimes faster than)
//! standard Tor; padding adds time proportional to the padding quantum at
//! the circuit's effective bandwidth (~85 KB/s in the paper's runs —
//! the direct consequence of the anonymity trilemma it illustrates).
//!
//! `cargo run -p bench --release --bin table2`

use bench::runner::{run_sweep, SweepOpts, Trial};
use bench::{arg_u64, write_csv};
use bento::protocol::FunctionSpec;
use bento::testnet::BentoNetwork;
use bento::{BentoClientNode, MiddleboxPolicy};
use bento_functions::browser::{self, BrowseRequest};
use bento_functions::standard_registry;
use bento_functions::web::SiteModel;
use simnet::{Iface, NodeId, SimDuration, SimTime};
use tor_net::ports::HTTP_PORT;
use wfp::browse::BrowseNode;

/// The five Table 2 domains, with page compositions scaled to the paper's
/// standard-Tor download times.
fn domains(seed: u64) -> Vec<SiteModel> {
    vec![
        SiteModel::custom(
            "indiatoday-in",
            &[
                120_000, 90_000, 70_000, 50_000, 40_000, 30_000, 25_000, 20_000,
            ],
            30_000,
            seed ^ 1,
        ),
        SiteModel::custom(
            "yahoo-com",
            &[250_000, 180_000, 120_000, 90_000, 60_000, 40_000],
            40_000,
            seed ^ 2,
        ),
        SiteModel::custom(
            "netflix-com",
            &[400_000, 300_000, 200_000, 150_000, 100_000],
            35_000,
            seed ^ 3,
        ),
        SiteModel::custom(
            "ebay-com",
            &[200_000, 150_000, 100_000, 80_000, 60_000, 40_000, 30_000],
            30_000,
            seed ^ 4,
        ),
        SiteModel::custom(
            "aliexpress-com",
            &[80_000, 60_000, 40_000, 30_000],
            20_000,
            seed ^ 5,
        ),
    ]
}

/// Per-circuit effective bandwidth model: a busy volunteer relay's share.
fn relay_iface() -> Iface {
    Iface::symmetric(SimDuration::from_millis(15), 110_000)
}

/// Download each site over standard (function-less) Tor; one trial.
fn standard_tor_trial(seed: u64, sites: Vec<SiteModel>) -> Vec<f64> {
    let mut net = tor_net::netbuild::NetworkBuilder::new()
        .seed(seed)
        .middles(6)
        .exits(3)
        .relay_iface(relay_iface())
        .build();
    let pages = sites.iter().flat_map(|s| s.server_pages()).collect();
    let server = net.add_web_server("web", pages);
    let client = net.sim.add_node(
        "alice",
        Iface::residential(),
        Box::new(BrowseNode::new(net.authority, net.authority_key)),
    );
    net.sim.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    sites
        .iter()
        .map(|site| {
            let t0 = net.sim.now();
            let before = net.sim.with_node::<BrowseNode, _>(client, |n, ctx| {
                let d = n.visits_done;
                n.start_visit(ctx, server, &site.html_path());
                d
            });
            loop {
                let now = net.sim.now();
                net.sim.run_until(now + SimDuration::from_millis(100));
                let done = net
                    .sim
                    .with_node::<BrowseNode, _>(client, |n, _| n.visits_done);
                if done > before || net.sim.now().since(t0).as_secs_f64() > 600.0 {
                    break;
                }
            }
            net.sim.now().since(t0).as_secs_f64()
        })
        .collect()
}

/// Download each site through the Browser function at one padding level;
/// one trial, one fresh Bento network.
fn browser_trial(seed: u64, pi: usize, padding: u64, sites: Vec<SiteModel>) -> Vec<f64> {
    let mut bn = BentoNetwork::build_with_iface(
        seed ^ (pi as u64 + 1),
        1,
        MiddleboxPolicy::permissive(),
        standard_registry,
        relay_iface(),
    );
    let pages = sites.iter().flat_map(|s| s.server_pages()).collect();
    let server: NodeId = bn.net.add_web_server("web", pages);
    let client = bn.add_bento_client("alice");
    bn.net
        .sim
        .run_until(SimTime::ZERO + SimDuration::from_secs(2));
    let conn = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            n.bento
                .connect_box(ctx, &mut n.tor, &boxes[0])
                .expect("box")
        });
    bn.net
        .sim
        .run_until(SimTime::ZERO + SimDuration::from_secs(6));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento
                .request_container(ctx, &mut n.tor, conn, bento::protocol::ImageKind::Sgx);
        });
    bn.net
        .sim
        .run_until(SimTime::ZERO + SimDuration::from_secs(10));
    let (container, inv, _) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, _| n.container_ready(conn))
        .expect("container");
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: browser::manifest(false),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net
        .sim
        .run_until(SimTime::ZERO + SimDuration::from_secs(15));
    let ends = |n: &BentoClientNode| {
        n.bento_events
            .iter()
            .filter(|e| matches!(e, bento::BentoEvent::OutputEnd(_)))
            .count()
    };
    let mut times = Vec::new();
    for site in &sites {
        let t0 = bn.net.sim.now();
        let before = bn
            .net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, ctx| {
                let e = ends(n);
                let req = BrowseRequest {
                    server,
                    port: HTTP_PORT,
                    path: site.html_path(),
                    padding,
                    dropbox_on: None,
                };
                n.bento.invoke(ctx, &mut n.tor, conn, inv, req.encode());
                e
            });
        loop {
            let now = bn.net.sim.now();
            bn.net.sim.run_until(now + SimDuration::from_millis(100));
            let e = bn
                .net
                .sim
                .with_node::<BentoClientNode, _>(client, |n, _| ends(n));
            if e > before || bn.net.sim.now().since(t0).as_secs_f64() > 600.0 {
                break;
            }
        }
        times.push(bn.net.sim.now().since(t0).as_secs_f64());
    }
    times
}

fn main() {
    let opts = SweepOpts::from_args();
    let seed = arg_u64("--seed", 3);
    // `--domains N` truncates the corpus for smoke runs (CI uses 1).
    let mut sites = domains(77);
    let n_domains = arg_u64("--domains", sites.len() as u64) as usize;
    sites.truncate(n_domains.max(1));
    let paddings = [0u64, 1 << 20, 7 << 20];

    // One trial for standard Tor plus one per padding level, through the
    // shared runner (`--threads N` parallelizes them; results come back in
    // trial-index order either way).
    let mut jobs: Vec<Trial<Vec<f64>>> = Vec::new();
    {
        let sites = sites.clone();
        jobs.push(Box::new(move || standard_tor_trial(seed, sites)));
    }
    for (pi, padding) in paddings.iter().copied().enumerate() {
        let sites = sites.clone();
        jobs.push(Box::new(move || browser_trial(seed, pi, padding, sites)));
    }
    let mut results = run_sweep("table2", jobs);
    let standard = results.remove(0);
    let browser_times = results;

    // Paper's Table 2 for reference.
    let paper: [[f64; 4]; 5] = [
        [5.0, 6.4, 34.9, 86.0],
        [6.7, 6.3, 21.2, 87.4],
        [8.5, 8.1, 28.4, 86.3],
        [6.1, 7.0, 22.3, 81.8],
        [3.1, 5.9, 37.7, 91.9],
    ];
    if !opts.quiet {
        println!("Table 2: download times in seconds (ours | paper)");
        println!(
            "{:<18} {:>14} {:>14} {:>14} {:>14}",
            "Domain", "standard Tor", "Browser 0MB", "Browser 1MB", "Browser 7MB"
        );
    }
    let mut rows = Vec::new();
    for (i, site) in sites.iter().enumerate() {
        if !opts.quiet {
            println!(
                "{:<18} {:>6.1} | {:>4.1} {:>6.1} | {:>4.1} {:>6.1} | {:>4.1} {:>6.1} | {:>4.1}",
                site.name,
                standard[i],
                paper[i][0],
                browser_times[0][i],
                paper[i][1],
                browser_times[1][i],
                paper[i][2],
                browser_times[2][i],
                paper[i][3],
            );
        }
        rows.push(format!(
            "{},{:.2},{:.2},{:.2},{:.2},{},{},{},{}",
            site.name,
            standard[i],
            browser_times[0][i],
            browser_times[1][i],
            browser_times[2][i],
            paper[i][0],
            paper[i][1],
            paper[i][2],
            paper[i][3],
        ));
    }
    const HEADER: &str = "domain,standard_s,browser0_s,browser1mb_s,browser7mb_s,\
                          paper_standard,paper_0mb,paper_1mb,paper_7mb";
    write_csv("table2.csv", HEADER, &rows);
    opts.write_json_table("table2", HEADER, &rows);
    opts.export_telemetry("table2");
}
