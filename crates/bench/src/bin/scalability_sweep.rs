//! **Sharded-engine scalability sweep** — how far past the single-event-loop
//! ceiling does the conservative-PDES engine carry a request/reply workload?
//!
//! Builds a pure-simnet topology of `--clients C` clients talking to a
//! deterministic pool of reply servers (one server per 64 clients), runs the
//! same workload at every shard count in `--shards LIST`, and reports
//! events/s per configuration. All rows run on the sharded engine, so the
//! simulation outcome (events, messages, bytes, end time) is identical
//! across rows by construction — the sweep only varies how the work is
//! partitioned. Rows land in `results/BENCH_scale.json`.
//!
//! ```text
//! cargo run -p bench --release --bin scalability_sweep            # 10^4 clients
//! cargo run -p bench --release --bin scalability_sweep -- --clients 100000
//! cargo run -p bench --release --bin scalability_sweep -- --smoke # CI-sized
//! ```
//!
//! `--det` switches to the determinism-harness mode used by
//! `determinism_check`: one configuration (first entry of `--shards`,
//! `--threads` workers), writing `results/SCALE_determinism.json` with *only*
//! simulation-deterministic fields — no shard count, worker count, or
//! wall-clock values — so runs at different shard/thread settings must
//! produce byte-identical artifacts.

use bench::runner::{available_threads, SweepOpts};
use bench::{arg_flag, arg_str, arg_u64, write_json_table};
use simnet::{ConnId, Ctx, Iface, Node, NodeId, SimConfig, SimDuration, SimTime, Simulator};
use std::time::Instant;

/// Replies to every request with a fixed-size receipt.
struct ScaleServer {
    reply_bytes: usize,
}

impl Node for ScaleServer {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _msg: Vec<u8>) {
        ctx.send(conn, vec![0x5A; self.reply_bytes]);
    }
}

/// Runs `rounds` request/reply exchanges against `server`, each on a fresh
/// connection, with deterministically staggered start and think times.
struct ScaleClient {
    server: NodeId,
    /// Stable per-client index (node ids depend on interleaving; this does
    /// not), used for stagger offsets and payload sizes.
    idx: u64,
    rounds_left: u32,
    req_bytes: usize,
    /// Reply arrival times, folded into the determinism checksum.
    replies: Vec<SimTime>,
}

const TAG_ROUND: u64 = 1;

impl ScaleClient {
    fn stagger(&self) -> SimDuration {
        // Prime moduli spread the herd without synchronising any two shards'
        // first windows.
        SimDuration::from_millis(5 + self.idx % 997)
    }
    fn think(&self) -> SimDuration {
        SimDuration::from_millis(250 + self.idx % 211)
    }
}

impl Node for ScaleClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.rounds_left > 0 {
            ctx.set_timer(self.stagger(), TAG_ROUND);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        let conn = ctx.connect(self.server, 80);
        ctx.send(conn, vec![0xC1; self.req_bytes]);
    }
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _msg: Vec<u8>) {
        self.replies.push(ctx.now());
        ctx.close(conn);
        self.rounds_left -= 1;
        if self.rounds_left > 0 {
            ctx.set_timer(self.think(), TAG_ROUND);
        }
    }
}

/// One configuration's outcome. The simulation-side fields are identical
/// across shard counts; only `wall_s` varies.
struct RunOutcome {
    events: u64,
    msgs: u64,
    bytes: u64,
    conns: u64,
    sim_end: SimTime,
    wall_s: f64,
    checksum: u64,
}

/// Build the topology and run it to quiescence at the given shard count.
fn run_config(seed: u64, clients: u64, rounds: u32, shards: usize, threads: usize) -> RunOutcome {
    let mut sim = Simulator::new(SimConfig {
        seed,
        shards,
        shard_threads: threads,
        ..SimConfig::default()
    });
    // Server pool: one per 64 clients. Datacenter-ish links; the nonzero
    // latency is what gives the conservative engine its lookahead.
    let n_servers = (clients / 64).max(1);
    let server_iface = Iface::symmetric(SimDuration::from_millis(2), 100_000_000);
    let client_iface = Iface::symmetric(SimDuration::from_millis(15), 4_000_000);
    let servers: Vec<NodeId> = (0..n_servers)
        .map(|i| {
            sim.add_node(
                format!("srv{i}"),
                server_iface,
                Box::new(ScaleServer { reply_bytes: 600 }),
            )
        })
        .collect();
    let client_ids: Vec<NodeId> = (0..clients)
        .map(|i| {
            sim.add_node(
                format!("c{i}"),
                client_iface,
                Box::new(ScaleClient {
                    server: servers[(i % n_servers) as usize],
                    idx: i,
                    rounds_left: rounds,
                    req_bytes: 200 + (i % 800) as usize,
                    replies: Vec::new(),
                }),
            )
        })
        .collect();

    let wall = Instant::now();
    sim.run_to_quiescence();
    let wall_s = wall.elapsed().as_secs_f64();

    // FNV-1a over every (client index, reply time) in index order: a cheap
    // fingerprint of the full delivery schedule, not just the aggregates.
    let mut checksum: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            checksum ^= b as u64;
            checksum = checksum.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (i, &id) in client_ids.iter().enumerate() {
        let replies = sim.with_node::<ScaleClient, _>(id, |n, _| {
            assert_eq!(
                n.rounds_left,
                0,
                "client {i} finished only {} of {rounds} rounds",
                rounds - n.rounds_left
            );
            n.replies.clone()
        });
        fold(i as u64);
        for t in replies {
            fold(t.as_nanos());
        }
    }
    let stats = sim.stats();
    RunOutcome {
        events: stats.events,
        msgs: stats.msgs_delivered,
        bytes: stats.bytes_delivered,
        conns: stats.conns_opened,
        sim_end: sim.now(),
        wall_s,
        checksum,
    }
}

fn main() {
    let opts = SweepOpts::from_args();
    let smoke = arg_flag("--smoke");
    let det = arg_flag("--det");
    let clients = arg_u64("--clients", if smoke { 400 } else { 10_000 });
    let rounds = arg_u64("--rounds", 3) as u32;
    let threads = arg_u64("--threads", 0) as usize;
    let default_shards = if smoke { "1,2" } else { "1,2,4,8" };
    let shard_list: Vec<usize> = arg_str("--shards", default_shards)
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&s| s >= 1)
        .collect();
    assert!(!shard_list.is_empty(), "--shards needs at least one count");
    let seed = arg_u64("--seed", 23);

    if det {
        // Determinism-harness mode: one run, artifact carries only
        // simulation-deterministic fields. determinism_check re-runs this at
        // several shard/thread settings and byte-compares the result tree.
        let out = run_config(seed, clients, rounds, shard_list[0], threads.max(1));
        write_json_table(
            "results/SCALE_determinism.json",
            "scale_determinism",
            "clients,rounds,events,msgs,bytes,conns,sim_end_ns,checksum",
            &[format!(
                "{clients},{rounds},{},{},{},{},{},{:016x}",
                out.events,
                out.msgs,
                out.bytes,
                out.conns,
                out.sim_end.as_nanos(),
                out.checksum
            )],
        );
        return;
    }

    if !opts.quiet {
        println!(
            "scalability sweep: {clients} clients x {rounds} rounds, shards {shard_list:?} \
             ({} cores)",
            available_threads()
        );
    }
    let mut rows = Vec::new();
    let mut baseline: Option<(u64, f64)> = None;
    for &shards in &shard_list {
        let out = run_config(seed, clients, rounds, shards, threads);
        if let Some((check, _)) = baseline {
            assert_eq!(
                check, out.checksum,
                "shard count {shards} changed the simulation outcome"
            );
        }
        let eps = out.events as f64 / out.wall_s.max(1e-9);
        let speedup = baseline.map(|(_, base_eps)| eps / base_eps).unwrap_or(1.0);
        if baseline.is_none() {
            baseline = Some((out.checksum, eps));
        }
        if !opts.quiet {
            println!(
                "  shards {shards:>2}: {} events in {:.2}s -> {:.0} events/s ({speedup:.2}x)",
                out.events, out.wall_s, eps
            );
        }
        rows.push(format!(
            "{clients},{shards},{threads},{},{},{},{:.3},{:.0},{:.3}",
            out.events,
            out.msgs,
            out.bytes,
            out.wall_s,
            eps,
            out.sim_end.as_nanos() as f64 / 1e9
        ));
    }
    write_json_table(
        "results/BENCH_scale.json",
        "scalability_sweep",
        "clients,shards,threads,events,msgs,bytes,wall_s,events_per_sec,sim_s",
        &rows,
    );
    opts.export_telemetry("scalability_sweep");
}
