//! **Padding-quantum ablation** for the Browser defense (DESIGN.md's
//! ablation b): attack accuracy as the padding quantum sweeps from 0 to
//! 8 MiB. Table 1 gives the paper's three points; this traces the whole
//! curve — accuracy falls as the quantum grows past the corpus' page-size
//! spread, bottoming out at chance.
//!
//! `cargo run -p bench --release --bin padding_sweep`
//! (`--sites N --visits N` to rescale; default 40×6 to keep it minutes.)

use bench::runner::{run_sweep, SweepOpts, Trial};
use bench::{arg_u64, write_csv};
use wfp::{closed_world_accuracy, collect_traces, CollectConfig, Defense};

fn main() {
    let opts = SweepOpts::from_args();
    let n_sites = arg_u64("--sites", 40) as u32;
    let n_visits = arg_u64("--visits", 6) as u32;
    let seed = arg_u64("--seed", 2);
    let paddings: [u64; 7] = [0, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 7 << 20];
    if !opts.quiet {
        println!(
            "padding sweep ({n_sites} sites x {n_visits} visits); chance = {:.1}%",
            100.0 / n_sites as f64
        );
    }
    // One trial per padding quantum: trace collection is seeded per-config,
    // so every point is an independent simulation.
    let jobs: Vec<Trial<f64>> = paddings
        .iter()
        .map(|&padding| {
            Box::new(move || {
                let cfg = CollectConfig {
                    n_sites,
                    n_visits,
                    seed,
                    corpus_seed: 77,
                    defense: Defense::BentoBrowser { padding },
                    visit_timeout_s: 300,
                    jitter_pct: 3,
                };
                closed_world_accuracy(&collect_traces(&cfg))
            }) as Trial<f64>
        })
        .collect();
    let accuracies = run_sweep("padding_sweep", jobs);
    if !opts.quiet {
        println!("{:<12} {:>10}", "padding", "accuracy %");
    }
    let mut rows = Vec::new();
    for (&padding, &acc) in paddings.iter().zip(accuracies.iter()) {
        let label = if padding == 0 {
            "none".to_string()
        } else if padding < 1 << 20 {
            format!("{}KB", padding >> 10)
        } else {
            format!("{}MB", padding >> 20)
        };
        if !opts.quiet {
            println!("{:<12} {:>10.2}", label, acc * 100.0);
        }
        rows.push(format!("{padding},{acc:.4}"));
    }
    write_csv("padding_sweep.csv", "padding_bytes,accuracy", &rows);
    opts.write_json_table("padding_sweep", "padding_bytes,accuracy", &rows);
    opts.export_telemetry("padding_sweep");
}
