//! Machine-readable throughput baseline for the **simulator data plane** —
//! the layer around the per-cell crypto that `BENCH_cells.json` already
//! tracks.
//!
//! Two single-run workloads, measured in simulator events per wall-clock
//! second:
//!
//! * `relay_events_per_sec` — a client fetches a multi-MB page through a
//!   3-hop circuit; every cell crosses the full relay forwarding path
//!   (decode, unseal, re-queue) at every hop. This is the headline number:
//!   it pays the per-cell allocation tax the zero-churn work removes.
//! * `storm_events_per_sec` — a pure-simnet echo storm with no crypto and
//!   no allocation in the nodes; isolates raw event-loop overhead.
//!
//! Plus a **multi-core sweep**: the same 8-trial fetch sweep run
//! sequentially and through [`bench::runner`], reporting wall-clock speedup
//! and verifying the two modes produce identical per-trial `SimStats` *and*
//! identical per-trial telemetry snapshots.
//!
//! Telemetry: the headline `relay_events_per_sec` is always measured with
//! recording **off** (comparable with checked-in baselines); a second pass
//! at `Full` yields `relay_events_per_sec_full` and the
//! `telemetry_overhead_pct` the CI gate (`telemetry_check`) enforces. The
//! sweep runs at the `--telemetry` mode and exports
//! `results/TELEMETRY_bench_sim.json` with per-trial snapshots.
//!
//! Results merge into `results/BENCH_sim.json` under a run label
//! (`--label baseline|optimized`); when both labels are present the file
//! also carries speedups, like `BENCH_cells.json`.
//!
//! Every invocation also runs a **batch A/B**: the same fetch with the
//! batched relay data plane off vs on (`relay_events_per_sec_batch_off` /
//! `_on`, `batch_speedup`), asserting both arms produce identical
//! `SimStats`. `--batch on|off` (default on) selects the arm the headline
//! numbers and the sweep use.
//!
//! And a **sharded A/B**: the same fetch on the sharded conservative-PDES
//! engine at 1 shard/1 worker vs `--shards N` (default: one per core) with
//! all cores (`shard_events_per_sec_s1` / `_sn`, `shard_speedup`),
//! asserting both arms produce identical `SimStats`. Serial-engine numbers
//! are a different cost model and are never compared against these.
//!
//! `cargo run -p bench --release --bin bench_sim -- [--label L] [--mb N]
//!  [--threads N] [--shards N] [--smoke] [--batch on|off]
//!  [--telemetry off|summary|full] [--quiet] [--json <path>]`

use bench::runner::{
    available_threads, export_telemetry, run_trials_traced, threads_for, SweepOpts,
};
use bench::{arg_flag, arg_str, arg_u64};
use simnet::{ConnId, Ctx, Iface, Node, NodeId, SimDuration, SimTime, Simulator};
use std::fmt::Write as _;
use std::time::Instant;
use telemetry::Mode;
use tor_net::client::TerminalReq;
use tor_net::netbuild::{NetworkBuilder, TestClientNode};
use tor_net::ports::HTTP_PORT;
use tor_net::stream_frame::encode_frame;
use tor_net::{StreamTarget, TorEvent};

const NAMES: [&str; 3] = [
    "events_per_sec",
    "relay_events_per_sec",
    "storm_events_per_sec",
];

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// Generously-provisioned relay links: transfers finish fast in sim time, so
/// wall clock is dominated by per-event processing, which is what we measure.
fn fast_iface() -> Iface {
    Iface::symmetric(SimDuration::from_millis(5), 50_000_000)
}

/// Fetch `mb` MiB through a fresh 3-hop circuit; returns the run's SimStats
/// fields (for determinism checks) and the wall seconds spent simulating.
/// `batch` selects the relay data plane arm (batched vs cell-at-a-time);
/// both arms produce identical stats and traffic by construction.
/// `shards == 0` runs the serial engine; `shards >= 1` the sharded engine
/// with `shard_threads` workers (0 = one per core).
fn relay_fetch(
    seed: u64,
    mb: u64,
    batch: bool,
    shards: usize,
    shard_threads: usize,
) -> ((u64, u64, u64, u64), f64) {
    let file_len = (mb << 20) as usize;
    let mut net = NetworkBuilder::new()
        .seed(seed)
        .middles(4)
        .exits(2)
        .relay_iface(fast_iface())
        .batch(batch)
        .shards(shards)
        .shard_threads(shard_threads)
        .build();
    let page = vec![vec![0x5Au8; file_len]];
    let server = net.add_web_server("web", vec![("/big".to_string(), page)]);
    let client = net.add_client("alice");
    net.sim.run_until(secs(2));
    let circ = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        let path = n
            .tor
            .select_path(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
            .expect("exit path");
        n.tor.build_circuit(ctx, path).expect("circuit build")
    });
    net.sim.run_until(secs(4));
    let stream = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        assert!(n.tor.is_ready(circ), "circuit ready");
        n.tor
            .open_stream(ctx, circ, StreamTarget::Node(server, HTTP_PORT))
            .expect("stream")
    });
    net.sim.run_until(secs(5));
    net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        assert!(n.has_event(
            |e| matches!(e, TorEvent::StreamConnected(c, s) if *c == circ && *s == stream)
        ));
        n.tor.send_stream(ctx, circ, stream, &encode_frame(b"/big"));
    });
    // The measured section: the bulk transfer itself.
    let t = Instant::now();
    loop {
        let now = net.sim.now();
        net.sim.run_until(now + SimDuration::from_secs(1));
        let got = net
            .sim
            .with_node::<TestClientNode, _>(client, |n, _| n.stream_len(circ, stream));
        if got >= file_len {
            break;
        }
        assert!(
            net.sim.now() < secs(600),
            "fetch stalled: {got} of {file_len} bytes"
        );
    }
    let wall = t.elapsed().as_secs_f64();
    let s = net.sim.stats();
    (
        (
            s.events,
            s.msgs_delivered,
            s.bytes_delivered,
            s.conns_opened,
        ),
        wall,
    )
}

/// Echo hub: bounces every message straight back on its connection.
struct Hub;
impl Node for Hub {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
        ctx.send(conn, msg);
    }
}

/// Spoke: fires a fixed number of round trips at the hub, reusing the
/// reply buffer so the workload itself allocates nothing per round.
struct Spoke {
    hub: NodeId,
    rounds: u32,
}
impl Node for Spoke {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let c = ctx.connect(self.hub, 80);
        ctx.send(c, vec![0u8; 514]);
    }
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
        if self.rounds > 0 {
            self.rounds -= 1;
            ctx.send(conn, msg);
        }
    }
}

/// Pure event-loop churn: `spokes` nodes ping-ponging `rounds` messages
/// each against one hub. Returns (events, wall seconds).
fn storm(seed: u64, spokes: u32, rounds: u32) -> (u64, f64) {
    let mut sim = Simulator::with_seed(seed);
    let iface = Iface::symmetric(SimDuration::from_micros(200), 0);
    let hub = sim.add_node("hub", iface, Box::new(Hub));
    for i in 0..spokes {
        sim.add_node(format!("spoke{i}"), iface, Box::new(Spoke { hub, rounds }));
    }
    let t = Instant::now();
    sim.run_to_quiescence();
    (sim.stats().events, t.elapsed().as_secs_f64())
}

fn parse_run(json: &str, label: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for line in json.lines() {
        let line = line.trim();
        if line.starts_with(&format!("\"{label}\": {{")) {
            in_section = true;
            continue;
        }
        if in_section {
            if line.starts_with('}') {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                let name = k.trim().trim_matches('"').to_string();
                if let Ok(value) = v.trim().trim_end_matches(',').parse::<f64>() {
                    out.push((name, value));
                }
            }
        }
    }
    out
}

fn main() {
    let opts = SweepOpts::from_args();
    let label = arg_str("--label", "optimized");
    let batch = arg_str("--batch", "on") != "off";
    let smoke = arg_flag("--smoke");
    let mb = arg_u64("--mb", if smoke { 1 } else { 16 });
    let sweep_mb = arg_u64("--sweep-mb", if smoke { 1 } else { 4 });
    let n_trials = arg_u64("--trials", if smoke { 2 } else { 8 }) as usize;
    let samples = if smoke { 1 } else { 5 };
    let storm_rounds = if smoke { 2_000 } else { 100_000 };
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };

    // ---- single-run workloads (median over identical-seed samples) ----
    // The headline numbers are always a recording-off measurement so they
    // stay comparable with checked-in baselines regardless of --telemetry.
    telemetry::set_mode(Mode::Off);
    if !opts.quiet {
        println!(
            "single-run relay fetch: {mb} MiB over a 3-hop circuit ({samples} samples, \
             batch {})",
            if batch { "on" } else { "off" }
        );
    }
    let mut relay_samples = Vec::new();
    let mut stats = (0, 0, 0, 0);
    for _ in 0..samples {
        let (s, wall) = relay_fetch(7, mb, batch, 0, 0);
        stats = s;
        relay_samples.push(s.0 as f64 / wall.max(1e-9));
    }
    let relay_eps = median(relay_samples);
    if !opts.quiet {
        println!(
            "  {} events per run  ->  median {:.0} events/s ({} msgs delivered)",
            stats.0, relay_eps, stats.1
        );
        println!("pure-simnet echo storm: 8 spokes x {storm_rounds} rounds ({samples} samples)");
    }
    let mut storm_samples = Vec::new();
    let mut storm_events = 0;
    for _ in 0..samples {
        let (ev, wall) = storm(11, 8, storm_rounds);
        storm_events = ev;
        storm_samples.push(ev as f64 / wall.max(1e-9));
    }
    let storm_eps = median(storm_samples);
    if !opts.quiet {
        println!("  {storm_events} events per run  ->  median {storm_eps:.0} events/s");
    }

    // ---- telemetry A/B: the same fetch with recording Off vs Full ----
    // Samples interleave off/full pairs so host-load drift hits both arms
    // equally, and best-of-N per arm discards the noise floor (best-of is
    // far more stable than median for throughput, which matters in --smoke
    // where samples == 1).
    let ab = samples.max(5);
    let best = |xs: &[f64]| xs.iter().copied().fold(f64::MIN, f64::max);
    let mut off_eps = Vec::new();
    let mut full_eps = Vec::new();
    for _ in 0..ab {
        telemetry::set_mode(Mode::Off);
        let (s, wall) = relay_fetch(7, mb, batch, 0, 0);
        off_eps.push(s.0 as f64 / wall.max(1e-9));
        telemetry::set_mode(Mode::Full);
        let (s, wall) = relay_fetch(7, mb, batch, 0, 0);
        full_eps.push(s.0 as f64 / wall.max(1e-9));
    }
    let relay_eps_full = best(&full_eps);
    let telemetry_overhead_pct = (best(&off_eps) - relay_eps_full) / best(&off_eps) * 100.0;
    if !opts.quiet {
        println!(
            "telemetry A/B (best of {ab}): off {:.0} events/s, full {relay_eps_full:.0} events/s \
             ->  {telemetry_overhead_pct:.2}% overhead",
            best(&off_eps)
        );
    }

    // ---- batch A/B: the same fetch with the batched data plane off vs on.
    // Both arms run in every invocation (including --smoke), interleaved
    // like the telemetry A/B, and must produce identical SimStats — the
    // batched plane is a pure wall-clock optimization.
    telemetry::set_mode(Mode::Off);
    let mut batch_off_eps = Vec::new();
    let mut batch_on_eps = Vec::new();
    for _ in 0..ab {
        let (s_off, wall) = relay_fetch(7, mb, false, 0, 0);
        batch_off_eps.push(s_off.0 as f64 / wall.max(1e-9));
        let (s_on, wall) = relay_fetch(7, mb, true, 0, 0);
        batch_on_eps.push(s_on.0 as f64 / wall.max(1e-9));
        assert_eq!(
            s_off, s_on,
            "batch arms must produce identical simulation outcomes"
        );
    }
    let relay_eps_batch_off = best(&batch_off_eps);
    let relay_eps_batch_on = best(&batch_on_eps);
    let batch_speedup = relay_eps_batch_on / relay_eps_batch_off.max(1e-9);
    if !opts.quiet {
        println!(
            "batch A/B (best of {ab}): off {relay_eps_batch_off:.0} events/s, \
             on {relay_eps_batch_on:.0} events/s  ->  {batch_speedup:.2}x"
        );
    }

    // ---- sharded A/B: the same fetch on the conservative-PDES engine,
    // 1 shard / 1 worker vs --shards N / one worker per core. The engine is
    // shard- and thread-count invariant, so both arms must produce identical
    // SimStats; the speedup is the tentpole number. (The serial engine above
    // is a *different* cost model — its events/s are not comparable here.)
    // NB: on a 1-core bench box the speedup will sit at ~1.0 or below
    // (barrier overhead with nothing to overlap); that is expected, not a
    // regression — same caveat as sweep_speedup in ROADMAP operational notes.
    let shards = arg_u64(
        "--shards",
        if smoke {
            2
        } else {
            (available_threads() as u64).max(2)
        },
    ) as usize;
    let mut shard_s1_eps = Vec::new();
    let mut shard_sn_eps = Vec::new();
    for _ in 0..ab {
        let (a, wall) = relay_fetch(7, mb, batch, 1, 1);
        shard_s1_eps.push(a.0 as f64 / wall.max(1e-9));
        let (b, wall) = relay_fetch(7, mb, batch, shards, 0);
        shard_sn_eps.push(b.0 as f64 / wall.max(1e-9));
        assert_eq!(
            a, b,
            "sharded arms must produce identical simulation outcomes \
             (shards 1 vs {shards})"
        );
    }
    let shard_eps_s1 = best(&shard_s1_eps);
    let shard_eps_sn = best(&shard_sn_eps);
    let shard_speedup = shard_eps_sn / shard_eps_s1.max(1e-9);
    if !opts.quiet {
        println!(
            "sharded A/B (best of {ab}): 1 shard {shard_eps_s1:.0} events/s, \
             {shards} shards {shard_eps_sn:.0} events/s  ->  {shard_speedup:.2}x \
             ({} cores)",
            available_threads()
        );
    }

    // The sweep (and its export) runs at the requested --telemetry mode,
    // starting from a clean registry.
    telemetry::set_mode(opts.telemetry);
    telemetry::reset();

    // ---- multi-core sweep: sequential vs parallel runner ----
    if !opts.quiet {
        println!("sweep: {n_trials} independent {sweep_mb} MiB fetch trials");
    }
    let trial = |i: u64| move || relay_fetch(100 + i, sweep_mb, batch, 0, 0).0;
    let mk_jobs = || -> Vec<bench::runner::Trial<(u64, u64, u64, u64)>> {
        (0..n_trials as u64)
            .map(|i| Box::new(trial(i)) as bench::runner::Trial<_>)
            .collect()
    };
    let t = Instant::now();
    let seq = run_trials_traced(1, mk_jobs());
    let seq_wall = t.elapsed().as_secs_f64();
    let threads = threads_for(n_trials);
    let t = Instant::now();
    let par = run_trials_traced(threads, mk_jobs());
    let par_wall = t.elapsed().as_secs_f64();
    // Equality covers the SimStats AND each trial's telemetry snapshot: the
    // exported artifact is byte-identical across thread counts.
    let deterministic = seq == par;
    let sweep_speedup = seq_wall / par_wall.max(1e-9);
    if !opts.quiet {
        println!(
            "  sequential {seq_wall:.2}s, parallel({threads} threads) {par_wall:.2}s  ->  \
             {sweep_speedup:.2}x  (deterministic: {deterministic})"
        );
    }
    assert!(
        deterministic,
        "parallel sweep must reproduce the sequential results (and telemetry \
         snapshots) exactly"
    );

    // Fold the sweep's metrics into the process totals in trial-index order
    // and export them alongside the per-trial snapshots.
    let trial_snaps: Vec<telemetry::Snapshot> = par.into_iter().map(|(_, snap)| snap).collect();
    for snap in &trial_snaps {
        telemetry::merge(snap);
    }
    export_telemetry("bench_sim", Some(&trial_snaps));

    // ---- merge into results/BENCH_sim.json ----
    let fresh: Vec<(&str, f64)> = vec![
        ("events_per_sec", relay_eps),
        ("relay_events_per_sec", relay_eps),
        ("relay_events_per_sec_full", relay_eps_full),
        ("telemetry_overhead_pct", telemetry_overhead_pct),
        ("relay_events_per_sec_batch_off", relay_eps_batch_off),
        ("relay_events_per_sec_batch_on", relay_eps_batch_on),
        ("batch_speedup", batch_speedup),
        ("batch", if batch { 1.0 } else { 0.0 }),
        ("shard_events_per_sec_s1", shard_eps_s1),
        ("shard_events_per_sec_sn", shard_eps_sn),
        ("shard_speedup", shard_speedup),
        ("shards", shards as f64),
        ("storm_events_per_sec", storm_eps),
        ("sweep_trials", n_trials as f64),
        ("sweep_seq_s", seq_wall),
        ("sweep_par_s", par_wall),
        ("sweep_speedup", sweep_speedup),
        ("sweep_threads", threads as f64),
        ("host_cores", available_threads() as f64),
        ("deterministic", if deterministic { 1.0 } else { 0.0 }),
    ];

    let path = std::path::Path::new("results").join("BENCH_sim.json");
    let previous = std::fs::read_to_string(&path).unwrap_or_default();
    let mut runs: Vec<(String, Vec<(String, f64)>)> = ["baseline", "optimized"]
        .iter()
        .filter(|l| **l != label)
        .map(|l| (l.to_string(), parse_run(&previous, l)))
        .filter(|(_, vals)| !vals.is_empty())
        .collect();
    runs.push((
        label.clone(),
        fresh.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
    ));
    runs.sort_by_key(|(l, _)| l.clone()); // baseline before optimized

    let lookup = |which: &str, name: &str| -> Option<f64> {
        runs.iter()
            .find(|(l, _)| l == which)
            .and_then(|(_, vals)| vals.iter().find(|(n, _)| n == name))
            .map(|(_, v)| *v)
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"unit\": \"events_per_sec\",");
    let _ = writeln!(json, "  \"workload\": \"3-hop relay fetch + echo storm\",");
    let _ = writeln!(json, "  \"runs\": {{");
    for (ri, (run_label, vals)) in runs.iter().enumerate() {
        let _ = writeln!(json, "    \"{run_label}\": {{");
        for (i, (name, v)) in vals.iter().enumerate() {
            let comma = if i + 1 == vals.len() { "" } else { "," };
            let _ = writeln!(json, "      \"{name}\": {v:.3}{comma}");
        }
        let comma = if ri + 1 == runs.len() { "" } else { "," };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"speedup\": {{");
    let speedups: Vec<(&str, Option<f64>)> = NAMES
        .iter()
        .map(|name| {
            let s = match (lookup("baseline", name), lookup("optimized", name)) {
                (Some(b), Some(o)) if b > 0.0 => Some(o / b),
                _ => None,
            };
            (*name, s)
        })
        .collect();
    let present: Vec<&(&str, Option<f64>)> = speedups.iter().filter(|(_, s)| s.is_some()).collect();
    for (i, (name, s)) in present.iter().enumerate() {
        let comma = if i + 1 == present.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {:.2}{comma}", s.unwrap());
    }
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(&path, &json).expect("write BENCH_sim.json");

    if !opts.quiet {
        for (name, s) in &speedups {
            if let Some(s) = s {
                println!("  speedup {name:<24} {s:>6.2}x");
            }
        }
        println!("wrote {}", path.display());
    }
    let metric_rows: Vec<String> = fresh.iter().map(|(n, v)| format!("{n},{v:.3}")).collect();
    opts.write_json_table("bench_sim", "metric,value", &metric_rows);
}
