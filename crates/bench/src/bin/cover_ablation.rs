//! **§9.1 Cover** ablation — does fixed-rate cover traffic actually mask
//! when the user is active?
//!
//! Scenario: a client is connected to a Bento box. In the "active" window
//! it downloads content; in the "quiet" window it does nothing. An
//! observer on the client's link compares per-window downstream volume.
//! Without Cover the ratio gives activity away; with Cover running at a
//! fixed rate, volume is dominated by the constant stream.
//!
//! `cargo run -p bench --release --bin cover_ablation`

use bench::runner::{run_sweep, SweepOpts, Trial};
use bench::write_report;
use bento::protocol::FunctionSpec;
use bento::testnet::BentoNetwork;
use bento::{BentoClientNode, MiddleboxPolicy};
use bento_functions::cover::{self, CoverRequest, Mode};
use bento_functions::dropbox;
use bento_functions::standard_registry;
use simnet::trace::Direction;
use simnet::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// Downstream bytes observed on the client link in [from, to).
fn window_bytes(sniffer: &simnet::trace::Sniffer, from: SimTime, to: SimTime) -> f64 {
    sniffer
        .events()
        .iter()
        .filter(|e| e.dir == Direction::Incoming && e.time >= from && e.time < to)
        .map(|e| e.bytes as f64)
        .sum()
}

fn run(with_cover: bool) -> (f64, f64) {
    let mut bn = BentoNetwork::build(41, 1, MiddleboxPolicy::permissive(), standard_registry);
    let client = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    // Install a dropbox holding 300 KB (the "activity" is fetching it) and,
    // optionally, the Cover function.
    let conn = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            n.bento
                .connect_box(ctx, &mut n.tor, &boxes[0])
                .expect("box")
        });
    bn.net.sim.run_until(secs(5));
    let mut tokens = Vec::new();
    let n_containers = if with_cover { 2 } else { 1 };
    for i in 0..n_containers {
        bn.net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, ctx| {
                n.bento
                    .request_container(ctx, &mut n.tor, conn, bento::protocol::ImageKind::Plain);
            });
        let now = bn.net.sim.now();
        bn.net.sim.run_until(now + SimDuration::from_secs(4));
        let t = bn
            .net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, _| {
                let readies: Vec<_> = n
                    .bento_events
                    .iter()
                    .filter_map(|e| match e {
                        bento::BentoEvent::ContainerReady {
                            container,
                            invocation,
                            ..
                        } => Some((*container, *invocation)),
                        _ => None,
                    })
                    .collect();
                readies.get(i).copied()
            })
            .expect("container");
        tokens.push(t);
    }
    // Upload dropbox with the content.
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: dropbox::Params {
                    max_gets: 100,
                    expiry_ms: 0,
                    max_bytes: 0,
                }
                .encode(),
                manifest: dropbox::manifest(),
            };
            n.bento.upload(ctx, &mut n.tor, conn, tokens[0].0, &spec);
        });
    bn.net.sim.run_until(secs(20));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let mut put = vec![b'P'];
            put.extend_from_slice(&vec![0x77; 300_000]);
            n.bento.invoke(ctx, &mut n.tor, conn, tokens[0].1, put);
        });
    bn.net.sim.run_until(secs(40));
    if with_cover {
        bn.net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, ctx| {
                let spec = FunctionSpec {
                    params: vec![],
                    manifest: cover::manifest(false),
                };
                n.bento.upload(ctx, &mut n.tor, conn, tokens[1].0, &spec);
            });
        bn.net.sim.run_until(secs(45));
        bn.net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, ctx| {
                // 498-byte cells every 20 ms for the whole experiment: ~25 KB/s
                // of constant downstream cover.
                let req = CoverRequest {
                    interval_ms: 20,
                    count: 6000,
                    chunk: 498,
                    mode: Mode::Downstream,
                };
                n.bento
                    .invoke(ctx, &mut n.tor, conn, tokens[1].1, req.encode());
            });
    }
    bn.net.sim.enable_sniffer(client);
    bn.net.sim.run_until(secs(50));
    // Quiet window: [50, 80). Active window: [80, 110) — fetch the content.
    bn.net.sim.run_until(secs(80));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento
                .invoke(ctx, &mut n.tor, conn, tokens[0].1, b"G".to_vec());
        });
    bn.net.sim.run_until(secs(110));
    let sniffer = bn.net.sim.sniffer(client);
    let quiet = window_bytes(sniffer, secs(50), secs(80));
    let active = window_bytes(sniffer, secs(80), secs(110));
    (quiet, active)
}

fn main() {
    let opts = SweepOpts::from_args();
    // Both conditions are independent simulations — run them through the
    // shared trial runner (results stay in [no-cover, with-cover] order).
    let jobs: Vec<Trial<(f64, f64)>> = vec![Box::new(|| run(false)), Box::new(|| run(true))];
    let mut results = run_sweep("cover_ablation", jobs);
    let (q0, a0) = results.remove(0);
    let (q1, a1) = results.remove(0);
    let ratio0 = a0 / q0.max(1.0);
    let ratio1 = a1 / q1.max(1.0);
    let mut report = String::new();
    report.push_str("== Cover ablation (section 9.1): active/quiet downstream volume ==\n");
    report.push_str(&format!(
        "{:<16} {:>14} {:>14} {:>12}\n",
        "condition", "quiet bytes", "active bytes", "ratio"
    ));
    report.push_str(&format!(
        "{:<16} {:>14.0} {:>14.0} {:>12.1}\n",
        "no cover", q0, a0, ratio0
    ));
    report.push_str(&format!(
        "{:<16} {:>14.0} {:>14.0} {:>12.1}\n",
        "with cover", q1, a1, ratio1
    ));
    report.push_str(&format!(
        "\nactivity visibility reduced {:.1}x by fixed-rate cover traffic\n",
        ratio0 / ratio1
    ));
    if !opts.quiet {
        print!("{report}");
    }
    assert!(
        ratio1 < ratio0 / 3.0,
        "cover should mask activity: {ratio0:.1} -> {ratio1:.1}"
    );
    write_report("cover_ablation.txt", &report);
    let rows = vec![
        format!("no cover,{q0:.0},{a0:.0},{ratio0:.2}"),
        format!("with cover,{q1:.0},{a1:.0},{ratio1:.2}"),
    ];
    opts.write_json_table(
        "cover_ablation",
        "condition,quiet_bytes,active_bytes,ratio",
        &rows,
    );
    opts.export_telemetry("cover_ablation");
}
