//! **Chaos sweep** — goodput and recovery under the fault plane: every
//! trial runs the default fault mix (one relay crash + restart, a network
//! partition that heals) while the per-link loss rate sweeps 0 → 10%.
//! Recovery-enabled clients keep downloading throughout; each trial
//! *asserts* the recovery acceptance properties (goodput > 0, at least one
//! circuit rebuilt after the crash) before its row is written.
//!
//! `cargo run -p bench --release --bin chaos_sweep`
//! `--smoke` runs a single short trial (CI); `--seed N` reseeds the sweep;
//! `--batch on|off` (default on) selects the relay data plane arm — the
//! determinism gate byte-compares the two arms' artifacts.
//! Artifacts: `results/chaos.csv`, `results/BENCH_chaos.json`, and
//! `results/TELEMETRY_chaos_sweep.json`.

use bench::chaos::{assert_recovered, run_chaos_trial, ChaosConfig, ChaosOutcome};
use bench::runner::{run_sweep, SweepOpts, Trial};
use bench::{arg_flag, arg_str, arg_u64, write_csv, write_json_table};

fn main() {
    let opts = SweepOpts::from_args();
    let seed = arg_u64("--seed", 11);
    let smoke = arg_flag("--smoke");
    let batch = arg_str("--batch", "on") != "off";
    let loss_axis: Vec<f64> = if smoke {
        vec![5.0]
    } else {
        vec![0.0, 2.0, 5.0, 10.0]
    };

    let configs: Vec<ChaosConfig> = loss_axis
        .iter()
        .enumerate()
        .map(|(i, &loss)| {
            let mut cfg = ChaosConfig::default_mix(seed.wrapping_add(i as u64), loss);
            cfg.batch = batch;
            if smoke {
                cfg.clients = 3;
                cfg.horizon_s = 30;
            }
            cfg
        })
        .collect();
    let jobs: Vec<Trial<ChaosOutcome>> = configs
        .iter()
        .map(|&cfg| Box::new(move || run_chaos_trial(&cfg)) as Trial<ChaosOutcome>)
        .collect();
    let results = run_sweep("chaos_sweep", jobs);

    let header = "loss_pct,goodput_bytes,downloads,rebuilds,msgs_dropped,crashes,restarts,events";
    let mut rows = Vec::new();
    for (cfg, out) in configs.iter().zip(results.iter()) {
        assert_recovered(cfg, out);
        rows.push(format!(
            "{},{},{},{},{},{},{},{}",
            cfg.loss_pct,
            out.goodput_bytes,
            out.downloads,
            out.rebuilds,
            out.msgs_dropped,
            out.crashes,
            out.restarts,
            out.events,
        ));
        if !opts.quiet {
            println!(
                "loss {:>4}%: {} bytes goodput, {} downloads, {} rebuilds, {} msgs dropped",
                cfg.loss_pct, out.goodput_bytes, out.downloads, out.rebuilds, out.msgs_dropped
            );
        }
    }
    write_csv("chaos.csv", header, &rows);
    write_json_table("results/BENCH_chaos.json", "chaos", header, &rows);
    opts.write_json_table("chaos", header, &rows);
    opts.export_telemetry("chaos_sweep");
    if !opts.quiet {
        println!("all trials recovered (goodput > 0, crash survived, circuits rebuilt)");
    }
}
