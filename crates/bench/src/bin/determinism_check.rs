//! **Dynamic determinism check** — the runtime complement to `bento_lint`'s
//! static rules. The linter proves no workspace source *names* an unordered
//! collection, the wall clock, or ambient randomness in sim-visible code;
//! this binary proves the property actually holds end to end by running the
//! same workloads under deliberately perturbed conditions and requiring the
//! exported artifacts to come back byte-identical:
//!
//! * **Fresh process per run** — every `std` `HashMap` in the address space
//!   gets new SipHash keys, so any hash-order dependence left in a hot path
//!   (the exact bug class BL001 exists for) shows up as an artifact diff.
//! * **`--threads 1` vs `--threads 4`** — the sweep runner's "parallel equals
//!   sequential" contract, checked over full processes rather than the unit
//!   test's in-process trials.
//! * **`--batch on` vs `--batch off`** — the batched relay data plane must
//!   reproduce the cell-at-a-time plane's artifacts byte for byte.
//! * **`--shards 1` vs `--shards 4` (and 1 vs 4 worker threads)** — the
//!   sharded conservative-PDES engine's shard-count/thread-count invariance
//!   contract, checked through `scalability_sweep --det` in fresh processes.
//!
//! Workloads: the chaos smoke sweep (`chaos_sweep --smoke`, the fault-plane
//! recovery path) and one Table 2 trial (`table2 --domains 1`, the download
//! pipeline). Each child runs in its own scratch directory, so the artifacts
//! under `results/` are produced — and compared — in isolation.
//!
//! `cargo run -p bench --release --bin determinism_check`
//!
//! Exits non-zero naming the first differing artifact (scratch directories
//! are kept for inspection on failure, removed on success).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A sibling benchmark binary (built into the same target directory).
fn sibling(name: &str) -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("exe has a parent dir");
    let bin = dir.join(name);
    if !bin.exists() {
        eprintln!(
            "determinism_check: {} not found next to {} — build it first \
             (cargo build --release -p bench)",
            name,
            me.display()
        );
        std::process::exit(2);
    }
    bin
}

/// Run `bin` with `args` in `cwd`, capturing output. Any non-zero exit is
/// fatal: a workload that cannot even finish proves nothing about determinism.
fn run_child(bin: &Path, args: &[&str], cwd: &Path) {
    fs::create_dir_all(cwd).expect("create scratch dir");
    let out = Command::new(bin)
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn child workload");
    if !out.status.success() {
        eprintln!(
            "determinism_check: {} {:?} failed ({}) in {}",
            bin.display(),
            args,
            out.status,
            cwd.display()
        );
        eprintln!("--- stdout ---\n{}", String::from_utf8_lossy(&out.stdout));
        eprintln!("--- stderr ---\n{}", String::from_utf8_lossy(&out.stderr));
        std::process::exit(2);
    }
}

/// Every file under `dir`, as paths relative to it, sorted (recursive).
fn artifact_list(dir: &Path) -> Vec<PathBuf> {
    fn walk(base: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                walk(base, &p, out);
            } else {
                out.push(p.strip_prefix(base).expect("under base").to_path_buf());
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out
}

/// Byte-compare the `results/` trees of two runs. Returns a description of
/// the first difference, or `None` if they match exactly.
fn diff_runs(a: &Path, b: &Path) -> Option<String> {
    let (ra, rb) = (a.join("results"), b.join("results"));
    let (la, lb) = (artifact_list(&ra), artifact_list(&rb));
    if la != lb {
        return Some(format!(
            "artifact sets differ: {} produced {:?}, {} produced {:?}",
            a.display(),
            la,
            b.display(),
            lb
        ));
    }
    if la.is_empty() {
        return Some(format!(
            "no artifacts under {} — nothing was compared",
            ra.display()
        ));
    }
    for rel in &la {
        let ba = fs::read(ra.join(rel)).expect("read artifact A");
        let bb = fs::read(rb.join(rel)).expect("read artifact B");
        if ba != bb {
            let at = ba
                .iter()
                .zip(bb.iter())
                .position(|(x, y)| x != y)
                .unwrap_or(ba.len().min(bb.len()));
            // A little context either side of the first mismatch.
            let ctx = |bytes: &[u8]| {
                let lo = at.saturating_sub(20);
                let hi = (at + 20).min(bytes.len());
                String::from_utf8_lossy(&bytes[lo..hi]).into_owned()
            };
            return Some(format!(
                "{} differs at byte {} ({} vs {} bytes)\n  A: ...{}...\n  B: ...{}...",
                rel.display(),
                at,
                ba.len(),
                bb.len(),
                ctx(&ba),
                ctx(&bb)
            ));
        }
    }
    None
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("bento_determinism_{}", std::process::id()));
    // (workload label, binary, fixed args) — each runs twice, --threads 1
    // vs --threads 4, in fresh processes and fresh scratch cwds.
    let workloads: [(&str, &str, &[&str]); 2] = [
        ("chaos_smoke", "chaos_sweep", &["--smoke", "--quiet"]),
        ("table2_1dom", "table2", &["--domains", "1", "--quiet"]),
    ];
    let mut failures = 0u32;
    for (label, bin_name, args) in workloads {
        let bin = sibling(bin_name);
        let dir_a = scratch.join(format!("{label}_t1"));
        let dir_b = scratch.join(format!("{label}_t4"));
        let mut args_a: Vec<&str> = args.to_vec();
        args_a.extend(["--threads", "1"]);
        let mut args_b: Vec<&str> = args.to_vec();
        args_b.extend(["--threads", "4"]);
        println!("determinism_check: {label}: {bin_name} {args_a:?} vs {args_b:?}");
        run_child(&bin, &args_a, &dir_a);
        run_child(&bin, &args_b, &dir_b);
        match diff_runs(&dir_a, &dir_b) {
            None => {
                let n = artifact_list(&dir_a.join("results")).len();
                println!("determinism_check: {label}: {n} artifact(s) byte-identical");
            }
            Some(diff) => {
                eprintln!("determinism_check: {label}: NONDETERMINISM DETECTED\n  {diff}");
                eprintln!("  scratch kept for inspection: {}", scratch.display());
                failures += 1;
            }
        }
    }
    // Arm equivalence: the batched relay data plane must not change a single
    // artifact byte relative to the cell-at-a-time path. The chaos smoke
    // `--threads 1` tree above (batch on by default) is the reference; a
    // fresh `--batch off` run must reproduce it exactly.
    {
        let bin = sibling("chaos_sweep");
        let dir_on = scratch.join("chaos_smoke_t1");
        let dir_off = scratch.join("chaos_smoke_batch_off");
        let args_off = ["--smoke", "--quiet", "--threads", "1", "--batch", "off"];
        println!("determinism_check: batch_arms: chaos_sweep {args_off:?} vs batch-on t1 tree");
        run_child(&bin, &args_off, &dir_off);
        match diff_runs(&dir_on, &dir_off) {
            None => {
                let n = artifact_list(&dir_on.join("results")).len();
                println!("determinism_check: batch_arms: {n} artifact(s) byte-identical");
            }
            Some(diff) => {
                eprintln!("determinism_check: batch_arms: ARM DIVERGENCE DETECTED\n  {diff}");
                eprintln!("  scratch kept for inspection: {}", scratch.display());
                failures += 1;
            }
        }
    }
    // Sharded-engine arms: the conservative-PDES engine must produce the
    // same simulation outcome at any shard count and any worker-thread
    // count. `scalability_sweep --det` writes an artifact with only
    // sim-deterministic fields (no shard/thread/wall columns), so three
    // fresh-process runs — serial-equivalent (1 shard), 4 shards on one
    // worker, and 4 shards on 4 workers — must agree to the byte.
    {
        let bin = sibling("scalability_sweep");
        let arms: [(&str, &[&str]); 3] = [
            (
                "s1_t1",
                &[
                    "--smoke",
                    "--det",
                    "--quiet",
                    "--shards",
                    "1",
                    "--threads",
                    "1",
                ],
            ),
            (
                "s4_t1",
                &[
                    "--smoke",
                    "--det",
                    "--quiet",
                    "--shards",
                    "4",
                    "--threads",
                    "1",
                ],
            ),
            (
                "s4_t4",
                &[
                    "--smoke",
                    "--det",
                    "--quiet",
                    "--shards",
                    "4",
                    "--threads",
                    "4",
                ],
            ),
        ];
        let dirs: Vec<PathBuf> = arms
            .iter()
            .map(|(tag, args)| {
                let dir = scratch.join(format!("shard_arms_{tag}"));
                println!("determinism_check: shard_arms: scalability_sweep {args:?}");
                run_child(&bin, args, &dir);
                dir
            })
            .collect();
        let mut ok = true;
        for (i, dir) in dirs.iter().enumerate().skip(1) {
            if let Some(diff) = diff_runs(&dirs[0], dir) {
                eprintln!(
                    "determinism_check: shard_arms: SHARD-COUNT DIVERGENCE ({} vs {})\n  {diff}",
                    arms[0].0, arms[i].0
                );
                eprintln!("  scratch kept for inspection: {}", scratch.display());
                failures += 1;
                ok = false;
            }
        }
        if ok {
            let n = artifact_list(&dirs[0].join("results")).len();
            println!(
                "determinism_check: shard_arms: {n} artifact(s) byte-identical across \
                 shards 1/4 and 1/4 worker threads"
            );
        }
    }
    if failures > 0 {
        eprintln!("determinism_check: FAILED — {failures} workload(s) diverged");
        std::process::exit(1);
    }
    let _ = fs::remove_dir_all(&scratch);
    println!("determinism_check: ok — all workloads byte-identical across perturbations");
}
