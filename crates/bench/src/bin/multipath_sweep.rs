//! **§9.4 multipath ablation** — fetch time vs. number of circuits.
//!
//! With per-circuit bandwidth as the bottleneck (each circuit crosses
//! capacity-limited relays), splitting one fetch into k ranges over k
//! circuits approaches a k-fold speedup until some other resource binds —
//! in this topology, the two exit relays: k=2 doubles throughput exactly,
//! k=3/4 plateau because lanes start sharing exits. That bind is the
//! point: multipath gains are bounded by path diversity.
//!
//! `cargo run -p bench --release --bin multipath_sweep`

use bench::runner::{run_sweep, SweepOpts, Trial};
use bench::{arg_u64, write_csv};
use bento::protocol::FunctionSpec;
use bento::testnet::BentoNetwork;
use bento::{BentoClientNode, MiddleboxPolicy};
use bento_functions::multipath::{self, MultipathRequest};
use bento_functions::standard_registry;
use simnet::{Iface, SimDuration, SimTime};
use tor_net::ports::HTTP_PORT;

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// One sweep point: fetch `body` over `k` circuits on a fresh network;
/// returns (fetch-stage seconds, end-to-end seconds).
fn run_k(k: u8, file_len: u64, body: &[u8]) -> (f64, f64) {
    {
        // Fresh network per k: many middle relays so circuits rarely share
        // links; each relay capped so one circuit ≈ 200 KB/s.
        let mut bn = BentoNetwork::build_full(
            90 + k as u64,
            1,
            MiddleboxPolicy::permissive(),
            standard_registry,
            Iface::symmetric(SimDuration::from_millis(10), 200_000),
            Iface::symmetric(SimDuration::from_millis(10), 2_000_000),
        );
        let server = bn
            .net
            .add_web_server("web", vec![("/big".to_string(), vec![body.to_vec()])]);
        // The fetch stage is what multipath parallelizes; observe it on the
        // web server's link. (The function's output leg back to the client
        // rides ONE session circuit and is unchanged by k.)
        bn.net.sim.enable_sniffer(server);
        let client = bn.add_bento_client("alice");
        bn.net.sim.run_until(secs(2));
        let conn = bn
            .net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, ctx| {
                let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                    .into_iter()
                    .cloned()
                    .collect();
                n.bento
                    .connect_box(ctx, &mut n.tor, &boxes[0])
                    .expect("box")
            });
        bn.net.sim.run_until(secs(5));
        bn.net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, ctx| {
                n.bento
                    .request_container(ctx, &mut n.tor, conn, bento::protocol::ImageKind::Plain);
            });
        bn.net.sim.run_until(secs(8));
        let (container, inv, _) = bn
            .net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, _| n.container_ready(conn))
            .expect("container");
        bn.net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, ctx| {
                let spec = FunctionSpec {
                    params: if std::env::var("MP_DEBUG").is_ok() {
                        b"debug".to_vec()
                    } else {
                        vec![]
                    },
                    manifest: multipath::manifest(),
                };
                n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
            });
        bn.net.sim.run_until(secs(12));
        let t0 = bn.net.sim.now();
        bn.net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, ctx| {
                assert!(n.upload_ok(conn), "{:?}", n.bento_events);
                let req = MultipathRequest {
                    server,
                    port: HTTP_PORT,
                    path: "/big".into(),
                    total_len: file_len,
                    k,
                };
                n.bento.invoke(ctx, &mut n.tor, conn, inv, req.encode());
            });
        let mut last_dbg = 0u64;
        loop {
            let now = bn.net.sim.now();
            bn.net.sim.run_until(now + SimDuration::from_millis(200));
            let done = bn
                .net
                .sim
                .with_node::<BentoClientNode, _>(client, |n, _| n.output_done(conn));
            let el = bn.net.sim.now().since(t0).as_secs_f64() as u64;
            if std::env::var("MP_DEBUG").is_ok() && el / 30 > last_dbg {
                last_dbg = el / 30;
                bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
                    for e in &n.bento_events {
                        if let bento::BentoEvent::Output(c, d) = e {
                            if *c == conn && d.starts_with(b"DBG:") {
                                eprintln!("  {}", String::from_utf8_lossy(d));
                            }
                        }
                    }
                });
                let srv_bytes: u64 = bn
                    .net
                    .sim
                    .sniffer(server)
                    .events()
                    .iter()
                    .map(|e| e.bytes as u64)
                    .sum();
                eprintln!("k={k} t={el}s server-link bytes={srv_bytes}");
            }
            if done || bn.net.sim.now().since(t0).as_secs_f64() > 900.0 {
                break;
            }
        }
        bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
            assert_eq!(
                n.output_bytes(conn),
                body,
                "k={k} reassembled correctly (rejection: {:?})",
                n.rejection(conn)
            );
        });
        let e2e = bn.net.sim.now().since(t0).as_secs_f64();
        // Fetch-stage span: first to last event on the server's link.
        let events = bn.net.sim.sniffer(server).events();
        let fetch = events
            .last()
            .map(|l| l.time.since(events[0].time).as_secs_f64())
            .unwrap_or(0.0);
        (fetch, e2e)
    }
}

fn main() {
    let opts = SweepOpts::from_args();
    let mb = arg_u64("--mb", 4);
    let file_len = mb << 20;
    let body: Vec<u8> = (0..file_len).map(|i| (i * 131 % 251) as u8).collect();
    if !opts.quiet {
        println!("multipath sweep: {mb} MiB fetch, relay fabric at ~200 KB/s per circuit");
    }
    let ks = [1u8, 2, 3, 4];
    // Each k is an independent simulation on a fresh network: a list of
    // trial closures for the shared runner. The k=1 result anchors the
    // speedup column, so compute it after collection.
    let jobs: Vec<Trial<(f64, f64)>> = ks
        .iter()
        .map(|&k| {
            let body = body.clone();
            Box::new(move || run_k(k, file_len, &body)) as Trial<(f64, f64)>
        })
        .collect();
    let results = run_sweep("multipath_sweep", jobs);
    if !opts.quiet {
        println!(
            "{:<4} {:>12} {:>12} {:>14}",
            "k", "fetch (s)", "speedup", "end-to-end (s)"
        );
    }
    let base = results[0].0;
    let mut rows = Vec::new();
    for (&k, &(fetch, e2e)) in ks.iter().zip(results.iter()) {
        if !opts.quiet {
            println!(
                "{:<4} {:>12.1} {:>11.2}x {:>14.1}",
                k,
                fetch,
                base / fetch,
                e2e
            );
        }
        rows.push(format!("{k},{fetch:.2},{:.3},{e2e:.2}", base / fetch));
    }
    write_csv("multipath_sweep.csv", "k,fetch_s,speedup,e2e_s", &rows);
    opts.write_json_table("multipath_sweep", "k,fetch_s,speedup,e2e_s", &rows);
    opts.export_telemetry("multipath_sweep");
}
