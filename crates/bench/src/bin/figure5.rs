//! **Figure 5** — "Per client bandwidth with and without our LoadBalancer
//! function": 13 clients arriving ~1 s apart, each downloading a 10 MB
//! file from the hidden service; without the balancer they share one
//! server, with it replicas spin up (at most 2 clients each, up to 4
//! machines) and per-client throughput stays high.
//!
//! `cargo run -p bench --release --bin figure5`
//! Watermark ablation: `--watermark N`. Scale: `--clients N --mb N`.

use bench::runner::{run_sweep, SweepOpts, Trial};
use bench::{arg_u64, write_csv};
use bento::protocol::FunctionSpec;
use bento::testnet::BentoNetwork;
use bento::{BentoClientNode, MiddleboxPolicy};
use bento_functions::load_balancer::{lb_manifest, LbParams, ServiceParams};
use bento_functions::standard_registry;
use simnet::trace::Direction;
use simnet::{Iface, NodeId, SimDuration, SimTime, TimeSeries};
use tor_net::netbuild::TestClientNode;
use tor_net::ports::{BENTO_PORT, HS_VIRTUAL_PORT};
use tor_net::{HiddenServiceHost, StreamTarget, TorEvent};

const HORIZON_S: u64 = 420;

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// The hidden-service host machine's access link: the contended resource
/// (calibrated so 13 sharing clients land in the paper's tens-of-KB/s
/// regime while a lone client can reach several hundred KB/s).
fn service_iface() -> Iface {
    Iface::symmetric(SimDuration::from_millis(10), 1_800_000)
}

/// Relays are generously provisioned so the service uplink is the
/// bottleneck, as in the paper's EC2 deployment.
fn relay_iface() -> Iface {
    Iface::symmetric(SimDuration::from_millis(10), 12_000_000)
}

struct RunResult {
    /// Per-client (arrival-indexed) per-second download KB/s.
    series: Vec<Vec<(f64, f64)>>,
    /// Per-client completion time (s since experiment start), if finished.
    completion: Vec<Option<f64>>,
    machines: usize,
}

/// Drive `n_clients` onion downloads and sample per-client ingress.
fn run_clients(
    bn: &mut BentoNetwork,
    onion: tor_net::OnionAddr,
    n_clients: usize,
    file_len: u64,
    t_start: u64,
) -> RunResult {
    let mut clients = Vec::new();
    for i in 0..n_clients {
        let c = bn.net.add_client(&format!("client{i}"));
        bn.net.sim.enable_sniffer(c);
        clients.push(c);
    }
    bn.net.sim.run_until(secs(t_start));
    // Clients arrive ~1 s apart; each connects, opens a stream, requests.
    let mut rend: Vec<Option<tor_net::CircuitHandle>> = vec![None; n_clients];
    let mut streams: Vec<Option<u16>> = vec![None; n_clients];
    let mut requested = vec![false; n_clients];
    let mut started_at: Vec<SimTime> = vec![SimTime::ZERO; n_clients];
    let t0 = secs(t_start);
    for (i, &c) in clients.iter().enumerate() {
        bn.net.sim.run_until(secs(t_start + i as u64));
        let r = bn
            .net
            .sim
            .with_node::<TestClientNode, _>(c, |n, ctx| n.tor.connect_onion(ctx, onion));
        rend[i] = r;
        started_at[i] = bn.net.sim.now();
    }
    // Event loop: poll for rendezvous completion, open streams, request,
    // and keep running to the horizon.
    let deadline = secs(t_start + HORIZON_S);
    while bn.net.sim.now() < deadline {
        let now = bn.net.sim.now();
        bn.net.sim.run_until(now + SimDuration::from_millis(500));
        for (i, &c) in clients.iter().enumerate() {
            let Some(r) = rend[i] else { continue };
            if streams[i].is_none() {
                let ready = bn.net.sim.with_node::<TestClientNode, _>(c, |n, _| {
                    n.has_event(|e| matches!(e, TorEvent::RendezvousReady(h) if *h == r))
                });
                if ready {
                    streams[i] = bn.net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
                        n.tor.open_stream(ctx, r, StreamTarget::Hs(HS_VIRTUAL_PORT))
                    });
                } else if bn.net.sim.now().since(started_at[i]).as_secs_f64() > 30.0 {
                    // Like the real Tor client: retry a stalled rendezvous
                    // with a fresh rendezvous point and intro circuit.
                    let nr = bn.net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
                        n.tor.connect_onion(ctx, onion)
                    });
                    rend[i] = nr;
                    started_at[i] = bn.net.sim.now();
                }
            } else if !requested[i] {
                let s = streams[i].unwrap();
                let connected = bn.net.sim.with_node::<TestClientNode, _>(c, |n, _| {
                    n.has_event(
                        |e| matches!(e, TorEvent::StreamConnected(h, sid) if *h == r && *sid == s),
                    )
                });
                if connected {
                    bn.net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
                        n.tor.send_stream(ctx, r, s, b"GET");
                    });
                    requested[i] = true;
                }
            }
        }
    }
    // Diagnostics for stalled clients.
    for (i, &c) in clients.iter().enumerate() {
        let total: u64 = bn
            .net
            .sim
            .sniffer(c)
            .events()
            .iter()
            .filter(|e| e.dir == Direction::Incoming)
            .map(|e| e.bytes as u64)
            .sum();
        if total < file_len {
            bn.net.sim.with_node::<TestClientNode, _>(c, |n, _| {
                let kinds: Vec<String> = n
                    .events
                    .iter()
                    .map(|e| format!("{e:?}")[..40.min(format!("{e:?}").len())].to_string())
                    .collect();
                eprintln!("client {i}: received {total} bytes; events: {kinds:?}");
            });
        }
    }
    // Harvest per-second ingress series and completion times.
    let mut series = Vec::new();
    let mut completion = Vec::new();
    for (i, &c) in clients.iter().enumerate() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        let mut received = 0u64;
        let mut done_at = None;
        for ev in bn.net.sim.sniffer(c).events() {
            if ev.dir == Direction::Incoming && ev.time >= t0 {
                ts.add(SimTime(ev.time.0 - t0.0), ev.bytes as f64 / 1024.0);
                received += ev.bytes as u64;
                if done_at.is_none() && received >= file_len {
                    done_at = Some(ev.time.since(t0).as_secs_f64());
                }
            }
        }
        let _ = i;
        series.push(ts.rate_points());
        completion.push(done_at);
    }
    RunResult {
        series,
        completion,
        machines: 0,
    }
}

fn emit(name: &str, result: &RunResult, n_clients: usize) {
    let max_len = result.series.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut rows = Vec::new();
    for t in 0..max_len {
        let mut row = format!("{t}");
        for s in &result.series {
            let v = s.get(t).map(|(_, v)| *v).unwrap_or(0.0);
            row.push_str(&format!(",{v:.1}"));
        }
        rows.push(row);
    }
    let header = std::iter::once("time_s".to_string())
        .chain((1..=n_clients).map(|i| format!("client{i}_kbps")))
        .collect::<Vec<_>>()
        .join(",");
    write_csv(name, &header, &rows);
}

fn main() {
    let opts = SweepOpts::from_args();
    let n_clients = arg_u64("--clients", 13) as usize;
    let mb = arg_u64("--mb", 10);
    let watermark = arg_u64("--watermark", 2) as u32;
    let seed = arg_u64("--seed", 9);
    // 0 = serial engine (default, matches checked-in artifacts); N >= 1 runs
    // both conditions on the sharded conservative-PDES engine.
    let shards = arg_u64("--shards", 0) as usize;
    let file_len = mb << 20;
    let svc_seed = [0x5E; 32];
    let onion = HiddenServiceHost::new(svc_seed, 0, true).onion_addr();

    // The two conditions are independent simulations; express them as
    // trials so the shared runner can overlap them (`--threads 2`) while
    // keeping without/with results in a fixed order.
    if !opts.quiet {
        println!("== without LoadBalancer: single hidden service ==");
        println!("== with LoadBalancer: watermark {watermark}, up to 4 machines ==");
    }
    let without_trial = move || {
        let mut bn = BentoNetwork::build_full_opts(
            seed,
            1,
            MiddleboxPolicy::permissive(),
            standard_registry,
            relay_iface(),
            relay_iface(),
            shards,
        );
        let mut node = TestClientNode::new(bn.net.authority, bn.net.authority_key)
            .with_hs(HiddenServiceHost::new(svc_seed, 3, true));
        node.serve_bytes = Some(file_len as usize);
        let _svc = bn
            .net
            .sim
            .add_node("service", service_iface(), Box::new(node));
        bn.net.sim.run_until(secs(20));
        run_clients(&mut bn, onion, n_clients, file_len, 22)
    };
    let with_lb_trial = move || {
        // Four Bento boxes: the balancer's box plus three replica boxes —
        // each box's access link is the same as the single service above.
        let mut bn = BentoNetwork::build_full_opts(
            seed ^ 0xF5,
            4,
            MiddleboxPolicy::permissive(),
            standard_registry,
            relay_iface(),
            service_iface(),
            shards,
        );
        let operator = bn.add_bento_client("operator");
        bn.net.sim.run_until(secs(2));
        let replica_boxes: Vec<(NodeId, u16)> =
            bn.boxes[1..4].iter().map(|b| (*b, BENTO_PORT)).collect();
        let params = LbParams {
            service: ServiceParams {
                seed: svc_seed,
                file_len,
            },
            n_intro: 3,
            max_per_replica: watermark,
            replica_boxes,
        };
        // Install the balancer on box 0.
        let conn = bn
            .net
            .sim
            .with_node::<BentoClientNode, _>(operator, |n, ctx| {
                let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                    .into_iter()
                    .cloned()
                    .collect();
                n.bento
                    .connect_box(ctx, &mut n.tor, &boxes[0])
                    .expect("box")
            });
        bn.net.sim.run_until(secs(5));
        bn.net
            .sim
            .with_node::<BentoClientNode, _>(operator, |n, ctx| {
                n.bento
                    .request_container(ctx, &mut n.tor, conn, bento::protocol::ImageKind::Plain);
            });
        bn.net.sim.run_until(secs(8));
        let (container, _inv, _) = bn
            .net
            .sim
            .with_node::<BentoClientNode, _>(operator, |n, _| n.container_ready(conn))
            .expect("container");
        bn.net
            .sim
            .with_node::<BentoClientNode, _>(operator, |n, ctx| {
                let spec = FunctionSpec {
                    params: params.encode(),
                    manifest: lb_manifest(),
                };
                n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
            });
        bn.net.sim.run_until(secs(20));
        let mut r = run_clients(&mut bn, onion, n_clients, file_len, 22);
        // Count active machines at the end (operator inspection).
        r.machines = 1; // reported via logs; the LB box is always serving
        r
    };
    let jobs: Vec<Trial<RunResult>> = vec![Box::new(without_trial), Box::new(with_lb_trial)];
    let mut results = run_sweep("figure5", jobs);
    let without = results.remove(0);
    let with_lb = results.remove(0);
    emit("figure5_without_lb.csv", &without, n_clients);
    emit("figure5_with_lb.csv", &with_lb, n_clients);

    // Summary table.
    if !opts.quiet {
        println!("\nper-client completion times (s):");
        println!("{:<8} {:>14} {:>14}", "client", "without LB", "with LB");
    }
    let mut done_without = 0;
    let mut done_with = 0;
    let mut summary_rows = Vec::new();
    for i in 0..n_clients {
        let w = without.completion[i];
        let l = with_lb.completion[i];
        if w.is_some() {
            done_without += 1;
        }
        if l.is_some() {
            done_with += 1;
        }
        let w = w.map(|v| format!("{v:.1}")).unwrap_or("-".into());
        let l = l.map(|v| format!("{v:.1}")).unwrap_or("-".into());
        if !opts.quiet {
            println!("{:<8} {:>14} {:>14}", i + 1, w, l);
        }
        summary_rows.push(format!("{},{w},{l}", i + 1));
    }
    let mean = |v: &Vec<Option<f64>>| {
        let xs: Vec<f64> = v.iter().flatten().copied().collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    if !opts.quiet {
        println!(
            "\ncompleted within {}s: without={} with={} (of {})",
            HORIZON_S, done_without, done_with, n_clients
        );
        println!(
            "mean completion: without={:.1}s with={:.1}s",
            mean(&without.completion),
            mean(&with_lb.completion)
        );
    }
    opts.write_json_table("figure5", "client,without_lb_s,with_lb_s", &summary_rows);
    opts.export_telemetry("figure5");
}
