//! Deterministic parallel trial runner.
//!
//! Every evaluation binary in this crate sweeps an axis (padding quantum,
//! circuit count, client count, ...) by running **independent simulation
//! trials**: each trial builds its own [`simnet::Simulator`] from an explicit
//! seed and config, runs it to completion, and reduces the run to a plain
//! data value. Trials share no state, so they can execute on worker threads
//! in any order — determinism is preserved because
//!
//! 1. every trial's result is a pure function of its closure (the simulator
//!    RNG is seeded inside the trial, and nothing reads ambient state), and
//! 2. results are collected **in trial-index order**, not completion order.
//!
//! A sweep run with `--threads 1` is therefore byte-for-byte identical to the
//! same sweep run on every core of the machine (the regression test in
//! `tests/runner.rs` holds this invariant down).

use std::collections::VecDeque;
use std::sync::Mutex;

/// A boxed trial: runs to completion on some worker and yields its result.
pub type Trial<T> = Box<dyn FnOnce() -> T + Send>;

/// Worker-thread count actually used for `jobs` trials: the `--threads N`
/// argument if given (0 or absent means auto), else the machine's available
/// parallelism, never more than the number of trials.
pub fn threads_for(jobs: usize) -> usize {
    let requested = crate::arg_u64("--threads", 0) as usize;
    let n = if requested == 0 {
        available_threads()
    } else {
        requested
    };
    n.clamp(1, jobs.max(1))
}

/// The host's available parallelism (1 if it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run every trial and return their results **in trial-index order**.
///
/// With `threads <= 1` the trials run inline on the caller's thread, in
/// order — the reference behavior. With more threads, workers pull trials
/// from a shared queue (lowest index first) and deposit results into the
/// trial's slot, so scheduling never reorders or mixes results.
///
/// A panicking trial propagates the panic to the caller once all workers
/// have stopped, matching the sequential behavior closely enough for
/// assert-style trials.
pub fn run_trials<T: Send>(threads: usize, jobs: Vec<Trial<T>>) -> Vec<T> {
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let queue: Mutex<VecDeque<(usize, Trial<T>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let next = queue.lock().expect("trial queue poisoned").pop_front();
                let Some((index, job)) = next else { break };
                let result = job();
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every trial deposits exactly one result")
        })
        .collect()
}

/// Convenience: run `jobs` with the CLI-derived thread count and a one-line
/// note about the mode, returning results in trial-index order.
pub fn run_sweep<T: Send>(what: &str, jobs: Vec<Trial<T>>) -> Vec<T> {
    let threads = threads_for(jobs.len());
    eprintln!(
        "[runner] {}: {} trials on {} thread{}",
        what,
        jobs.len(),
        threads,
        if threads == 1 { "" } else { "s" }
    );
    run_trials(threads, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let jobs: Vec<Trial<usize>> = (0..32usize)
            .map(|i| Box::new(move || i * i) as Trial<usize>)
            .collect();
        for threads in [1, 2, 4, 7] {
            let jobs: Vec<Trial<usize>> = (0..32usize)
                .map(|i| Box::new(move || i * i) as Trial<usize>)
                .collect();
            assert_eq!(
                run_trials(threads, jobs),
                (0..32usize).map(|i| i * i).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
        assert_eq!(run_trials(3, jobs).len(), 32);
    }

    #[test]
    fn zero_and_single_job_edge_cases() {
        assert!(run_trials::<u8>(4, Vec::new()).is_empty());
        let one: Vec<Trial<u8>> = vec![Box::new(|| 9)];
        assert_eq!(run_trials(8, one), vec![9]);
    }
}
