//! Deterministic parallel trial runner.
//!
//! Every evaluation binary in this crate sweeps an axis (padding quantum,
//! circuit count, client count, ...) by running **independent simulation
//! trials**: each trial builds its own [`simnet::Simulator`] from an explicit
//! seed and config, runs it to completion, and reduces the run to a plain
//! data value. Trials share no state, so they can execute on worker threads
//! in any order — determinism is preserved because
//!
//! 1. every trial's result is a pure function of its closure (the simulator
//!    RNG is seeded inside the trial, and nothing reads ambient state), and
//! 2. results are collected **in trial-index order**, not completion order.
//!
//! A sweep run with `--threads 1` is therefore byte-for-byte identical to the
//! same sweep run on every core of the machine (the regression test in
//! `tests/runner.rs` holds this invariant down).

use std::collections::VecDeque;
use std::sync::Mutex;

/// A boxed trial: runs to completion on some worker and yields its result.
pub type Trial<T> = Box<dyn FnOnce() -> T + Send>;

/// Worker-thread count actually used for `jobs` trials: the `--threads N`
/// argument if given (0 or absent means auto), else the machine's available
/// parallelism, never more than the number of trials.
pub fn threads_for(jobs: usize) -> usize {
    let requested = crate::arg_u64("--threads", 0) as usize;
    let n = if requested == 0 {
        available_threads()
    } else {
        requested
    };
    n.clamp(1, jobs.max(1))
}

/// The host's available parallelism (1 if it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run every trial and return their results **in trial-index order**.
///
/// Each trial's telemetry is captured with [`telemetry::scoped`] and folded
/// into the calling thread's registry in trial-index order, so the metrics a
/// sweep accumulates — like its results — are byte-identical across thread
/// counts.
///
/// A panicking trial propagates the panic to the caller once all workers
/// have stopped, matching the sequential behavior closely enough for
/// assert-style trials.
pub fn run_trials<T: Send + 'static>(threads: usize, jobs: Vec<Trial<T>>) -> Vec<T> {
    run_trials_traced(threads, jobs)
        .into_iter()
        .map(|(value, snap)| {
            telemetry::merge(&snap);
            value
        })
        .collect()
}

/// Like [`run_trials`], but pair each trial's result with the telemetry
/// [`telemetry::Snapshot`] it recorded (captured via [`telemetry::scoped`],
/// so nothing leaks into the worker's or caller's registry). Snapshots come
/// back in trial-index order regardless of scheduling.
pub fn run_trials_traced<T: Send + 'static>(
    threads: usize,
    jobs: Vec<Trial<T>>,
) -> Vec<(T, telemetry::Snapshot)> {
    let traced: Vec<Trial<(T, telemetry::Snapshot)>> = jobs
        .into_iter()
        .map(|job| Box::new(move || telemetry::scoped(job)) as Trial<(T, telemetry::Snapshot)>)
        .collect();
    run_trials_raw(threads, traced)
}

/// The scheduling core: with `threads <= 1` the trials run inline on the
/// caller's thread, in order — the reference behavior. With more threads,
/// workers pull trials from a shared queue (lowest index first) and deposit
/// results into the trial's slot, so scheduling never reorders or mixes
/// results.
fn run_trials_raw<T: Send>(threads: usize, jobs: Vec<Trial<T>>) -> Vec<T> {
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let queue: Mutex<VecDeque<(usize, Trial<T>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let next = queue.lock().expect("trial queue poisoned").pop_front();
                let Some((index, job)) = next else { break };
                let result = job();
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every trial deposits exactly one result")
        })
        .collect()
}

/// Convenience: run `jobs` with the CLI-derived thread count and a one-line
/// note about the mode, returning results in trial-index order.
pub fn run_sweep<T: Send + 'static>(what: &str, jobs: Vec<Trial<T>>) -> Vec<T> {
    let threads = threads_for(jobs.len());
    if !crate::quiet() {
        eprintln!(
            "[runner] {}: {} trials on {} thread{}",
            what,
            jobs.len(),
            threads,
            if threads == 1 { "" } else { "s" }
        );
    }
    run_trials(threads, jobs)
}

/// The CLI surface every sweep binary shares: `--quiet`, `--json <path>`,
/// and `--telemetry off|summary|full`. Constructing it applies the flags
/// process-wide (recording mode, quiet), so call it at the top of `main`.
pub struct SweepOpts {
    /// Suppress progress chatter (`--quiet`).
    pub quiet: bool,
    /// Mirror the primary table to this path as JSON (`--json <path>`).
    pub json: Option<String>,
    /// Telemetry recording mode (`--telemetry`, default `summary`).
    pub telemetry: telemetry::Mode,
}

impl SweepOpts {
    /// Parse the shared flags from `std::env::args` and apply them.
    pub fn from_args() -> SweepOpts {
        let quiet = crate::arg_flag("--quiet");
        let json = crate::arg_opt("--json");
        let raw = crate::arg_str("--telemetry", "summary");
        let mode = telemetry::Mode::parse(&raw).unwrap_or_else(|| {
            eprintln!("unknown --telemetry mode {raw:?} (want off|summary|full)");
            std::process::exit(2);
        });
        telemetry::set_mode(mode);
        crate::set_quiet(quiet);
        SweepOpts {
            quiet,
            json,
            telemetry: mode,
        }
    }

    /// Mirror a table already written via [`crate::write_csv`] to the
    /// `--json` path, if one was given.
    pub fn write_json_table(&self, table: &str, header: &str, rows: &[String]) {
        if let Some(path) = &self.json {
            crate::write_json_table(path, table, header, rows);
        }
    }

    /// Export the telemetry totals accumulated so far (trial metrics are
    /// folded in by [`run_trials`]) as `results/TELEMETRY_<name>.json`.
    pub fn export_telemetry(&self, name: &str) {
        export_telemetry(name, None);
    }
}

/// Write `results/TELEMETRY_<name>.json` from the calling thread's current
/// telemetry totals, plus optional per-trial snapshots in trial-index order.
pub fn export_telemetry(name: &str, trials: Option<&[telemetry::Snapshot]>) {
    let totals = telemetry::snapshot();
    let path = telemetry::export::write("results", name, name, telemetry::mode(), &totals, trials)
        .expect("write telemetry export");
    if !crate::quiet() {
        println!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let jobs: Vec<Trial<usize>> = (0..32usize)
            .map(|i| Box::new(move || i * i) as Trial<usize>)
            .collect();
        for threads in [1, 2, 4, 7] {
            let jobs: Vec<Trial<usize>> = (0..32usize)
                .map(|i| Box::new(move || i * i) as Trial<usize>)
                .collect();
            assert_eq!(
                run_trials(threads, jobs),
                (0..32usize).map(|i| i * i).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
        assert_eq!(run_trials(3, jobs).len(), 32);
    }

    #[test]
    fn zero_and_single_job_edge_cases() {
        assert!(run_trials::<u8>(4, Vec::new()).is_empty());
        let one: Vec<Trial<u8>> = vec![Box::new(|| 9)];
        assert_eq!(run_trials(8, one), vec![9]);
    }

    #[cfg(feature = "telemetry-on")]
    #[test]
    fn traced_trials_capture_per_trial_metrics() {
        static T_TRIAL: telemetry::Counter = telemetry::Counter::new("bench.test.trial_units");
        let jobs: Vec<Trial<u64>> = (1..=4u64)
            .map(|i| {
                Box::new(move || {
                    T_TRIAL.add(i);
                    i
                }) as Trial<u64>
            })
            .collect();
        let out = run_trials_traced(2, jobs);
        for (i, (value, snap)) in out.iter().enumerate() {
            assert_eq!(*value as usize, i + 1, "values in trial-index order");
            assert_eq!(
                snap.counters["bench.test.trial_units"],
                (i + 1) as u64,
                "each snapshot holds exactly its own trial's metrics"
            );
        }
    }
}
