//! # bench — experiment harness regenerating the paper's tables and figures
//!
//! One binary per experiment (see DESIGN.md's per-experiment index):
//!
//! | paper artifact | binary | output |
//! |---|---|---|
//! | Table 1 (WF attack accuracy) | `table1` | `results/table1.csv` |
//! | Table 2 (download times)     | `table2` | `results/table2.csv` |
//! | Figure 5 (LoadBalancer)      | `figure5`| `results/figure5_{with,without}_lb.csv` |
//! | §7.3 scalability             | `scalability` | `results/scalability.txt` |
//! | §9.3 Shard property          | `shard_recovery` | `results/shard_recovery.txt` |
//! | §9.1 Cover ablation          | `cover_ablation` | `results/cover_ablation.txt` |
//!
//! Criterion microbenches live in `benches/` (crypto, cells, erasure,
//! classifiers, attestation, EPC paging).

#![forbid(unsafe_code)]

pub mod runner;

use std::fs;
use std::io::Write;
use std::path::Path;

/// Write rows as CSV into `results/<name>` (creating the directory), and
/// echo the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    println!("wrote {}", path.display());
}

/// Write a free-form text report into `results/<name>`.
pub fn write_report(name: &str, body: &str) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    fs::write(&path, body).expect("write report");
    println!("wrote {}", path.display());
}

/// Parse `--key value` style args with a default.
pub fn arg_u64(key: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse a `--key value` style string arg with a default.
pub fn arg_str(key: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// Whether a bare flag is present.
pub fn arg_flag(key: &str) -> bool {
    std::env::args().any(|a| a == key)
}
