//! # bench — experiment harness regenerating the paper's tables and figures
//!
//! One binary per experiment (see DESIGN.md's per-experiment index):
//!
//! | paper artifact | binary | output |
//! |---|---|---|
//! | Table 1 (WF attack accuracy) | `table1` | `results/table1.csv` |
//! | Table 2 (download times)     | `table2` | `results/table2.csv` |
//! | Figure 5 (LoadBalancer)      | `figure5`| `results/figure5_{with,without}_lb.csv` |
//! | §7.3 scalability             | `scalability` | `results/scalability.txt` |
//! | §9.3 Shard property          | `shard_recovery` | `results/shard_recovery.txt` |
//! | §9.1 Cover ablation          | `cover_ablation` | `results/cover_ablation.txt` |
//!
//! Criterion microbenches live in `benches/` (crypto, cells, erasure,
//! classifiers, attestation, EPC paging).
//!
//! Every sweep binary shares one CLI surface via [`runner::SweepOpts`]:
//! `--quiet` (suppress progress chatter), `--json <path>` (mirror the
//! primary table as JSON), and `--telemetry off|summary|full` (recording
//! mode; each binary also exports `results/TELEMETRY_<name>.json`).

#![forbid(unsafe_code)]

pub mod chaos;
pub mod runner;

use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

static QUIET: AtomicBool = AtomicBool::new(false);

/// True when `--quiet` was given: progress chatter (the runner note and
/// `wrote ...` echoes) is suppressed. File contents are unaffected.
pub fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

pub(crate) fn set_quiet(q: bool) {
    QUIET.store(q, Ordering::Relaxed);
}

/// Write rows as CSV into `results/<name>` (creating the directory), and
/// echo the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    if !quiet() {
        println!("wrote {}", path.display());
    }
}

/// Write a free-form text report into `results/<name>`.
pub fn write_report(name: &str, body: &str) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    fs::write(&path, body).expect("write report");
    if !quiet() {
        println!("wrote {}", path.display());
    }
}

/// Write `header` + `rows` — the exact strings handed to [`write_csv`] — as
/// a JSON table to `path`. Cells that form a finite JSON number are emitted
/// bare; everything else is quoted. Reusing the CSV cell strings verbatim
/// keeps the two artifacts trivially consistent and the bytes deterministic.
pub fn write_json_table(path: &str, table: &str, header: &str, rows: &[String]) {
    fn json_number(cell: &str) -> bool {
        !cell.is_empty()
            && !cell.starts_with('+')
            && cell.parse::<f64>().map(f64::is_finite).unwrap_or(false)
            && cell
                .chars()
                .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
    }
    fn quote(cell: &str) -> String {
        format!("\"{}\"", cell.replace('\\', "\\\\").replace('"', "\\\""))
    }
    let columns: Vec<String> = header.split(',').map(quote).collect();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"table\": {},\n", quote(table)));
    out.push_str(&format!("  \"columns\": [{}],\n", columns.join(", ")));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let cells: Vec<String> = row
            .split(',')
            .map(|cell| {
                if json_number(cell) {
                    cell.to_string()
                } else {
                    quote(cell)
                }
            })
            .collect();
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!("    [{}]{comma}\n", cells.join(", ")));
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).expect("create json table dir");
        }
    }
    fs::write(path, out).expect("write json table");
    if !quiet() {
        println!("wrote {path}");
    }
}

/// Parse `--key value` style args with a default.
pub fn arg_u64(key: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse a `--key value` style string arg with a default.
pub fn arg_str(key: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// Parse an optional `--key value` arg (`None` when absent).
pub fn arg_opt(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether a bare flag is present.
pub fn arg_flag(key: &str) -> bool {
    std::env::args().any(|a| a == key)
}
