//! Shared core of the chaos experiments: one fault-injected Tor network,
//! recovery-enabled clients, and the recovery outcome reduced to plain
//! numbers.
//!
//! Both the `chaos_sweep` binary and the integration tests drive this so
//! "clients survive the default fault mix" is asserted from one code path.
//! Each trial is a pure function of its [`ChaosConfig`]: the fault plan is
//! scheduled up front and every random draw comes from the simulator's
//! seeded RNG, so a trial replays byte-identically — including across
//! `--threads N` (the runner collects results in trial-index order).

use simnet::{FaultAction, FaultPlan, LinkFault, SimDuration, SimTime};
use tor_net::client::TerminalReq;
use tor_net::netbuild::TestClientNode;
use tor_net::ports::HTTP_PORT;
use tor_net::stream_frame::encode_frame;
use tor_net::{CircuitHandle, StreamTarget, TorEvent};

/// Histogram of observed time-to-recover for rebuilt circuits (ms).
static T_RECOVERY_OBSERVED: telemetry::Histo =
    telemetry::Histo::new("chaos.client_observed_recover_ms");

/// One chaos trial's knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Simulation seed (drives topology, paths, fault coin flips).
    pub seed: u64,
    /// Per-message loss applied to every link while the lossy window is
    /// open (percent, 0 disables).
    pub loss_pct: f64,
    /// Crash one middle relay mid-run and restart it a few seconds later.
    pub crash_relay: bool,
    /// Cut two middle relays off from everyone else for a few seconds.
    pub partition: bool,
    /// Number of recovery-enabled clients downloading in a loop.
    pub clients: usize,
    /// Simulated horizon in seconds.
    pub horizon_s: u64,
    /// Relay data plane arm: batched (true) or cell-at-a-time. The two arms
    /// are byte-identical by construction; the determinism gate compares
    /// them.
    pub batch: bool,
}

impl ChaosConfig {
    /// The default fault mix: relay crash + restart, `loss_pct`% loss, one
    /// partition that heals.
    pub fn default_mix(seed: u64, loss_pct: f64) -> ChaosConfig {
        ChaosConfig {
            seed,
            loss_pct,
            crash_relay: true,
            partition: true,
            clients: 4,
            horizon_s: 40,
            batch: true,
        }
    }
}

/// What came out of a chaos trial.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChaosOutcome {
    /// Application bytes delivered to clients (stream data).
    pub goodput_bytes: u64,
    /// Page downloads that ran to completion (stream ended).
    pub downloads: u64,
    /// Managed circuits rebuilt after a failure ([`TorEvent::CircuitRebuilt`]).
    pub rebuilds: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Messages the fault plane dropped (loss, partitions, crashes).
    pub msgs_dropped: u64,
    /// Node crashes + restarts actually applied.
    pub crashes: u64,
    pub restarts: u64,
}

/// Timeline of the default mix (seconds): faults open after the network and
/// the first circuits settle, and everything is healed with time to spare
/// so recovery — not luck — explains a surviving trial.
const T_CRASH: u64 = 6;
const T_RESTART: u64 = 10;
const T_LOSS_ON: u64 = 12;
const T_PARTITION: u64 = 14;
const T_HEAL: u64 = 17;
const T_LOSS_OFF: u64 = 24;

/// How long a download may sit without progress before the driver gives up
/// on its circuit (a stalled mid-transfer stream keeps the circuit "alive";
/// tearing it down hands the slot to the managed-rebuild machinery, like a
/// real client abandoning a dead circuit).
const STALL: SimDuration = SimDuration(6_000_000_000);

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// Run one chaos trial: build the network, schedule the fault plan, keep
/// `cfg.clients` recovery-enabled clients downloading a page in a loop,
/// and reduce the run to a [`ChaosOutcome`].
pub fn run_chaos_trial(cfg: &ChaosConfig) -> ChaosOutcome {
    let mut net = tor_net::netbuild::NetworkBuilder::new()
        .seed(cfg.seed)
        .middles(8)
        .exits(3)
        .hsdirs(2)
        .batch(cfg.batch)
        .build();
    const PAGE_LEN: u64 = 30_000;
    let page = vec![0xB7u8; PAGE_LEN as usize];
    let server = net.add_web_server("web", vec![("/".to_string(), vec![page])]);

    // net.relays is authority-first; the static fault targets are middle
    // relays, never the authority (a crashed authority is a different
    // experiment). The crash target is picked later, once circuits exist.
    let middles: Vec<simnet::NodeId> = net.relays[1..].iter().map(|(id, _)| *id).collect();
    let mut plan = FaultPlan::new();
    if cfg.loss_pct > 0.0 {
        plan = plan
            .all_links(secs(T_LOSS_ON), LinkFault::loss_pct(cfg.loss_pct))
            .all_links_clear(secs(T_LOSS_OFF));
    }
    if cfg.partition && middles.len() >= 3 {
        plan = plan
            .partition(secs(T_PARTITION), vec![middles[1], middles[2]])
            .heal(secs(T_HEAL));
    }
    net.sim.install_faults(plan);

    let clients: Vec<_> = (0..cfg.clients)
        .map(|i| net.add_client(&format!("chaos{i}")))
        .collect();
    for &c in &clients {
        net.sim
            .with_node::<TestClientNode, _>(c, |n, _| n.tor.enable_recovery());
    }
    net.sim.run_until(secs(3));

    // Every client keeps one managed circuit to the exit and re-requests
    // the page as soon as the previous download finishes; the managed
    // handle is re-pointed when the client announces a rebuild.
    struct Driver {
        circ: Option<CircuitHandle>,
        in_flight: bool,
        failed_at: Option<SimTime>,
        last_progress: SimTime,
        /// Bytes received since the current request went out (the server
        /// keeps streams open, so arrival of the full page is what marks a
        /// download complete).
        got: u64,
    }
    let now0 = net.sim.now();
    let mut drivers: Vec<Driver> = clients
        .iter()
        .map(|&c| {
            let circ = net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
                n.tor
                    .build_circuit_managed(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
            });
            Driver {
                circ,
                in_flight: false,
                failed_at: None,
                last_progress: now0,
                got: 0,
            }
        })
        .collect();
    net.sim.run_until(secs(5));

    // The crash hits a relay that is actually carrying a client circuit —
    // the first client's guard — so the crash provably kills at least one
    // circuit and the trial exercises rebuild, not luck.
    if cfg.crash_relay {
        let guard_fp = drivers
            .first()
            .and_then(|d| d.circ)
            .map(|h| {
                net.sim
                    .with_node::<TestClientNode, _>(clients[0], |n, _| n.tor.circuit_path(h))
            })
            .and_then(|path| path.first().copied());
        let victim = guard_fp
            .and_then(|fp| {
                net.relays[1..]
                    .iter()
                    .find(|(_, f)| *f == fp)
                    .map(|(id, _)| *id)
            })
            .unwrap_or(middles[0]);
        net.sim
            .inject_fault(secs(T_CRASH), FaultAction::Crash(victim));
        net.sim
            .inject_fault(secs(T_RESTART), FaultAction::Restart(victim));
    }

    let mut out = ChaosOutcome::default();
    let deadline = secs(cfg.horizon_s);
    while net.sim.now() < deadline {
        let step_end = net.sim.now() + SimDuration::from_millis(500);
        net.sim.run_until(step_end.min(deadline));
        let now = net.sim.now();
        for (d, &c) in drivers.iter_mut().zip(clients.iter()) {
            let events = net
                .sim
                .with_node::<TestClientNode, _>(c, |n, _| n.take_events());
            for ev in events {
                match ev {
                    TorEvent::StreamData(_, _, data) => {
                        out.goodput_bytes += data.len() as u64;
                        d.last_progress = now;
                        if d.in_flight {
                            d.got += data.len() as u64;
                            if d.got >= PAGE_LEN {
                                out.downloads += 1;
                                d.in_flight = false;
                            }
                        }
                    }
                    TorEvent::StreamEnded(h, _) if Some(h) == d.circ => {
                        d.in_flight = false;
                    }
                    TorEvent::CircuitRebuilt(old, new) => {
                        out.rebuilds += 1;
                        if Some(old) == d.circ {
                            d.circ = Some(new);
                            d.in_flight = false;
                        }
                        if let Some(t0) = d.failed_at.take() {
                            T_RECOVERY_OBSERVED.record(now.since(t0).as_millis());
                        }
                    }
                    TorEvent::CircuitClosed(h) if Some(h) == d.circ => {
                        d.in_flight = false;
                        if d.failed_at.is_none() {
                            d.failed_at = Some(now);
                        }
                    }
                    _ => {}
                }
            }
            let Some(h) = d.circ else { continue };
            if d.in_flight {
                // Stalled mid-download (e.g. the End cell was lost, or the
                // partition ate the tail): abandon the circuit and start a
                // fresh managed one. A deliberate teardown is not a failure,
                // so the client does not auto-rebuild it — the driver does.
                if now.since(d.last_progress) > STALL {
                    d.circ = net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
                        n.tor.destroy_circuit(ctx, h);
                        n.tor
                            .build_circuit_managed(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
                    });
                    d.in_flight = false;
                    d.last_progress = now;
                }
            } else {
                let started = net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
                    if !n.tor.is_ready(h) {
                        return false;
                    }
                    match n
                        .tor
                        .open_stream(ctx, h, StreamTarget::Node(server, HTTP_PORT))
                    {
                        Some(s) => {
                            n.tor.send_stream(ctx, h, s, &encode_frame(b"/"));
                            true
                        }
                        None => false,
                    }
                });
                if started {
                    d.in_flight = true;
                    d.last_progress = now;
                    d.got = 0;
                }
            }
        }
    }
    let stats = net.sim.stats();
    let faults = net.sim.fault_stats();
    out.events = stats.events;
    out.msgs_dropped = faults.msgs_dropped;
    out.crashes = faults.crashes;
    out.restarts = faults.restarts;
    out
}

/// Assert the recovery acceptance properties on a finished trial: faults
/// were really applied, yet goodput is nonzero and (when a relay was
/// crashed) at least one managed circuit was rebuilt. Panics with the
/// config and outcome on violation, so a failing sweep names its trial.
pub fn assert_recovered(cfg: &ChaosConfig, out: &ChaosOutcome) {
    assert!(
        out.goodput_bytes > 0,
        "no goodput under chaos: {cfg:?} -> {out:?}"
    );
    assert!(
        out.downloads > 0,
        "no download completed under chaos: {cfg:?} -> {out:?}"
    );
    if cfg.crash_relay {
        assert_eq!(out.crashes, 1, "crash was applied: {cfg:?} -> {out:?}");
        assert_eq!(out.restarts, 1, "restart was applied: {cfg:?} -> {out:?}");
        assert!(
            out.rebuilds >= 1,
            "no circuit rebuilt after the crash: {cfg:?} -> {out:?}"
        );
    }
    if cfg.loss_pct > 0.0 || cfg.partition {
        assert!(
            out.msgs_dropped > 0,
            "fault plane dropped nothing: {cfg:?} -> {out:?}"
        );
    }
}
