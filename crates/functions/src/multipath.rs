//! §9.4 future work, implemented: **multipath routing as a Bento function**.
//!
//! "Several works propose adding a multipath routing scheme that splits a
//! stream across multiple circuits ... Rather than modify the Tor code
//! base, we are exploring whether multipath routing designs can be
//! implemented as Bento functions." This function does exactly that: it
//! fetches one resource in `k` byte-ranges over `k` *separate Tor
//! circuits* (all exiting to the same destination), reassembles, and
//! returns the whole — aggregate throughput scales with the number of
//! circuits when per-circuit bandwidth is the bottleneck (see the
//! `multipath` ablation bench).

use bento::function::{FnStreamTarget, Function, FunctionApi};
use bento::manifest::Manifest;
use bento::stem::StemCall;
use simnet::wire::{Reader, Writer};
use simnet::NodeId;
use tor_net::stream_frame::{encode_frame, FrameAssembler};

/// One multipath fetch request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultipathRequest {
    /// Web server.
    pub server: NodeId,
    /// Server port.
    pub port: u16,
    /// Resource path (a single-part page).
    pub path: String,
    /// Total resource length in bytes (ranges are derived from it).
    pub total_len: u64,
    /// Number of circuits / ranges.
    pub k: u8,
}

impl MultipathRequest {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.server.0);
        w.u16(self.port);
        w.str(&self.path);
        w.u64(self.total_len);
        w.u8(self.k);
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Option<MultipathRequest> {
        let mut r = Reader::new(buf);
        let req = MultipathRequest {
            server: NodeId(r.u32().ok()?),
            port: r.u16().ok()?,
            path: r.str("path").ok()?,
            total_len: r.u64().ok()?,
            k: r.u8().ok()?,
        };
        r.finish().ok()?;
        Some(req)
    }

    /// The byte range circuit `i` fetches: an even split with the last
    /// range absorbing the remainder.
    pub fn range(&self, i: u8) -> (u64, u64) {
        let k = self.k.max(1) as u64;
        let chunk = self.total_len / k;
        let start = chunk * i as u64;
        let end = if i as u64 == k - 1 {
            self.total_len
        } else {
            start + chunk
        };
        (start, end)
    }
}

/// Multipath's manifest: circuits and streams, nothing else.
pub fn manifest() -> Manifest {
    let mut m = Manifest::minimal("multipath").with_stem([
        StemCall::NewCircuit,
        StemCall::OpenStream,
        StemCall::SendStream,
    ]);
    m.memory = 32 << 20;
    m
}

struct Lane {
    circ: u64,
    stream: Option<u64>,
    assembler: FrameAssembler,
    data: Option<Vec<u8>>,
    failed: bool,
}

/// The multipath-fetch function.
pub struct Multipath {
    req: Option<MultipathRequest>,
    lanes: Vec<Lane>,
    finished: bool,
    debug: bool,
}

impl Multipath {
    /// Construct. Any nonempty parameter enables debug marker outputs.
    pub fn new(params: &[u8]) -> Multipath {
        Multipath {
            req: None,
            lanes: Vec::new(),
            finished: false,
            debug: !params.is_empty(),
        }
    }

    fn dbg(&self, api: &mut FunctionApi<'_>, msg: String) {
        if self.debug {
            api.output(format!("DBG:{msg}").into_bytes());
        }
    }

    fn maybe_finish(&mut self, api: &mut FunctionApi<'_>) {
        if self.finished || self.lanes.is_empty() {
            return;
        }
        if self.lanes.iter().any(|l| l.data.is_none() && !l.failed) {
            return;
        }
        self.finished = true;
        if self.lanes.iter().any(|l| l.failed) {
            api.output(b"ERR:lane failed".to_vec());
            api.output_end();
            return;
        }
        let mut whole = Vec::new();
        for l in &self.lanes {
            whole.extend_from_slice(l.data.as_ref().expect("checked"));
        }
        api.output(whole);
        api.output_end();
    }

    fn lane_mut(&mut self, circ: u64) -> Option<usize> {
        self.lanes.iter().position(|l| l.circ == circ)
    }
}

impl Function for Multipath {
    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, input: Vec<u8>) {
        if self.req.is_some() {
            api.output(b"ERR:busy".to_vec());
            api.output_end();
            return;
        }
        let Some(req) = MultipathRequest::decode(&input) else {
            api.output(b"ERR:bad request".to_vec());
            api.output_end();
            return;
        };
        if req.k == 0 || req.total_len == 0 {
            api.output(b"ERR:need k >= 1 and a length".to_vec());
            api.output_end();
            return;
        }
        // One circuit per range, all exiting to the same server — the
        // "common exit relay" variant of the multipath literature arises
        // when the exit policy set is small; our circuits may share or
        // differ in exits, both are fine for the aggregate.
        for _ in 0..req.k {
            let circ = api.build_circuit(Some((req.server, req.port)));
            self.lanes.push(Lane {
                circ,
                stream: None,
                assembler: FrameAssembler::new(),
                data: None,
                failed: false,
            });
        }
        self.req = Some(req);
    }

    fn on_circuit_ready(&mut self, api: &mut FunctionApi<'_>, circ: u64) {
        let Some(req) = self.req.clone() else { return };
        if let Some(i) = self.lane_mut(circ) {
            let stream = api.open_stream(circ, FnStreamTarget::Node(req.server, req.port));
            self.lanes[i].stream = Some(stream);
            self.dbg(api, format!("lane {i} circuit ready, stream opening"));
        }
    }

    fn on_circuit_failed(&mut self, api: &mut FunctionApi<'_>, circ: u64) {
        if let Some(i) = self.lane_mut(circ) {
            self.lanes[i].failed = true;
            self.maybe_finish(api);
        }
    }

    fn on_stream_connected(&mut self, api: &mut FunctionApi<'_>, circ: u64, stream: u64) {
        let Some(req) = self.req.clone() else { return };
        if let Some(i) = self.lane_mut(circ) {
            if self.lanes[i].stream == Some(stream) {
                let (start, end) = req.range(i as u8);
                let range_req = format!("{}#{}-{}", req.path, start, end);
                api.stream_send(circ, stream, encode_frame(range_req.as_bytes()));
                self.dbg(api, format!("lane {i} connected, requested {start}-{end}"));
            }
        }
    }

    fn on_stream_data(&mut self, api: &mut FunctionApi<'_>, circ: u64, stream: u64, data: Vec<u8>) {
        let Some(i) = self.lane_mut(circ) else { return };
        if self.lanes[i].stream != Some(stream) || self.lanes[i].data.is_some() {
            return;
        }
        self.lanes[i].assembler.push(&data);
        if let Some(frame) = self.lanes[i].assembler.next_frame() {
            let got = frame.len();
            self.lanes[i].data = Some(frame);
            self.dbg(api, format!("lane {i} complete ({got} bytes)"));
            self.maybe_finish(api);
        }
    }

    fn on_stream_ended(&mut self, api: &mut FunctionApi<'_>, circ: u64, _stream: u64) {
        if let Some(i) = self.lane_mut(circ) {
            if self.lanes[i].data.is_none() {
                self.lanes[i].failed = true;
                self.maybe_finish(api);
            }
        }
    }
}

/// Registry constructor.
pub fn make(params: &[u8]) -> Box<dyn Function> {
    Box::new(Multipath::new(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = MultipathRequest {
            server: NodeId(3),
            port: 80,
            path: "/big/file".into(),
            total_len: 1 << 20,
            k: 4,
        };
        assert_eq!(MultipathRequest::decode(&r.encode()).unwrap(), r);
        assert!(MultipathRequest::decode(b"nah").is_none());
    }

    #[test]
    fn ranges_partition_exactly() {
        let r = MultipathRequest {
            server: NodeId(1),
            port: 80,
            path: "/f".into(),
            total_len: 1003,
            k: 4,
        };
        let mut covered = 0;
        let mut expected_start = 0;
        for i in 0..r.k {
            let (s, e) = r.range(i);
            assert_eq!(s, expected_start, "ranges are contiguous");
            assert!(e > s || r.total_len == 0);
            covered += e - s;
            expected_start = e;
        }
        assert_eq!(covered, 1003, "ranges cover the whole file");
    }

    #[test]
    fn single_lane_degenerates_to_whole_file() {
        let r = MultipathRequest {
            server: NodeId(1),
            port: 80,
            path: "/f".into(),
            total_len: 500,
            k: 1,
        };
        assert_eq!(r.range(0), (0, 500));
    }
}
