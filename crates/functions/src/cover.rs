//! The Cover function (§9.1): fixed-rate cover traffic.
//!
//! "Cover instructs a Bento box to ensure that a given circuit always
//! transmits at a fixed rate, sending junk traffic if it has no legitimate
//! traffic to send." Two modes:
//!
//! * **Downstream** — emit cell-sized junk back to the invoking client at
//!   a fixed rate, masking when (and whether) real content flows on the
//!   client↔box path. This is the composition §9.1 sketches with Browser.
//! * **Circuit drops** — build a circuit of its own and emit long-range
//!   DROP cells into the network at a fixed rate.

use bento::function::{Function, FunctionApi};
use bento::manifest::Manifest;
use bento::stem::StemCall;
use rand::Rng;
use simnet::wire::{Reader, Writer};
use simnet::SimDuration;

static T_COVER_EMISSIONS: telemetry::Counter = telemetry::Counter::new("functions.cover_emissions");

/// Cover mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Junk frames to the invoking client.
    Downstream,
    /// DROP cells on a fresh circuit.
    CircuitDrops,
}

/// One Cover request (the invoke input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverRequest {
    /// Gap between emissions.
    pub interval_ms: u64,
    /// Total emissions before the function finishes the invocation.
    pub count: u32,
    /// Bytes per downstream emission (one cell's worth by default).
    pub chunk: u16,
    /// Mode.
    pub mode: Mode,
}

impl CoverRequest {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.interval_ms);
        w.u32(self.count);
        w.u16(self.chunk);
        w.u8(match self.mode {
            Mode::Downstream => 0,
            Mode::CircuitDrops => 1,
        });
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Option<CoverRequest> {
        let mut r = Reader::new(buf);
        let interval_ms = r.u64().ok()?;
        let count = r.u32().ok()?;
        let chunk = r.u16().ok()?;
        let mode = match r.u8().ok()? {
            0 => Mode::Downstream,
            1 => Mode::CircuitDrops,
            _ => return None,
        };
        Some(CoverRequest {
            interval_ms,
            count,
            chunk,
            mode,
        })
    }
}

/// Cover's manifest: timers always; Stem only for the drop mode.
pub fn manifest(circuit_mode: bool) -> Manifest {
    let m = Manifest::minimal("cover");
    if circuit_mode {
        m.with_stem([StemCall::NewCircuit, StemCall::SendDrop])
    } else {
        m
    }
}

const TICK: u64 = 2;

/// The Cover function.
pub struct Cover {
    req: Option<CoverRequest>,
    remaining: u32,
    circ: Option<u64>,
    /// Emissions made (inspection).
    pub emitted: u64,
}

impl Cover {
    /// Construct (no parameters).
    pub fn new(_params: &[u8]) -> Cover {
        Cover {
            req: None,
            remaining: 0,
            circ: None,
            emitted: 0,
        }
    }

    fn tick(&mut self, api: &mut FunctionApi<'_>) {
        let Some(req) = self.req else { return };
        if self.remaining == 0 {
            api.output_end();
            return;
        }
        self.remaining -= 1;
        self.emitted += 1;
        T_COVER_EMISSIONS.inc();
        match req.mode {
            Mode::Downstream => {
                let mut junk = vec![0u8; req.chunk as usize];
                api.rng().fill(&mut junk[..]);
                api.output(junk);
            }
            Mode::CircuitDrops => {
                if let Some(circ) = self.circ {
                    api.send_drop(circ);
                }
            }
        }
        api.set_timer(SimDuration::from_millis(req.interval_ms), TICK);
    }
}

impl Function for Cover {
    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, input: Vec<u8>) {
        let Some(req) = CoverRequest::decode(&input) else {
            api.output(b"ERR:bad request".to_vec());
            api.output_end();
            return;
        };
        self.remaining = req.count;
        self.req = Some(req);
        match req.mode {
            Mode::Downstream => self.tick(api),
            Mode::CircuitDrops => {
                self.circ = Some(api.build_circuit(None));
            }
        }
    }

    fn on_circuit_ready(&mut self, api: &mut FunctionApi<'_>, circ: u64) {
        if Some(circ) == self.circ {
            self.tick(api);
        }
    }

    fn on_timer(&mut self, api: &mut FunctionApi<'_>, tag: u64) {
        if tag == TICK {
            self.tick(api);
        }
    }
}

/// Registry constructor.
pub fn make(params: &[u8]) -> Box<dyn Function> {
    Box::new(Cover::new(params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bento::function::{ContainerRuntime, FnAction};
    use bento::protocol::ImageKind;
    use sandbox::cgroup::ResourceLimits;
    use sandbox::container::Container;
    use sandbox::netrules::NetRules;
    use sandbox::seccomp::SeccompFilter;

    fn runtime() -> ContainerRuntime {
        ContainerRuntime {
            container: Container::new(
                1,
                ResourceLimits::default_function(),
                SeccompFilter::allow_all(),
                NetRules::deny_all(),
                1024,
                4,
            ),
            fsp: None,
            image: ImageKind::Plain,
        }
    }

    #[test]
    fn request_roundtrip() {
        for mode in [Mode::Downstream, Mode::CircuitDrops] {
            let r = CoverRequest {
                interval_ms: 50,
                count: 100,
                chunk: 498,
                mode,
            };
            assert_eq!(CoverRequest::decode(&r.encode()).unwrap(), r);
        }
        assert!(CoverRequest::decode(b"x").is_none());
    }

    #[test]
    fn downstream_emits_fixed_rate_junk() {
        let mut rt = runtime();
        let mut f = Cover::new(b"");
        let req = CoverRequest {
            interval_ms: 10,
            count: 3,
            chunk: 498,
            mode: Mode::Downstream,
        };
        let mut api = FunctionApi::for_testing(&mut rt, 1);
        f.on_invoke(&mut api, req.encode());
        // First emission immediately + a timer for the next.
        let acts = api.take_actions();
        assert!(matches!(&acts[0], FnAction::Output(d) if d.len() == 498));
        assert!(matches!(acts[1], FnAction::SetTimer { tag: TICK, .. }));
        // Tick through the rest.
        for _ in 0..2 {
            let mut api = FunctionApi::for_testing(&mut rt, 2);
            f.on_timer(&mut api, TICK);
            assert!(matches!(&api.actions()[0], FnAction::Output(d) if d.len() == 498));
        }
        // Final tick ends the output.
        let mut api = FunctionApi::for_testing(&mut rt, 3);
        f.on_timer(&mut api, TICK);
        assert!(matches!(api.actions()[0], FnAction::OutputEnd));
        assert_eq!(f.emitted, 3);
    }

    #[test]
    fn circuit_mode_builds_then_drops() {
        let mut rt = runtime();
        let mut f = Cover::new(b"");
        let req = CoverRequest {
            interval_ms: 5,
            count: 2,
            chunk: 0,
            mode: Mode::CircuitDrops,
        };
        let mut api = FunctionApi::for_testing(&mut rt, 1);
        f.on_invoke(&mut api, req.encode());
        let circ = match api.actions()[0] {
            FnAction::BuildCircuit {
                circ,
                exit_to: None,
            } => circ,
            ref other => panic!("expected BuildCircuit, got {other:?}"),
        };
        let mut api = FunctionApi::for_testing(&mut rt, 2);
        f.on_circuit_ready(&mut api, circ);
        assert!(api
            .actions()
            .iter()
            .any(|a| matches!(a, FnAction::SendDrop { circ: c } if *c == circ)));
    }

    #[test]
    fn bad_request_errors_cleanly() {
        let mut rt = runtime();
        let mut f = Cover::new(b"");
        let mut api = FunctionApi::for_testing(&mut rt, 1);
        f.on_invoke(&mut api, b"garbage".to_vec());
        assert!(matches!(&api.actions()[0], FnAction::Output(d) if d.starts_with(b"ERR")));
    }
}
