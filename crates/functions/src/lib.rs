//! # bento-functions — the paper's middlebox functions
//!
//! Every function the paper presents, implemented against the
//! [`bento::Function`] API:
//!
//! * [`browser::Browser`] (§7) — fetches a whole page at the exit node,
//!   compresses it into a single digest, pads it to a multiple of the
//!   requested size, and ships it back: the website-fingerprinting defense
//!   of Table 1 and Table 2.
//! * [`cover::Cover`] (§9.1) — keeps a fixed-rate stream of cover traffic
//!   flowing so observed volume is independent of real activity.
//! * [`dropbox::Dropbox`] (§9.2) — ephemeral in-network storage with
//!   capability (invocation-token) access, get limits and expiry.
//! * [`shard::Shard`] (§9.3) — spreads a file across multiple Dropboxes
//!   with a systematic Reed–Solomon code (the "digital fountain approach"):
//!   any k of N shards reconstruct.
//! * [`load_balancer`] (§8) — a hidden-service front end that forwards each
//!   INTRODUCE2 to the least-loaded replica and auto-scales the replica set
//!   between watermarks; replicas share the service key material.
//!
//! §9.4's future-work items are implemented too: [`multipath`] (split one
//! fetch across k circuits) and proof-of-work-gated introductions
//! (`tor_net::hs::solve_pow` + `HiddenServiceHost::with_pow`, wired into
//! the replica functions here).
//!
//! Plus the substrate those functions need: a [`web`] page model shared
//! with the fingerprinting harness, a small [`compress`] codec (the
//! paper's zlib step), [`gf256`]/[`erasure`] for Shard, and [`boxlink`],
//! the in-function Bento client used for *function composition* (Figure 2:
//! Browser deploying a Dropbox).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boxlink;
pub mod browser;
pub mod compress;
pub mod cover;
pub mod dropbox;
pub mod erasure;
pub mod gf256;
pub mod load_balancer;
pub mod multipath;
pub mod registry;
pub mod shard;
pub mod web;

pub use registry::standard_registry;
