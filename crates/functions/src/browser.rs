//! The Browser function (§7 and Appendix A).
//!
//! The client never runs a web client at all: Browser, at the exit node,
//! "starts an HTTPS client, autonomously fetches the URL, saves it to a
//! single digest file, and returns the file, padded to some multiple of
//! bytes". Both the URL and the padding are invocation inputs. Optionally
//! (Figure 2) the digest is delivered to a Dropbox on *another* box
//! instead of back to the client.

use crate::boxlink::RemoteBox;
use crate::compress::compress;
use crate::dropbox;
use crate::web::HtmlDoc;
use bento::function::{Function, FunctionApi};
use bento::manifest::Manifest;
use bento::protocol::{BentoMsg, FunctionSpec};
use bento::stem::StemCall;
use rand::Rng;
use sandbox::seccomp::SyscallClass;
use simnet::wire::{Reader, Writer};
use simnet::NodeId;
use tor_net::stream_frame::{encode_frame, FrameAssembler};

/// One Browser request, shipped as the invoke input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrowseRequest {
    /// Web server address.
    pub server: NodeId,
    /// Web server port.
    pub port: u16,
    /// Path of the page's HTML.
    pub path: String,
    /// Pad the response to a multiple of this many bytes (0 = no padding).
    pub padding: u64,
    /// Deliver to a Dropbox on this box instead of back to the client.
    pub dropbox_on: Option<(NodeId, u16)>,
}

impl BrowseRequest {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.server.0);
        w.u16(self.port);
        w.str(&self.path);
        w.u64(self.padding);
        match self.dropbox_on {
            Some((n, p)) => {
                w.u8(1);
                w.u32(n.0);
                w.u16(p);
            }
            None => {
                w.u8(0);
            }
        }
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Option<BrowseRequest> {
        let mut r = Reader::new(buf);
        let server = NodeId(r.u32().ok()?);
        let port = r.u16().ok()?;
        let path = r.str("path").ok()?;
        let padding = r.u64().ok()?;
        let dropbox_on = match r.u8().ok()? {
            0 => None,
            1 => Some((NodeId(r.u32().ok()?), r.u16().ok()?)),
            _ => return None,
        };
        r.finish().ok()?;
        Some(BrowseRequest {
            server,
            port,
            path,
            padding,
            dropbox_on,
        })
    }
}

/// The manifest Browser ships: direct network access for the fetch, Stem
/// circuits only when composing with a Dropbox.
pub fn manifest(compose: bool) -> Manifest {
    let mut m = Manifest::minimal("browser")
        .with_syscalls([SyscallClass::Connect])
        .with_sgx();
    m.memory = 20 << 20; // the paper's measured 16–20 MB envelope
    if compose {
        m = m.with_stem([
            StemCall::NewCircuit,
            StemCall::OpenStream,
            StemCall::SendStream,
        ]);
    }
    m
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    FetchingHtml,
    FetchingAssets,
    Delivering,
}

/// The Browser function.
pub struct Browser {
    phase: Phase,
    req: Option<BrowseRequest>,
    conn: Option<u64>,
    assembler: FrameAssembler,
    html: Option<HtmlDoc>,
    parts: Vec<Vec<u8>>,
    assets_expected: usize,
    // Composition state.
    dropbox: Option<RemoteBox>,
    dropbox_container: Option<u64>,
    dropbox_invocation: Option<[u8; 32]>,
    digest: Vec<u8>,
}

impl Browser {
    /// Construct (no parameters; everything arrives per invocation).
    pub fn new(_params: &[u8]) -> Browser {
        Browser {
            phase: Phase::Idle,
            req: None,
            conn: None,
            assembler: FrameAssembler::new(),
            html: None,
            parts: Vec::new(),
            assets_expected: 0,
            dropbox: None,
            dropbox_container: None,
            dropbox_invocation: None,
            digest: Vec::new(),
        }
    }

    fn finish_page(&mut self, api: &mut FunctionApi<'_>) {
        // Build the single digest file: HTML + assets, compressed.
        let mut raw = Vec::new();
        for p in &self.parts {
            raw.extend_from_slice(p);
        }
        // Model the compression cost (~1 ms / 64 KiB).
        let _ = api.cpu((raw.len() as u64 / 65_536).max(1));
        let compressed = compress(&raw);
        // Persist the digest (FS Protect under the SGX image).
        let _ = api.fs_write("digest", &compressed);
        self.digest = compressed;
        let req = self.req.clone().expect("request in flight");
        match req.dropbox_on {
            None => {
                // Stream the page, then the padding — the client can render
                // as soon as the page bytes arrive (§7.3).
                api.output(self.digest.clone());
                let padding = pad_len(self.digest.len() as u64, req.padding);
                if padding > 0 {
                    let mut junk = vec![0u8; padding as usize];
                    api.rng().fill(&mut junk[..]);
                    api.output(junk);
                }
                api.output_end();
                self.phase = Phase::Idle;
            }
            Some((addr, port)) => {
                // Figure 2: deploy a Dropbox elsewhere and deliver there.
                self.phase = Phase::Delivering;
                let mut link = RemoteBox::connect(api, addr, port);
                link.send(
                    api,
                    &BentoMsg::RequestContainer {
                        image: bento::protocol::ImageKind::Plain,
                        client_hello: None,
                    },
                );
                self.dropbox = Some(link);
            }
        }
    }

    fn handle_dropbox_msgs(&mut self, api: &mut FunctionApi<'_>, msgs: Vec<BentoMsg>) {
        for msg in msgs {
            match msg {
                BentoMsg::ContainerReady {
                    container_id,
                    invocation_token,
                    ..
                } => {
                    self.dropbox_container = Some(container_id);
                    self.dropbox_invocation = Some(invocation_token);
                    let spec = FunctionSpec {
                        params: dropbox::Params {
                            max_gets: 8,
                            expiry_ms: 600_000,
                            max_bytes: 0,
                        }
                        .encode(),
                        manifest: dropbox::manifest(),
                    };
                    let link = self.dropbox.as_mut().expect("link");
                    link.send(
                        api,
                        &BentoMsg::UploadFunction {
                            container_id,
                            payload: spec.encode(),
                            sealed: false,
                        },
                    );
                }
                BentoMsg::UploadOk { .. } => {
                    let token = self.dropbox_invocation.expect("token");
                    let mut input = vec![b'P'];
                    input.extend_from_slice(&self.digest);
                    let link = self.dropbox.as_mut().expect("link");
                    link.send(api, &BentoMsg::Invoke { token, input });
                }
                BentoMsg::Output { data } if data == b"OK" => {
                    // Tell the (possibly now-offline) client where the page
                    // lives: box address + invocation token.
                    let link = self.dropbox.as_ref().expect("link");
                    let mut out = Vec::new();
                    out.extend_from_slice(b"DROPBOX:");
                    out.extend_from_slice(&link.box_addr().0.to_be_bytes());
                    out.extend_from_slice(&self.dropbox_invocation.expect("token"));
                    api.output(out);
                    api.output_end();
                    self.phase = Phase::Idle;
                }
                BentoMsg::Rejected { reason } => {
                    api.output(format!("DROPBOX-FAILED:{reason}").into_bytes());
                    api.output_end();
                    self.phase = Phase::Idle;
                }
                _ => {}
            }
        }
    }
}

/// Bytes of padding needed to reach a multiple of `padding`.
fn pad_len(len: u64, padding: u64) -> u64 {
    if padding == 0 {
        return 0;
    }
    let rem = len % padding;
    if rem == 0 {
        // Appendix A pads even exact multiples by a full block, keeping
        // "multiple of padding" sizes from leaking exact fits.
        padding
    } else {
        padding - rem
    }
}

impl Function for Browser {
    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, input: Vec<u8>) {
        let Some(req) = BrowseRequest::decode(&input) else {
            api.output(b"ERR:bad request".to_vec());
            api.output_end();
            return;
        };
        match api.connect(req.server, req.port) {
            Ok(conn) => {
                self.conn = Some(conn);
                self.req = Some(req);
                self.phase = Phase::FetchingHtml;
                self.assembler = FrameAssembler::new();
                self.parts.clear();
                self.html = None;
            }
            Err(e) => {
                api.output(format!("ERR:connect: {e}").into_bytes());
                api.output_end();
            }
        }
    }

    fn on_net_connected(&mut self, api: &mut FunctionApi<'_>, conn: u64) {
        if Some(conn) != self.conn {
            return;
        }
        let path = self.req.as_ref().expect("request").path.clone();
        api.net_send(conn, encode_frame(path.as_bytes()));
    }

    fn on_net_data(&mut self, api: &mut FunctionApi<'_>, conn: u64, data: Vec<u8>) {
        if Some(conn) != self.conn {
            return;
        }
        self.assembler.push(&data);
        let frames = self.assembler.drain_frames();
        for frame in frames {
            match self.phase {
                Phase::FetchingHtml => {
                    let Some(doc) = HtmlDoc::decode(&frame) else {
                        api.output(b"ERR:bad html".to_vec());
                        api.output_end();
                        self.phase = Phase::Idle;
                        return;
                    };
                    self.parts.push(frame.clone());
                    self.assets_expected = doc.assets.len();
                    // Autonomously fetch every asset (this is what removes
                    // client-side traffic dynamics).
                    for (path, _) in &doc.assets {
                        api.net_send(conn, encode_frame(path.as_bytes()));
                    }
                    self.html = Some(doc);
                    if self.assets_expected == 0 {
                        api.net_close(conn);
                        self.conn = None;
                        self.finish_page(api);
                        return;
                    }
                    self.phase = Phase::FetchingAssets;
                }
                Phase::FetchingAssets => {
                    self.parts.push(frame);
                    if self.parts.len() == self.assets_expected + 1 {
                        api.net_close(conn);
                        self.conn = None;
                        self.finish_page(api);
                        return;
                    }
                }
                _ => {}
            }
        }
    }

    fn on_circuit_ready(&mut self, api: &mut FunctionApi<'_>, circ: u64) {
        if let Some(link) = self.dropbox.as_mut() {
            link.on_circuit_ready(api, circ);
        }
    }

    fn on_stream_connected(&mut self, api: &mut FunctionApi<'_>, circ: u64, stream: u64) {
        if let Some(link) = self.dropbox.as_mut() {
            link.on_stream_connected(api, circ, stream);
        }
    }

    fn on_stream_data(&mut self, api: &mut FunctionApi<'_>, circ: u64, stream: u64, data: Vec<u8>) {
        let msgs = match self.dropbox.as_mut() {
            Some(link) => link.on_stream_data(api, circ, stream, &data),
            None => None,
        };
        if let Some(msgs) = msgs {
            self.handle_dropbox_msgs(api, msgs);
        }
    }
}

/// Registry constructor.
pub fn make(params: &[u8]) -> Box<dyn Function> {
    Box::new(Browser::new(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = BrowseRequest {
            server: NodeId(9),
            port: 80,
            path: "/site001/index".into(),
            padding: 1 << 20,
            dropbox_on: Some((NodeId(4), 5005)),
        };
        assert_eq!(BrowseRequest::decode(&r.encode()).unwrap(), r);
        let r2 = BrowseRequest {
            dropbox_on: None,
            ..r.clone()
        };
        assert_eq!(BrowseRequest::decode(&r2.encode()).unwrap(), r2);
        assert!(BrowseRequest::decode(b"junk").is_none());
    }

    #[test]
    fn pad_len_reaches_multiples() {
        assert_eq!(pad_len(100, 0), 0);
        assert_eq!(pad_len(100, 1000), 900);
        assert_eq!(pad_len(1000, 1000), 1000, "exact fits still pad");
        assert_eq!(pad_len(1001, 1000), 999);
    }

    #[test]
    fn manifest_requests_least_privilege() {
        let plain = manifest(false);
        assert!(plain.syscalls.contains(&SyscallClass::Connect));
        assert!(plain.stem.is_empty());
        let composed = manifest(true);
        assert!(composed.stem.contains(&StemCall::NewCircuit));
    }
}
