//! The hidden-service LoadBalancer (§8) and its replica function.
//!
//! [`LoadBalancer`] establishes the service's introduction points and owns
//! the (single) descriptor — "there is but one set of introduction points,
//! and, naturally, clients never learn the identities of the hidden
//! service nodes." Rather than connect to the rendezvous point itself, it
//! forwards each INTRODUCE2 to a replica (or serves it locally), spinning
//! replicas up when every active one is at the high watermark.
//! [`HsReplica`] runs on other Bento boxes with a *copy of the service's
//! key material* (§8.2), so its RENDEZVOUS1 authenticates as the service.

use crate::boxlink::RemoteBox;
use bento::function::{Function, FunctionApi};
use bento::manifest::Manifest;
use bento::protocol::{BentoMsg, FunctionSpec, ImageKind};
use bento::stem::StemCall;
use simnet::wire::{Reader, Writer};
use simnet::{NodeId, SimDuration, SimTime};
use std::collections::BTreeSet;

static T_FAILOVERS: telemetry::Counter = telemetry::Counter::new("lb.replica_failovers");

/// How often a replica pushes its load report to the balancer.
pub const REPORT_INTERVAL: SimDuration = SimDuration(2_000_000_000); // 2 s
/// A Ready replica silent for this long is declared dead and routed around.
pub const DEAD_AFTER: SimDuration = SimDuration(5_000_000_000); // 5 s
/// How often the balancer sweeps for silent replicas.
const HEALTH_INTERVAL: SimDuration = SimDuration(1_000_000_000); // 1 s

/// Replica-side heartbeat timer tag.
const TAG_REPORT: u64 = 1;
/// Balancer-side health-sweep timer tag.
const TAG_HEALTH: u64 = 2;

/// Parameters shared by the balancer and its replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceParams {
    /// Service key seed (identity; replicas share it).
    pub seed: [u8; 32],
    /// Bytes served per request.
    pub file_len: u64,
}

impl ServiceParams {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(&self.seed);
        w.u64(self.file_len);
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Option<ServiceParams> {
        let mut r = Reader::new(buf);
        Some(ServiceParams {
            seed: r.array("seed").ok()?,
            file_len: r.u64().ok()?,
        })
    }
}

/// LoadBalancer parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LbParams {
    /// Shared service parameters.
    pub service: ServiceParams,
    /// Introduction points to establish.
    pub n_intro: u8,
    /// High watermark: sessions per replica before scaling up.
    pub max_per_replica: u32,
    /// Boxes available for replicas, in spawn order.
    pub replica_boxes: Vec<(NodeId, u16)>,
}

impl LbParams {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(&self.service.encode());
        w.u8(self.n_intro);
        w.u32(self.max_per_replica);
        w.varu64(self.replica_boxes.len() as u64);
        for (n, p) in &self.replica_boxes {
            w.u32(n.0);
            w.u16(*p);
        }
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Option<LbParams> {
        let mut r = Reader::new(buf);
        let seed = r.array("seed").ok()?;
        let file_len = r.u64().ok()?;
        let n_intro = r.u8().ok()?;
        let max_per_replica = r.u32().ok()?;
        let n = r.varu64().ok()?;
        if n > 64 {
            return None;
        }
        let mut replica_boxes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            replica_boxes.push((NodeId(r.u32().ok()?), r.u16().ok()?));
        }
        Some(LbParams {
            service: ServiceParams { seed, file_len },
            n_intro,
            max_per_replica,
            replica_boxes,
        })
    }
}

/// Manifest for the LoadBalancer.
pub fn lb_manifest() -> Manifest {
    let mut m = Manifest::minimal("load-balancer").with_stem([
        StemCall::CreateHiddenService,
        StemCall::NewCircuit,
        StemCall::OpenStream,
        StemCall::SendStream,
    ]);
    m.memory = 24 << 20;
    m
}

/// Manifest for a replica.
pub fn replica_manifest() -> Manifest {
    let mut m = Manifest::minimal("hs-replica").with_stem([
        StemCall::CreateHiddenService,
        StemCall::NewCircuit,
        StemCall::OpenStream,
        StemCall::SendStream,
    ]);
    m.memory = 24 << 20;
    m
}

/// Shared session-serving state: accept incoming streams on rendezvous
/// circuits and answer each request with the file.
struct Serving {
    file_len: u64,
    /// Session circuits currently active.
    sessions: BTreeSet<u64>,
}

impl Serving {
    fn new(file_len: u64) -> Serving {
        Serving {
            file_len,
            sessions: BTreeSet::new(),
        }
    }

    fn active(&self) -> u32 {
        self.sessions.len() as u32
    }

    fn on_client_circuit(&mut self, circ: u64) {
        self.sessions.insert(circ);
    }

    fn on_incoming_stream(&self, api: &mut FunctionApi<'_>, circ: u64, stream: u64) {
        if self.sessions.contains(&circ) {
            api.respond_incoming(circ, stream, true);
        }
    }

    fn on_stream_data(&self, api: &mut FunctionApi<'_>, circ: u64, stream: u64) -> bool {
        if !self.sessions.contains(&circ) {
            return false;
        }
        api.stream_send(circ, stream, vec![0xF1; self.file_len as usize]);
        true
    }

    fn on_circuit_gone(&mut self, circ: u64) -> bool {
        self.sessions.remove(&circ)
    }
}

// ---------------------------------------------------------------------
// Replica.
// ---------------------------------------------------------------------

/// A hidden-service replica: answers forwarded introductions with the
/// shared service identity and serves the file.
pub struct HsReplica {
    params: ServiceParams,
    hs: Option<u64>,
    serving: Serving,
}

impl HsReplica {
    /// Construct from [`ServiceParams`].
    pub fn new(params: &[u8]) -> HsReplica {
        let params = ServiceParams::decode(params).unwrap_or(ServiceParams {
            seed: [0; 32],
            file_len: 1024,
        });
        HsReplica {
            serving: Serving::new(params.file_len),
            params,
            hs: None,
        }
    }

    fn report_load(&self, api: &mut FunctionApi<'_>) {
        let mut out = vec![b'L'];
        out.extend_from_slice(&self.serving.active().to_be_bytes());
        api.output(out);
    }
}

impl Function for HsReplica {
    fn on_install(&mut self, api: &mut FunctionApi<'_>) {
        // 0 intro points: replicas never publish; they only answer
        // forwarded introductions with the shared key.
        self.hs = Some(api.create_hs(self.params.seed, 0, true));
        // Heartbeat: periodic load reports double as liveness signals —
        // the balancer declares a silent replica dead.
        api.set_timer(REPORT_INTERVAL, TAG_REPORT);
    }

    fn on_timer(&mut self, api: &mut FunctionApi<'_>, tag: u64) {
        if tag == TAG_REPORT {
            self.report_load(api);
            api.set_timer(REPORT_INTERVAL, TAG_REPORT);
        }
    }

    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, input: Vec<u8>) {
        // Input: a raw INTRODUCE2 payload forwarded by the balancer.
        if let Some(hs) = self.hs {
            api.hs_handle_intro(hs, input);
        }
        self.report_load(api);
    }

    fn on_hs_client_circuit(&mut self, api: &mut FunctionApi<'_>, _hs: u64, circ: u64) {
        self.serving.on_client_circuit(circ);
        self.report_load(api);
    }

    fn on_incoming_stream(
        &mut self,
        api: &mut FunctionApi<'_>,
        circ: u64,
        stream: u64,
        _port: u16,
    ) {
        self.serving.on_incoming_stream(api, circ, stream);
    }

    fn on_stream_data(
        &mut self,
        api: &mut FunctionApi<'_>,
        circ: u64,
        stream: u64,
        _data: Vec<u8>,
    ) {
        self.serving.on_stream_data(api, circ, stream);
    }

    fn on_stream_ended(&mut self, api: &mut FunctionApi<'_>, circ: u64, _stream: u64) {
        if self.serving.on_circuit_gone(circ) {
            self.report_load(api);
        }
    }

    fn on_circuit_failed(&mut self, api: &mut FunctionApi<'_>, circ: u64) {
        if self.serving.on_circuit_gone(circ) {
            self.report_load(api);
        }
    }
}

// ---------------------------------------------------------------------
// Balancer.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplicaPhase {
    Connecting,
    AwaitContainer,
    AwaitUpload,
    Ready,
    Failed,
}

struct Replica {
    link: RemoteBox,
    phase: ReplicaPhase,
    token: Option<[u8; 32]>,
    assumed_load: u32,
    /// Last load report heard (liveness); `None` until the first one.
    last_report: Option<SimTime>,
}

/// The LoadBalancer function.
pub struct LoadBalancer {
    params: LbParams,
    hs: Option<u64>,
    /// Local serving (the balancer doubles as replica 0).
    serving: Serving,
    /// Introductions routed locally whose sessions have not materialized
    /// yet — counted optimistically, like `assumed_load` for remotes, so a
    /// burst of arrivals does not pile onto the local box while its live
    /// session count lags.
    local_pending: u32,
    replicas: Vec<Replica>,
    next_box: usize,
    /// Introductions routed (inspection/experiments).
    pub routed: u64,
    /// Replicas declared dead after missed load reports
    /// (inspection/experiments).
    pub failovers: u64,
}

impl LoadBalancer {
    /// Construct from [`LbParams`].
    pub fn new(params: &[u8]) -> LoadBalancer {
        let params = LbParams::decode(params).unwrap_or(LbParams {
            service: ServiceParams {
                seed: [0; 32],
                file_len: 1024,
            },
            n_intro: 3,
            max_per_replica: 2,
            replica_boxes: Vec::new(),
        });
        LoadBalancer {
            serving: Serving::new(params.service.file_len),
            params,
            hs: None,
            local_pending: 0,
            replicas: Vec::new(),
            next_box: 0,
            routed: 0,
            failovers: 0,
        }
    }

    /// Begin provisioning a replica on the next available box.
    fn spawn_replica(&mut self, api: &mut FunctionApi<'_>) {
        if self.next_box >= self.params.replica_boxes.len() {
            return;
        }
        let (addr, port) = self.params.replica_boxes[self.next_box];
        self.next_box += 1;
        let mut link = RemoteBox::connect(api, addr, port);
        link.send(
            api,
            &BentoMsg::RequestContainer {
                image: ImageKind::Plain,
                client_hello: None,
            },
        );
        self.replicas.push(Replica {
            link,
            phase: ReplicaPhase::Connecting,
            token: None,
            assumed_load: 0,
            last_report: None,
        });
    }

    /// Route an introduction to the least-loaded ready replica (or serve
    /// locally), scaling up when everyone is at the watermark.
    fn route_introduction(&mut self, api: &mut FunctionApi<'_>, blob: Vec<u8>) {
        self.routed += 1;
        let local_load = self.serving.active() + self.local_pending;
        let best_remote: Option<usize> = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.phase == ReplicaPhase::Ready)
            .min_by_key(|(_, r)| r.assumed_load)
            .map(|(i, _)| i);
        let min_remote_load = best_remote
            .map(|i| self.replicas[i].assumed_load)
            .unwrap_or(u32::MAX);
        // Scale up when everyone (including us) is at the watermark and
        // another box is available.
        let everyone_full = local_load >= self.params.max_per_replica
            && (best_remote.is_none() || min_remote_load >= self.params.max_per_replica);
        if everyone_full && self.next_box < self.params.replica_boxes.len() {
            self.spawn_replica(api);
        }
        // Route: prefer whichever has headroom; local wins ties.
        if local_load <= min_remote_load {
            if let Some(hs) = self.hs {
                self.local_pending += 1;
                api.hs_handle_intro(hs, blob);
            }
        } else if let Some(i) = best_remote {
            let token = self.replicas[i].token.expect("ready replica has token");
            self.replicas[i].assumed_load += 1;
            self.replicas[i]
                .link
                .send(api, &BentoMsg::Invoke { token, input: blob });
        } else if let Some(hs) = self.hs {
            self.local_pending += 1;
            api.hs_handle_intro(hs, blob);
        }
    }

    fn handle_replica_msgs(&mut self, api: &mut FunctionApi<'_>, idx: usize, msgs: Vec<BentoMsg>) {
        for msg in msgs {
            let r = &mut self.replicas[idx];
            match (r.phase, msg) {
                (
                    ReplicaPhase::AwaitContainer,
                    BentoMsg::ContainerReady {
                        container_id,
                        invocation_token,
                        ..
                    },
                ) => {
                    r.token = Some(invocation_token);
                    let spec = FunctionSpec {
                        params: self.params.service.encode(),
                        manifest: replica_manifest(),
                    };
                    r.link.send(
                        api,
                        &BentoMsg::UploadFunction {
                            container_id,
                            payload: spec.encode(),
                            sealed: false,
                        },
                    );
                    r.phase = ReplicaPhase::AwaitUpload;
                }
                (ReplicaPhase::AwaitUpload, BentoMsg::UploadOk { .. }) => {
                    r.phase = ReplicaPhase::Ready;
                    // Start the liveness clock: the replica owes us a load
                    // report every REPORT_INTERVAL from now on.
                    r.last_report = Some(api.now());
                }
                (_, BentoMsg::Rejected { .. }) => {
                    r.phase = ReplicaPhase::Failed;
                }
                (_, BentoMsg::Output { data })
                    // Load report: 'L' + u32 active sessions.
                    if data.len() == 5 && data[0] == b'L' => {
                        r.assumed_load = u32::from_be_bytes([data[1], data[2], data[3], data[4]]);
                        r.last_report = Some(api.now());
                    }
                _ => {}
            }
        }
    }

    /// Active replica count (including the local server), for experiments.
    pub fn active_machines(&self) -> usize {
        1 + self
            .replicas
            .iter()
            .filter(|r| r.phase == ReplicaPhase::Ready)
            .count()
    }
}

impl Function for LoadBalancer {
    fn on_install(&mut self, api: &mut FunctionApi<'_>) {
        // Establish intro points and publish ONE descriptor; introductions
        // are surfaced (auto_rendezvous = false) so we decide who answers.
        self.hs = Some(api.create_hs(self.params.service.seed, self.params.n_intro as u32, false));
        api.set_timer(HEALTH_INTERVAL, TAG_HEALTH);
    }

    fn on_timer(&mut self, api: &mut FunctionApi<'_>, tag: u64) {
        if tag != TAG_HEALTH {
            return;
        }
        // Health sweep: a Ready replica that missed its load-report
        // deadline is dead — clients it would have served get redirected to
        // live replicas (or served locally) by route_introduction.
        let now = api.now();
        for r in self.replicas.iter_mut() {
            if r.phase != ReplicaPhase::Ready {
                continue;
            }
            let silent = r
                .last_report
                .map(|t| now.since(t) >= DEAD_AFTER)
                .unwrap_or(false);
            if silent {
                r.phase = ReplicaPhase::Failed;
                self.failovers += 1;
                T_FAILOVERS.inc();
            }
        }
        api.set_timer(HEALTH_INTERVAL, TAG_HEALTH);
    }

    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, _input: Vec<u8>) {
        // Invocation reports status (the experiments use this).
        let mut out = Vec::new();
        out.extend_from_slice(b"machines:");
        out.extend_from_slice(&(self.active_machines() as u32).to_be_bytes());
        api.output(out);
        api.output_end();
    }

    fn on_hs_introduction(&mut self, api: &mut FunctionApi<'_>, _hs: u64, blob: Vec<u8>) {
        self.route_introduction(api, blob);
    }

    fn on_hs_client_circuit(&mut self, _api: &mut FunctionApi<'_>, _hs: u64, circ: u64) {
        self.local_pending = self.local_pending.saturating_sub(1);
        self.serving.on_client_circuit(circ);
    }

    fn on_incoming_stream(
        &mut self,
        api: &mut FunctionApi<'_>,
        circ: u64,
        stream: u64,
        _port: u16,
    ) {
        self.serving.on_incoming_stream(api, circ, stream);
    }

    fn on_stream_data(&mut self, api: &mut FunctionApi<'_>, circ: u64, stream: u64, data: Vec<u8>) {
        if self.serving.on_stream_data(api, circ, stream) {
            return;
        }
        // Maybe a replica control stream.
        for idx in 0..self.replicas.len() {
            let msgs = self.replicas[idx]
                .link
                .on_stream_data(api, circ, stream, &data);
            if let Some(msgs) = msgs {
                self.handle_replica_msgs(api, idx, msgs);
                return;
            }
        }
    }

    fn on_stream_ended(&mut self, _api: &mut FunctionApi<'_>, circ: u64, _stream: u64) {
        self.serving.on_circuit_gone(circ);
    }

    fn on_circuit_ready(&mut self, api: &mut FunctionApi<'_>, circ: u64) {
        for r in self.replicas.iter_mut() {
            if r.link.owns_circuit(circ) {
                r.link.on_circuit_ready(api, circ);
                return;
            }
        }
    }

    fn on_stream_connected(&mut self, api: &mut FunctionApi<'_>, circ: u64, stream: u64) {
        for r in self.replicas.iter_mut() {
            if r.link.owns_circuit(circ) {
                if r.link.on_stream_connected(api, circ, stream)
                    && r.phase == ReplicaPhase::Connecting
                {
                    r.phase = ReplicaPhase::AwaitContainer;
                }
                return;
            }
        }
    }

    fn on_circuit_failed(&mut self, _api: &mut FunctionApi<'_>, circ: u64) {
        self.serving.on_circuit_gone(circ);
        for r in self.replicas.iter_mut() {
            if r.link.owns_circuit(circ) {
                r.phase = ReplicaPhase::Failed;
            }
        }
    }
}

/// Registry constructor for the balancer.
pub fn make_lb(params: &[u8]) -> Box<dyn Function> {
    Box::new(LoadBalancer::new(params))
}

/// Registry constructor for the replica.
pub fn make_replica(params: &[u8]) -> Box<dyn Function> {
    Box::new(HsReplica::new(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_roundtrip() {
        let p = LbParams {
            service: ServiceParams {
                seed: [9; 32],
                file_len: 10 << 20,
            },
            n_intro: 3,
            max_per_replica: 2,
            replica_boxes: vec![(NodeId(4), 5005), (NodeId(5), 5005)],
        };
        assert_eq!(LbParams::decode(&p.encode()).unwrap(), p);
        assert_eq!(
            ServiceParams::decode(&p.service.encode()).unwrap(),
            p.service
        );
    }

    #[test]
    fn serving_tracks_sessions() {
        let mut s = Serving::new(100);
        assert_eq!(s.active(), 0);
        s.on_client_circuit(7);
        s.on_client_circuit(8);
        assert_eq!(s.active(), 2);
        assert!(s.on_circuit_gone(7));
        assert!(!s.on_circuit_gone(7));
        assert_eq!(s.active(), 1);
    }
}
