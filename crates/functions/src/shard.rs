//! The Shard function (§9.3): spread a file over multiple Dropboxes so any
//! k of N shards reconstruct it.
//!
//! Shard composes with Dropbox exactly as the paper describes: it encodes
//! the file ([`crate::erasure`]), then "deploys these shards by invoking
//! the Dropbox function on other machines". The output is a locator list —
//! (box, invocation token) per shard — the client keeps; reconstruction is
//! client-side ([`crate::erasure::decode`]) from any k fetched shards.

use crate::boxlink::RemoteBox;
use crate::dropbox;
use crate::erasure::{encode as rs_encode, ShardPiece};
use bento::function::{Function, FunctionApi};
use bento::manifest::Manifest;
use bento::protocol::{BentoMsg, FunctionSpec, ImageKind};
use bento::stem::StemCall;
use simnet::wire::{Reader, Writer};
use simnet::NodeId;

/// One Shard request: the invoke input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRequest {
    /// Minimum shards needed to reconstruct.
    pub k: u8,
    /// Target Bento boxes, one shard each (N = targets.len()).
    pub targets: Vec<(NodeId, u16)>,
    /// The file.
    pub file: Vec<u8>,
}

impl ShardRequest {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(self.k);
        w.varu64(self.targets.len() as u64);
        for (n, p) in &self.targets {
            w.u32(n.0);
            w.u16(*p);
        }
        w.bytes(&self.file);
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Option<ShardRequest> {
        let mut r = Reader::new(buf);
        let k = r.u8().ok()?;
        let n = r.varu64().ok()?;
        if n > 255 {
            return None;
        }
        let mut targets = Vec::with_capacity(n as usize);
        for _ in 0..n {
            targets.push((NodeId(r.u32().ok()?), r.u16().ok()?));
        }
        let file = r.bytes_vec("file").ok()?;
        r.finish().ok()?;
        Some(ShardRequest { k, targets, file })
    }
}

/// A locator for one deployed shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLocator {
    /// Shard index (its generator row).
    pub index: u8,
    /// The box storing it.
    pub box_addr: NodeId,
    /// The box's Bento port.
    pub box_port: u16,
    /// The Dropbox invocation token (the fetch capability).
    pub token: [u8; 32],
}

/// Encode/decode the locator list Shard outputs.
pub fn encode_locators(locs: &[ShardLocator]) -> Vec<u8> {
    let mut w = Writer::new();
    w.varu64(locs.len() as u64);
    for l in locs {
        w.u8(l.index);
        w.u32(l.box_addr.0);
        w.u16(l.box_port);
        w.raw(&l.token);
    }
    w.into_bytes()
}

/// Decode a locator list.
pub fn decode_locators(buf: &[u8]) -> Option<Vec<ShardLocator>> {
    let mut r = Reader::new(buf);
    let n = r.varu64().ok()?;
    if n > 255 {
        return None;
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(ShardLocator {
            index: r.u8().ok()?,
            box_addr: NodeId(r.u32().ok()?),
            box_port: r.u16().ok()?,
            token: r.array("token").ok()?,
        });
    }
    r.finish().ok()?;
    Some(out)
}

/// Shard's manifest: circuits and streams for the Dropbox deployments.
pub fn manifest() -> Manifest {
    let mut m = Manifest::minimal("shard").with_stem([
        StemCall::NewCircuit,
        StemCall::OpenStream,
        StemCall::SendStream,
    ]);
    m.memory = 32 << 20;
    m
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeployPhase {
    Connecting,
    AwaitContainer,
    AwaitUpload,
    AwaitPutAck,
    Done,
    Failed,
}

struct Deployment {
    link: RemoteBox,
    piece: ShardPiece,
    phase: DeployPhase,
    invocation: Option<[u8; 32]>,
}

/// The Shard function.
pub struct Shard {
    deployments: Vec<Deployment>,
    started: bool,
    finished: bool,
}

impl Shard {
    /// Construct (no parameters).
    pub fn new(_params: &[u8]) -> Shard {
        Shard {
            deployments: Vec::new(),
            started: false,
            finished: false,
        }
    }

    fn maybe_finish(&mut self, api: &mut FunctionApi<'_>) {
        if self.finished
            || self
                .deployments
                .iter()
                .any(|d| !matches!(d.phase, DeployPhase::Done | DeployPhase::Failed))
        {
            return;
        }
        self.finished = true;
        let locs: Vec<ShardLocator> = self
            .deployments
            .iter()
            .filter(|d| d.phase == DeployPhase::Done)
            .map(|d| ShardLocator {
                index: d.piece.index,
                box_addr: d.link.box_addr(),
                box_port: tor_net::ports::BENTO_PORT,
                token: d.invocation.expect("done deployment has token"),
            })
            .collect();
        api.output(encode_locators(&locs));
        api.output_end();
    }

    fn advance(&mut self, api: &mut FunctionApi<'_>, idx: usize, msgs: Vec<BentoMsg>) {
        for msg in msgs {
            let d = &mut self.deployments[idx];
            match (d.phase, msg) {
                (
                    DeployPhase::AwaitContainer,
                    BentoMsg::ContainerReady {
                        container_id,
                        invocation_token,
                        ..
                    },
                ) => {
                    d.invocation = Some(invocation_token);
                    let spec = FunctionSpec {
                        params: dropbox::Params {
                            max_gets: 16,
                            expiry_ms: 3_600_000,
                            max_bytes: 0,
                        }
                        .encode(),
                        manifest: dropbox::manifest(),
                    };
                    d.link.send(
                        api,
                        &BentoMsg::UploadFunction {
                            container_id,
                            payload: spec.encode(),
                            sealed: false,
                        },
                    );
                    d.phase = DeployPhase::AwaitUpload;
                }
                (DeployPhase::AwaitUpload, BentoMsg::UploadOk { .. }) => {
                    let token = d.invocation.expect("token");
                    let mut input = vec![b'P'];
                    input.extend_from_slice(&d.piece.to_bytes());
                    d.link.send(api, &BentoMsg::Invoke { token, input });
                    d.phase = DeployPhase::AwaitPutAck;
                }
                (DeployPhase::AwaitPutAck, BentoMsg::Output { data }) if data == b"OK" => {
                    d.phase = DeployPhase::Done;
                }
                (_, BentoMsg::Rejected { .. }) => {
                    d.phase = DeployPhase::Failed;
                }
                _ => {}
            }
        }
        self.maybe_finish(api);
    }
}

impl Function for Shard {
    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, input: Vec<u8>) {
        if self.started {
            api.output(b"ERR:already sharding".to_vec());
            api.output_end();
            return;
        }
        let Some(req) = ShardRequest::decode(&input) else {
            api.output(b"ERR:bad request".to_vec());
            api.output_end();
            return;
        };
        let n = req.targets.len();
        if req.k == 0 || n < req.k as usize {
            api.output(b"ERR:need k <= n targets".to_vec());
            api.output_end();
            return;
        }
        self.started = true;
        // Encoding cost: ~1 ms per 32 KiB per parity shard.
        let parity = n as u64 - req.k as u64;
        let _ = api.cpu(((req.file.len() as u64 / 32_768) * parity.max(1)).max(1));
        let pieces = rs_encode(&req.file, req.k, n as u8);
        for (piece, (addr, port)) in pieces.into_iter().zip(req.targets.iter()) {
            let mut link = RemoteBox::connect(api, *addr, *port);
            link.send(
                api,
                &BentoMsg::RequestContainer {
                    image: ImageKind::Plain,
                    client_hello: None,
                },
            );
            self.deployments.push(Deployment {
                link,
                piece,
                phase: DeployPhase::Connecting,
                invocation: None,
            });
        }
    }

    fn on_circuit_ready(&mut self, api: &mut FunctionApi<'_>, circ: u64) {
        for d in self.deployments.iter_mut() {
            if d.link.owns_circuit(circ) {
                d.link.on_circuit_ready(api, circ);
                return;
            }
        }
    }

    fn on_circuit_failed(&mut self, api: &mut FunctionApi<'_>, circ: u64) {
        for d in self.deployments.iter_mut() {
            if d.link.owns_circuit(circ) {
                d.phase = DeployPhase::Failed;
                break;
            }
        }
        self.maybe_finish(api);
    }

    fn on_stream_connected(&mut self, api: &mut FunctionApi<'_>, circ: u64, stream: u64) {
        for d in self.deployments.iter_mut() {
            if d.link.owns_circuit(circ) {
                if d.link.on_stream_connected(api, circ, stream) {
                    d.phase = DeployPhase::AwaitContainer;
                }
                return;
            }
        }
    }

    fn on_stream_data(&mut self, api: &mut FunctionApi<'_>, circ: u64, stream: u64, data: Vec<u8>) {
        for idx in 0..self.deployments.len() {
            let msgs = self.deployments[idx]
                .link
                .on_stream_data(api, circ, stream, &data);
            if let Some(msgs) = msgs {
                self.advance(api, idx, msgs);
                return;
            }
        }
    }
}

/// Registry constructor.
pub fn make(params: &[u8]) -> Box<dyn Function> {
    Box::new(Shard::new(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = ShardRequest {
            k: 2,
            targets: vec![(NodeId(1), 5005), (NodeId(2), 5005), (NodeId(3), 5005)],
            file: vec![7u8; 1000],
        };
        assert_eq!(ShardRequest::decode(&r.encode()).unwrap(), r);
        assert!(ShardRequest::decode(b"no").is_none());
    }

    #[test]
    fn locator_roundtrip() {
        let locs = vec![
            ShardLocator {
                index: 0,
                box_addr: NodeId(4),
                box_port: 5005,
                token: [9; 32],
            },
            ShardLocator {
                index: 2,
                box_addr: NodeId(5),
                box_port: 5005,
                token: [1; 32],
            },
        ];
        assert_eq!(decode_locators(&encode_locators(&locs)).unwrap(), locs);
        assert!(decode_locators(&[0xFF]).is_none());
    }

    #[test]
    fn invalid_requests_refused() {
        let mut rt = bento::function::ContainerRuntime {
            container: sandbox::container::Container::new(
                1,
                sandbox::cgroup::ResourceLimits::default_function(),
                sandbox::seccomp::SeccompFilter::allow_all(),
                sandbox::netrules::NetRules::deny_all(),
                1 << 20,
                4,
            ),
            fsp: None,
            image: ImageKind::Plain,
        };
        let mut f = Shard::new(b"");
        let mut api = FunctionApi::for_testing(&mut rt, 1);
        // k > n
        let bad = ShardRequest {
            k: 5,
            targets: vec![(NodeId(1), 5005)],
            file: vec![1],
        };
        f.on_invoke(&mut api, bad.encode());
        assert!(matches!(
            &api.actions()[0],
            bento::function::FnAction::Output(d) if d.starts_with(b"ERR")
        ));
    }
}
