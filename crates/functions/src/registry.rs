//! The standard function registry a Bento box offers.

use bento::function::FunctionRegistry;

static T_REGISTRY_BUILDS: telemetry::Counter = telemetry::Counter::new("functions.registry_builds");

/// All of the paper's functions, registered under their canonical names.
pub fn standard_registry() -> FunctionRegistry {
    T_REGISTRY_BUILDS.inc();
    let mut r = FunctionRegistry::new();
    r.register("browser", crate::browser::make);
    r.register("cover", crate::cover::make);
    r.register("dropbox", crate::dropbox::make);
    r.register("shard", crate::shard::make);
    r.register("load-balancer", crate::load_balancer::make_lb);
    r.register("multipath", crate::multipath::make);
    r.register("hs-replica", crate::load_balancer::make_replica);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_functions_registered() {
        let r = standard_registry();
        assert_eq!(
            r.names(),
            vec![
                "browser",
                "cover",
                "dropbox",
                "hs-replica",
                "load-balancer",
                "multipath",
                "shard"
            ]
        );
        for name in r.names() {
            assert!(r.instantiate(name, b"").is_some(), "{name} constructs");
        }
    }
}
