//! The web page model shared by the Browser function, the baseline Tor
//! browsing client, and the fingerprinting corpus.
//!
//! A site is an HTML document plus assets. The HTML (one frame) lists the
//! asset paths and sizes; a web client fetches the HTML, parses it, and
//! fetches every asset. Asset *content* is generated deterministically
//! from the site seed with tunable redundancy, so compression behaves like
//! it does on real pages.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::wire::{Reader, Writer};

/// A parsed HTML document: the asset list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtmlDoc {
    /// Site identifier.
    pub site: String,
    /// (path, size) of each referenced asset.
    pub assets: Vec<(String, u32)>,
    /// Inline body padding (the HTML's own text content).
    pub inline_len: u32,
}

impl HtmlDoc {
    /// Encode into the on-the-wire HTML frame (a header plus filler text).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.site);
        w.varu64(self.assets.len() as u64);
        for (p, s) in &self.assets {
            w.str(p);
            w.u32(*s);
        }
        w.u32(self.inline_len);
        let mut out = w.into_bytes();
        // Filler standing in for markup: repetitive, hence compressible.
        let filler = b"<div class=\"row\"><a href=\"#\">item</a></div>\n";
        while out.len() < self.inline_len as usize {
            let take = filler.len().min(self.inline_len as usize - out.len());
            out.extend_from_slice(&filler[..take]);
        }
        out
    }

    /// Parse an HTML frame.
    pub fn decode(buf: &[u8]) -> Option<HtmlDoc> {
        let mut r = Reader::new(buf);
        let site = r.str("site").ok()?;
        let n = r.varu64().ok()?;
        if n > 256 {
            return None;
        }
        let mut assets = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let p = r.str("asset path").ok()?;
            let s = r.u32().ok()?;
            assets.push((p, s));
        }
        let inline_len = r.u32().ok()?;
        Some(HtmlDoc {
            site,
            assets,
            inline_len,
        })
    }
}

/// A synthetic website: deterministic structure and content from a seed.
#[derive(Debug, Clone)]
pub struct SiteModel {
    /// Site name ("site042").
    pub name: String,
    /// The HTML document.
    pub html: HtmlDoc,
    seed: u64,
}

impl SiteModel {
    /// A hand-specified site (the Table 2 domains): explicit asset sizes.
    pub fn custom(name: &str, asset_sizes: &[u32], inline_len: u32, seed: u64) -> SiteModel {
        let assets = asset_sizes
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("/{name}/a{i}"), *s))
            .collect();
        SiteModel {
            html: HtmlDoc {
                site: name.to_string(),
                assets,
                inline_len,
            },
            name: name.to_string(),
            seed,
        }
    }

    /// Generate site `index` of a corpus. Sites differ in asset count,
    /// sizes and ordering — the structure a fingerprinting attack feeds on.
    pub fn generate(index: u32, seed: u64) -> SiteModel {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x517E_0000 + index as u64));
        let name = format!("site{index:03}");
        // Page weight: log-uniform between ~60 KB and ~4 MB, site-specific.
        let total_weight = (60_000.0 * (1.0 + rng.gen::<f64>() * 64.0)) as u32;
        let n_assets = rng.gen_range(3..=24usize);
        let mut assets = Vec::with_capacity(n_assets);
        let mut remaining = total_weight;
        for i in 0..n_assets {
            let share = if i == n_assets - 1 {
                remaining
            } else {
                let s = (remaining as f64 * rng.gen_range(0.05..0.5)) as u32;
                remaining -= s;
                s
            };
            assets.push((format!("/{name}/a{i}"), share.max(100)));
        }
        let inline_len = rng.gen_range(2_000..30_000u32);
        SiteModel {
            html: HtmlDoc {
                site: name.clone(),
                assets,
                inline_len,
            },
            name,
            seed,
        }
    }

    /// Total page weight (HTML + assets) in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.html.inline_len as u64 + self.html.assets.iter().map(|(_, s)| *s as u64).sum::<u64>()
    }

    /// The HTML path of this site.
    pub fn html_path(&self) -> String {
        format!("/{}/index", self.name)
    }

    /// Deterministic asset content: a mix of repeated motifs (compressible)
    /// and noise, site- and asset-specific.
    pub fn asset_content(&self, asset_index: usize, size: u32) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ ((asset_index as u64) << 32) ^ 0xA55E7);
        let mut out = Vec::with_capacity(size as usize);
        let motif: Vec<u8> = (0..rng.gen_range(8..64)).map(|_| rng.gen()).collect();
        while out.len() < size as usize {
            if rng.gen_bool(0.6) {
                let take = motif.len().min(size as usize - out.len());
                out.extend_from_slice(&motif[..take]);
            } else {
                let n = rng.gen_range(1..128).min(size as usize - out.len());
                out.extend((0..n).map(|_| rng.gen::<u8>()));
            }
        }
        out
    }

    /// The (path, content) pairs to install on a web server for this site.
    pub fn server_pages(&self) -> Vec<(String, Vec<Vec<u8>>)> {
        let mut pages = vec![(self.html_path(), vec![self.html.encode()])];
        for (i, (path, size)) in self.html.assets.iter().enumerate() {
            pages.push((path.clone(), vec![self.asset_content(i, *size)]));
        }
        pages
    }

    /// The HTML path of visit-variant `v` of this site.
    pub fn html_path_variant(&self, v: u32) -> String {
        format!("/{}/index@{v}", self.name)
    }

    /// The site as it looks on visit `v`: real pages change between visits
    /// (ads, dynamic content), so each variant jitters every asset size by
    /// up to ±`jitter_pct`% (deterministically from the site seed and `v`).
    /// Variant 0 is the canonical page.
    pub fn variant(&self, v: u32, jitter_pct: u32) -> HtmlDoc {
        if v == 0 || jitter_pct == 0 {
            let mut doc = self.html.clone();
            doc.site = format!("{}@{v}", self.name);
            return doc;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ ((v as u64) << 40) ^ 0x7A21);
        let assets = self
            .html
            .assets
            .iter()
            .enumerate()
            .map(|(i, (_, size))| {
                let span = (*size as u64 * jitter_pct as u64 / 100).max(1) as i64;
                let delta = rng.gen_range(-span..=span);
                let jittered = (*size as i64 + delta).max(100) as u32;
                (format!("/{}/a{i}@{v}", self.name), jittered)
            })
            .collect();
        let inline_span = (self.html.inline_len / 20).max(1);
        let inline_len = self.html.inline_len + rng.gen_range(0..=inline_span);
        HtmlDoc {
            site: format!("{}@{v}", self.name),
            assets,
            inline_len,
        }
    }

    /// Server pages for visits `0..n_visits`, with per-visit size jitter.
    pub fn server_pages_variants(
        &self,
        n_visits: u32,
        jitter_pct: u32,
    ) -> Vec<(String, Vec<Vec<u8>>)> {
        let mut pages = Vec::new();
        for v in 0..n_visits {
            let doc = self.variant(v, jitter_pct);
            pages.push((self.html_path_variant(v), vec![doc.encode()]));
            for (i, (path, size)) in doc.assets.iter().enumerate() {
                pages.push((path.clone(), vec![self.asset_content(i, *size)]));
            }
        }
        pages
    }
}

/// Generate a closed-world corpus of `n` sites.
pub fn corpus(n: u32, seed: u64) -> Vec<SiteModel> {
    (0..n).map(|i| SiteModel::generate(i, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn html_roundtrip() {
        let site = SiteModel::generate(7, 99);
        let enc = site.html.encode();
        let back = HtmlDoc::decode(&enc).unwrap();
        assert_eq!(back, site.html);
        assert!(enc.len() >= site.html.inline_len as usize);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SiteModel::generate(3, 42);
        let b = SiteModel::generate(3, 42);
        assert_eq!(a.html, b.html);
        assert_eq!(a.asset_content(0, 1000), b.asset_content(0, 1000));
    }

    #[test]
    fn sites_differ() {
        let a = SiteModel::generate(1, 42);
        let b = SiteModel::generate(2, 42);
        assert_ne!(a.html.assets, b.html.assets);
    }

    #[test]
    fn corpus_has_diverse_weights() {
        let sites = corpus(50, 7);
        let weights: Vec<u64> = sites.iter().map(|s| s.total_bytes()).collect();
        let min = weights.iter().min().unwrap();
        let max = weights.iter().max().unwrap();
        assert!(max / min.max(&1) >= 4, "min {min}, max {max}");
        // All within the intended envelope.
        assert!(*min >= 50_000);
        assert!(*max <= 8_000_000);
    }

    #[test]
    fn server_pages_cover_all_assets() {
        let site = SiteModel::generate(5, 11);
        let pages = site.server_pages();
        assert_eq!(pages.len(), site.html.assets.len() + 1);
        for (i, (path, size)) in site.html.assets.iter().enumerate() {
            let page = pages.iter().find(|(p, _)| p == path).unwrap();
            assert_eq!(page.1[0].len(), *size as usize);
            assert_eq!(page.1[0], site.asset_content(i, *size));
        }
    }

    #[test]
    fn asset_content_is_compressible_but_not_trivial() {
        let site = SiteModel::generate(9, 13);
        let content = site.asset_content(0, 100_000);
        let compressed = crate::compress::compress(&content);
        assert!(compressed.len() < content.len());
        assert!(compressed.len() > content.len() / 50);
    }

    #[test]
    fn variants_jitter_sizes_but_keep_structure() {
        let site = SiteModel::generate(4, 21);
        let v0 = site.variant(0, 3);
        assert_eq!(v0.assets, site.html.assets, "variant 0 is canonical");
        let v1 = site.variant(1, 3);
        let v2 = site.variant(2, 3);
        assert_eq!(v1.assets.len(), site.html.assets.len());
        assert_ne!(v1.assets, v2.assets, "different visits differ");
        // Jitter stays within the bound.
        for ((_, base), (_, j)) in site.html.assets.iter().zip(&v1.assets) {
            let span = (*base as i64 * 3 / 100).max(1);
            assert!((*j as i64 - *base as i64).abs() <= span, "{base} -> {j}");
        }
        // Determinism.
        assert_eq!(site.variant(1, 3), v1);
        // Server pages cover every variant's assets.
        let pages = site.server_pages_variants(3, 3);
        for v in 0..3 {
            let doc_path = site.html_path_variant(v);
            let html = &pages.iter().find(|(p, _)| *p == doc_path).unwrap().1[0];
            let doc = HtmlDoc::decode(html).unwrap();
            for (path, size) in &doc.assets {
                let page = pages.iter().find(|(p, _)| p == path).unwrap();
                assert_eq!(page.1[0].len(), *size as usize, "variant {v} asset {path}");
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(HtmlDoc::decode(&[]).is_none());
        assert!(HtmlDoc::decode(&[0xFF; 4]).is_none());
    }
}
