//! A small LZ-style compressor — the Browser function's `zlib.compress`
//! step (Appendix A of the paper).
//!
//! Format: a stream of ops. `0x00 len` + literals copies `len` raw bytes;
//! `0x01 len dist(varint)` copies `len` bytes from `dist` back in the
//! output. Greedy matching with a 4-byte rolling hash chain over a 32 KiB
//! window. Not zlib — but a real dictionary coder with the same role:
//! page content with repetition shrinks, random padding does not.

/// Compress `data`.
///
/// ```
/// use bento_functions::compress::{compress, decompress};
/// let page = b"<div>repetition</div><div>repetition</div>".repeat(100);
/// let packed = compress(&page);
/// assert!(packed.len() < page.len() / 3);
/// assert_eq!(decompress(&packed).unwrap(), page);
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    const MIN_MATCH: usize = 4;
    const MAX_MATCH: usize = 255;
    const WINDOW: usize = 32 * 1024;
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // Header: original length (for sanity checks on decompress).
    write_varint(&mut out, data.len() as u64);
    let mut head: Vec<i64> = vec![-1; 1 << 16];
    let hash = |d: &[u8]| -> usize {
        ((u32::from_le_bytes([d[0], d[1], d[2], d[3]]).wrapping_mul(2654435761)) >> 16) as usize
    };
    let mut lit_start = 0usize;
    let mut i = 0usize;
    let flush_literals = |out: &mut Vec<u8>, lits: &[u8]| {
        let mut rest = lits;
        while !rest.is_empty() {
            let take = rest.len().min(255);
            out.push(0x00);
            out.push(take as u8);
            out.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
        }
    };
    while i + MIN_MATCH <= data.len() {
        let h = hash(&data[i..]);
        let cand = head[h];
        head[h] = i as i64;
        let mut found: Option<(usize, usize)> = None; // (match_len, cand_pos)
        if cand >= 0 {
            let cand = cand as usize;
            if i - cand <= WINDOW && data[cand..cand + MIN_MATCH] == data[i..i + MIN_MATCH] {
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = MIN_MATCH;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                found = Some((l, cand));
            }
        }
        if let Some((match_len, cand_pos)) = found {
            flush_literals(&mut out, &data[lit_start..i]);
            out.push(0x01);
            out.push(match_len as u8);
            write_varint(&mut out, (i - cand_pos) as u64);
            i += match_len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, &data[lit_start..]);
    out
}

/// Decompress a [`compress`] stream. `None` on malformed input.
pub fn decompress(mut data: &[u8]) -> Option<Vec<u8>> {
    let expected = read_varint(&mut data)? as usize;
    if expected > 1 << 30 {
        return None;
    }
    let mut out = Vec::with_capacity(expected);
    while !data.is_empty() {
        let op = data[0];
        data = &data[1..];
        match op {
            0x00 => {
                let len = *data.first()? as usize;
                data = &data[1..];
                if data.len() < len {
                    return None;
                }
                out.extend_from_slice(&data[..len]);
                data = &data[len..];
            }
            0x01 => {
                let len = *data.first()? as usize;
                data = &data[1..];
                let dist = read_varint(&mut data)? as usize;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return None,
        }
    }
    if out.len() != expected {
        return None;
    }
    Some(out)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(data: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = *data.first()?;
        *data = &data[1..];
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_empty_and_small() {
        for input in [b"".as_slice(), b"a", b"abcabcabcabc", b"no repeats!?"] {
            let c = compress(input);
            assert_eq!(decompress(&c).unwrap(), input);
        }
    }

    #[test]
    fn repetitive_content_shrinks() {
        let html: Vec<u8> = b"<div class=\"item\"><span>entry</span></div>\n"
            .iter()
            .copied()
            .cycle()
            .take(50_000)
            .collect();
        let c = compress(&html);
        assert!(decompress(&c).unwrap() == html);
        assert!(
            c.len() < html.len() / 3,
            "repetitive page should compress well: {} -> {}",
            html.len(),
            c.len()
        );
    }

    #[test]
    fn random_content_does_not_explode() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let data: Vec<u8> = (0..100_000).map(|_| rng.gen()).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len() + data.len() / 100 + 64);
    }

    #[test]
    fn mixed_content_roundtrips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut data = Vec::new();
        for _ in 0..50 {
            if rng.gen_bool(0.5) {
                data.extend(std::iter::repeat(rng.gen::<u8>()).take(rng.gen_range(1..500)));
            } else {
                data.extend((0..rng.gen_range(1..500)).map(|_| rng.gen::<u8>()));
            }
        }
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(&[]).is_none());
        assert!(decompress(&[0x05, 0x02]).is_none()); // bad op
        assert!(decompress(&[0x04, 0x01, 0x02, 0x01, 0x05]).is_none()); // dist > output
                                                                        // Truncated literal run.
        assert!(decompress(&[0x10, 0x00, 0xFF, 0x01]).is_none());
        // Length mismatch.
        let mut c = compress(b"hello world");
        c[0] = c[0].wrapping_add(1); // corrupt expected length
        assert!(decompress(&c).is_none());
    }
}
