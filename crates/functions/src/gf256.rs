//! GF(2^8) arithmetic (AES polynomial 0x11B) — the field under Shard's
//! erasure code.

/// Multiply two field elements.
pub fn mul(a: u8, b: u8) -> u8 {
    let mut a = a as u16;
    let mut b = b as u16;
    let mut p = 0u16;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= 0x11B;
        }
        b >>= 1;
    }
    p as u8
}

/// Add (== subtract) in GF(2^8).
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// `a^n`.
pub fn pow(mut a: u8, mut n: u32) -> u8 {
    let mut r = 1u8;
    while n > 0 {
        if n & 1 == 1 {
            r = mul(r, a);
        }
        a = mul(a, a);
        n >>= 1;
    }
    r
}

/// Multiplicative inverse; panics on 0.
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "division by zero in GF(256)");
    // a^(2^8 - 2) = a^254.
    pow(a, 254)
}

/// `a / b`.
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Multiply-accumulate a slice: `dst ^= coeff * src`, elementwise.
pub fn mul_acc(dst: &mut [u8], coeff: u8, src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    if coeff == 0 {
        return;
    }
    if coeff == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= mul(coeff, *s);
    }
}

/// Invert a square matrix over GF(256) by Gauss–Jordan. `None` if singular.
pub fn invert_matrix(m: &[Vec<u8>]) -> Option<Vec<Vec<u8>>> {
    let n = m.len();
    let mut a: Vec<Vec<u8>> = m.to_vec();
    let mut b: Vec<Vec<u8>> = (0..n)
        .map(|i| (0..n).map(|j| (i == j) as u8).collect())
        .collect();
    for col in 0..n {
        // Find a pivot.
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        b.swap(col, pivot);
        let p = inv(a[col][col]);
        for j in 0..n {
            a[col][j] = mul(a[col][j], p);
            b[col][j] = mul(b[col][j], p);
        }
        for r in 0..n {
            if r != col && a[r][col] != 0 {
                let f = a[r][col];
                for j in 0..n {
                    a[r][j] ^= mul(f, a[col][j]);
                    b[r][j] ^= mul(f, b[col][j]);
                }
            }
        }
    }
    Some(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_hold() {
        // Spot-check associativity/commutativity/distributivity over a
        // sample of triples.
        for a in (1u8..=255).step_by(17) {
            for b in (1u8..=255).step_by(23) {
                for c in (1u8..=255).step_by(31) {
                    assert_eq!(mul(a, b), mul(b, a));
                    assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn known_products() {
        // Classic AES-field vectors.
        assert_eq!(mul(0x53, 0xCA), 0x01);
        assert_eq!(mul(0x02, 0x87), 0x15);
        assert_eq!(mul(0xFF, 0x00), 0x00);
        assert_eq!(mul(0x01, 0xAB), 0xAB);
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1u8..=255 {
            assert_eq!(mul(a, inv(a)), 1, "inverse of {a}");
        }
    }

    #[test]
    fn div_is_mul_by_inverse() {
        assert_eq!(div(mul(7, 9), 9), 7);
        assert_eq!(div(0, 5), 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index math mirrors the A*A^-1 formula
    fn matrix_inversion_roundtrip() {
        // A Vandermonde matrix is invertible; A * A^-1 = I.
        let n = 5;
        let m: Vec<Vec<u8>> = (0..n)
            .map(|i| (0..n).map(|j| pow((i + 1) as u8, j as u32)).collect())
            .collect();
        let mi = invert_matrix(&m).expect("invertible");
        for i in 0..n {
            for j in 0..n {
                let mut s = 0u8;
                for k in 0..n {
                    s ^= mul(m[i][k], mi[k][j]);
                }
                assert_eq!(s, (i == j) as u8, "({i},{j})");
            }
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let m = vec![vec![1, 2], vec![1, 2]];
        assert!(invert_matrix(&m).is_none());
    }

    #[test]
    fn mul_acc_matches_scalar_loop() {
        let src = [1u8, 2, 3, 200, 255];
        let mut dst = [9u8, 8, 7, 6, 5];
        let mut expect = dst;
        for (d, s) in expect.iter_mut().zip(src.iter()) {
            *d ^= mul(0x1D, *s);
        }
        mul_acc(&mut dst, 0x1D, &src);
        assert_eq!(dst, expect);
    }
}
