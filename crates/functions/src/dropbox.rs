//! The Dropbox function (§9.2): ephemeral in-network storage.
//!
//! "The first phase accepts a put request, along with the invocation
//! token, which serves as a capability permitting access to that dropbox.
//! ... The second phase permits get requests with the same invocation
//! token, up to either some maximum amount of bandwidth, number of
//! requests, or expiry time, after which the function deletes the file and
//! terminates." The invocation-token capability is enforced by the Bento
//! server; this function enforces the get limit and expiry.

use bento::function::{Function, FunctionApi};
use bento::manifest::Manifest;
use bento::protocol::ImageKind;
use simnet::wire::{Reader, Writer};
use simnet::SimDuration;

/// Dropbox parameters (fixed at upload). §9.2 allows limiting by "some
/// maximum amount of bandwidth, number of requests, or expiry time" — all
/// three are here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of gets before self-destruction.
    pub max_gets: u32,
    /// Lifetime in milliseconds (0 = no expiry).
    pub expiry_ms: u64,
    /// Total bytes that may be served before self-destruction
    /// (0 = unlimited).
    pub max_bytes: u64,
}

impl Params {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.max_gets);
        w.u64(self.expiry_ms);
        w.u64(self.max_bytes);
        w.into_bytes()
    }

    /// Decode (defaults on malformed/short input, for compatibility with
    /// two-field encodings).
    pub fn decode(buf: &[u8]) -> Params {
        let mut r = Reader::new(buf);
        let max_gets = r.u32().unwrap_or(4);
        let expiry_ms = r.u64().unwrap_or(600_000);
        let max_bytes = r.u64().unwrap_or(0);
        Params {
            max_gets,
            expiry_ms,
            max_bytes,
        }
    }
}

/// The manifest a Dropbox ships: storage plus nothing else.
pub fn manifest() -> Manifest {
    let mut m = Manifest::minimal("dropbox").with_disk(16 << 20);
    m.image = ImageKind::Plain;
    m
}

/// The manifest for a conclave-backed Dropbox (encrypted at rest; the
/// operator sees only FS Protect ciphertext).
pub fn manifest_sgx() -> Manifest {
    manifest().with_sgx()
}

const EXPIRY_TAG: u64 = 1;

/// The Dropbox function.
pub struct Dropbox {
    params: Params,
    gets_remaining: u32,
    bytes_served: u64,
    has_data: bool,
}

impl Dropbox {
    /// Construct from encoded [`Params`].
    pub fn new(params: &[u8]) -> Dropbox {
        let params = Params::decode(params);
        Dropbox {
            params,
            gets_remaining: params.max_gets,
            bytes_served: 0,
            has_data: false,
        }
    }

    fn self_destruct(&mut self, api: &mut FunctionApi<'_>) {
        let _ = api.fs_unlink("drop/data");
        self.has_data = false;
        api.terminate();
    }
}

impl Function for Dropbox {
    fn on_install(&mut self, api: &mut FunctionApi<'_>) {
        if self.params.expiry_ms > 0 {
            api.set_timer(SimDuration::from_millis(self.params.expiry_ms), EXPIRY_TAG);
        }
    }

    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, input: Vec<u8>) {
        match input.first() {
            Some(b'P') => {
                match api.fs_write("drop/data", &input[1..]) {
                    Ok(()) => {
                        self.has_data = true;
                        api.output(b"OK".to_vec());
                    }
                    Err(e) => api.output(format!("ERR:{e}").into_bytes()),
                }
                api.output_end();
            }
            Some(b'G') => {
                if !self.has_data {
                    api.output(b"ERR:empty".to_vec());
                    api.output_end();
                    return;
                }
                match api.fs_read("drop/data") {
                    Ok(data) => {
                        self.bytes_served += data.len() as u64;
                        api.output(data);
                        api.output_end();
                        self.gets_remaining = self.gets_remaining.saturating_sub(1);
                        let bandwidth_spent =
                            self.params.max_bytes > 0 && self.bytes_served >= self.params.max_bytes;
                        if self.gets_remaining == 0 || bandwidth_spent {
                            self.self_destruct(api);
                        }
                    }
                    Err(e) => {
                        api.output(format!("ERR:{e}").into_bytes());
                        api.output_end();
                    }
                }
            }
            _ => {
                api.output(b"ERR:bad command".to_vec());
                api.output_end();
            }
        }
    }

    fn on_timer(&mut self, api: &mut FunctionApi<'_>, tag: u64) {
        if tag == EXPIRY_TAG {
            self.self_destruct(api);
        }
    }
}

/// Registry constructor.
pub fn make(params: &[u8]) -> Box<dyn Function> {
    Box::new(Dropbox::new(params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bento::function::{ContainerRuntime, FnAction};
    use sandbox::cgroup::ResourceLimits;
    use sandbox::container::Container;
    use sandbox::netrules::NetRules;

    fn runtime() -> ContainerRuntime {
        ContainerRuntime {
            container: Container::new(
                1,
                ResourceLimits::default_function(),
                manifest().to_seccomp(),
                NetRules::deny_all(),
                16 << 20,
                16,
            ),
            fsp: None,
            image: ImageKind::Plain,
        }
    }

    fn outputs(actions: &[FnAction]) -> Vec<Vec<u8>> {
        actions
            .iter()
            .filter_map(|a| match a {
                FnAction::Output(d) => Some(d.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn put_then_get_roundtrip() {
        let mut rt = runtime();
        let mut f = Dropbox::new(
            &Params {
                max_gets: 2,
                expiry_ms: 0,
                max_bytes: 0,
            }
            .encode(),
        );
        let mut api = FunctionApi::for_testing(&mut rt, 1);
        f.on_invoke(&mut api, b"Pdata bytes".to_vec());
        assert_eq!(outputs(api.actions()), vec![b"OK".to_vec()]);
        let mut api = FunctionApi::for_testing(&mut rt, 2);
        f.on_invoke(&mut api, b"G".to_vec());
        assert_eq!(outputs(api.actions()), vec![b"data bytes".to_vec()]);
    }

    #[test]
    fn get_limit_triggers_self_destruct() {
        let mut rt = runtime();
        let mut f = Dropbox::new(
            &Params {
                max_gets: 1,
                expiry_ms: 0,
                max_bytes: 0,
            }
            .encode(),
        );
        let mut api = FunctionApi::for_testing(&mut rt, 1);
        f.on_invoke(&mut api, b"PX".to_vec());
        let mut api = FunctionApi::for_testing(&mut rt, 2);
        f.on_invoke(&mut api, b"G".to_vec());
        assert!(
            api.actions()
                .iter()
                .any(|a| matches!(a, FnAction::Terminate)),
            "after the last get, the dropbox terminates"
        );
        assert!(!api.fs_exists("drop/data"), "data deleted");
    }

    #[test]
    fn expiry_timer_set_and_destructs() {
        let mut rt = runtime();
        let mut f = Dropbox::new(
            &Params {
                max_gets: 4,
                expiry_ms: 1234,
                max_bytes: 0,
            }
            .encode(),
        );
        let mut api = FunctionApi::for_testing(&mut rt, 1);
        f.on_install(&mut api);
        assert!(api
            .actions()
            .iter()
            .any(|a| matches!(a, FnAction::SetTimer { delay, tag: 1 }
                if delay.as_millis() == 1234)));
        let mut api = FunctionApi::for_testing(&mut rt, 2);
        f.on_invoke(&mut api, b"Psecret".to_vec());
        let mut api = FunctionApi::for_testing(&mut rt, 3);
        f.on_timer(&mut api, EXPIRY_TAG);
        assert!(api
            .actions()
            .iter()
            .any(|a| matches!(a, FnAction::Terminate)));
        assert!(!api.fs_exists("drop/data"));
    }

    #[test]
    fn get_before_put_and_bad_commands_error() {
        let mut rt = runtime();
        let mut f = Dropbox::new(
            &Params {
                max_gets: 1,
                expiry_ms: 0,
                max_bytes: 0,
            }
            .encode(),
        );
        let mut api = FunctionApi::for_testing(&mut rt, 1);
        f.on_invoke(&mut api, b"G".to_vec());
        assert_eq!(outputs(api.actions()), vec![b"ERR:empty".to_vec()]);
        let mut api = FunctionApi::for_testing(&mut rt, 2);
        f.on_invoke(&mut api, b"Zwhat".to_vec());
        assert_eq!(outputs(api.actions()), vec![b"ERR:bad command".to_vec()]);
    }

    #[test]
    fn params_roundtrip_and_defaults() {
        let p = Params {
            max_gets: 7,
            expiry_ms: 9999,
            max_bytes: 0,
        };
        assert_eq!(Params::decode(&p.encode()), p);
        let d = Params::decode(b"");
        assert_eq!(d.max_gets, 4);
    }
}
