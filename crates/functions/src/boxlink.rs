//! Function composition: a Bento client *inside a function*.
//!
//! Figure 2 of the paper composes functions — Browser deploys a Dropbox on
//! a different box and delivers the page there. [`RemoteBox`] is the state
//! machine that makes that possible: it speaks the Bento protocol over a
//! Stem-mediated Tor circuit that terminates at another Bento box, driven
//! entirely from [`bento::Function`] callbacks.

use bento::function::{FnStreamTarget, FunctionApi};
use bento::protocol::BentoMsg;
use simnet::NodeId;
use tor_net::stream_frame::{encode_frame, FrameAssembler};

/// Connection state to one remote Bento box.
pub struct RemoteBox {
    circ: u64,
    stream: Option<u64>,
    box_addr: NodeId,
    box_port: u16,
    assembler: FrameAssembler,
    connected: bool,
    queued: Vec<Vec<u8>>,
}

impl RemoteBox {
    /// Begin connecting: builds a circuit that exits at the box itself.
    pub fn connect(api: &mut FunctionApi<'_>, box_addr: NodeId, box_port: u16) -> RemoteBox {
        let circ = api.build_circuit(Some((box_addr, box_port)));
        RemoteBox {
            circ,
            stream: None,
            box_addr,
            box_port,
            assembler: FrameAssembler::new(),
            connected: false,
            queued: Vec::new(),
        }
    }

    /// The box this link targets.
    pub fn box_addr(&self) -> NodeId {
        self.box_addr
    }

    /// Whether the protocol stream is up.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Does `circ` belong to this link?
    pub fn owns_circuit(&self, circ: u64) -> bool {
        self.circ == circ
    }

    /// Does (`circ`, `stream`) belong to this link?
    pub fn owns_stream(&self, circ: u64, stream: u64) -> bool {
        self.circ == circ && self.stream == Some(stream)
    }

    /// Feed `on_circuit_ready`; returns true if consumed.
    pub fn on_circuit_ready(&mut self, api: &mut FunctionApi<'_>, circ: u64) -> bool {
        if circ != self.circ || self.stream.is_some() {
            return false;
        }
        let s = api.open_stream(
            self.circ,
            FnStreamTarget::Node(self.box_addr, self.box_port),
        );
        self.stream = Some(s);
        true
    }

    /// Feed `on_stream_connected`; returns true if consumed.
    pub fn on_stream_connected(
        &mut self,
        api: &mut FunctionApi<'_>,
        circ: u64,
        stream: u64,
    ) -> bool {
        if !self.owns_stream(circ, stream) {
            return false;
        }
        self.connected = true;
        for frame in std::mem::take(&mut self.queued) {
            api.stream_send(self.circ, stream, frame);
        }
        true
    }

    /// Feed `on_stream_data`; returns decoded Bento messages if the stream
    /// is this link's (empty vec possible), or `None` if not ours.
    pub fn on_stream_data(
        &mut self,
        _api: &mut FunctionApi<'_>,
        circ: u64,
        stream: u64,
        data: &[u8],
    ) -> Option<Vec<BentoMsg>> {
        if !self.owns_stream(circ, stream) {
            return None;
        }
        self.assembler.push(data);
        let msgs = self
            .assembler
            .drain_frames()
            .into_iter()
            .filter_map(|f| BentoMsg::decode(&f).ok())
            .collect();
        Some(msgs)
    }

    /// Send a Bento message to the remote box (queued until connected).
    pub fn send(&mut self, api: &mut FunctionApi<'_>, msg: &BentoMsg) {
        let frame = encode_frame(&msg.encode());
        match (self.connected, self.stream) {
            (true, Some(stream)) => api.stream_send(self.circ, stream, frame),
            _ => self.queued.push(frame),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bento::function::ContainerRuntime;
    use bento::function::FnAction;
    use bento::protocol::ImageKind;
    use sandbox::cgroup::ResourceLimits;
    use sandbox::container::Container;
    use sandbox::netrules::NetRules;
    use sandbox::seccomp::SeccompFilter;

    fn runtime() -> ContainerRuntime {
        ContainerRuntime {
            container: Container::new(
                1,
                ResourceLimits::default_function(),
                SeccompFilter::allow_all(),
                NetRules::deny_all(),
                1 << 20,
                16,
            ),
            fsp: None,
            image: ImageKind::Plain,
        }
    }

    fn api(rt: &mut ContainerRuntime) -> FunctionApi<'_> {
        FunctionApi::for_testing(rt, 1)
    }

    #[test]
    fn lifecycle_produces_expected_actions() {
        let mut rt = runtime();
        let mut a = api(&mut rt);
        let mut link = RemoteBox::connect(&mut a, NodeId(9), 5005);
        assert!(matches!(
            a.actions()[0],
            FnAction::BuildCircuit {
                exit_to: Some((NodeId(9), 5005)),
                ..
            }
        ));
        // Messages before connection are queued.
        link.send(&mut a, &BentoMsg::GetPolicy);
        assert_eq!(a.actions().len(), 1);
        // Circuit ready -> stream opens.
        let circ = match a.actions()[0] {
            FnAction::BuildCircuit { circ, .. } => circ,
            _ => unreachable!(),
        };
        assert!(link.on_circuit_ready(&mut a, circ));
        assert!(!link.on_circuit_ready(&mut a, circ + 999));
        let stream = match a.actions()[1] {
            FnAction::OpenStream { stream, .. } => stream,
            ref other => panic!("expected OpenStream, got {other:?}"),
        };
        // Stream connected -> queued frame flushes.
        assert!(link.on_stream_connected(&mut a, circ, stream));
        assert!(link.is_connected());
        assert!(matches!(a.actions()[2], FnAction::StreamSend { .. }));
        // Inbound data decodes to messages across split boundaries.
        let frame = encode_frame(&BentoMsg::ShutdownAck.encode());
        let (head, tail) = frame.split_at(frame.len() / 2);
        let m1 = link.on_stream_data(&mut a, circ, stream, head).unwrap();
        assert!(m1.is_empty());
        let m2 = link.on_stream_data(&mut a, circ, stream, tail).unwrap();
        assert_eq!(m2, vec![BentoMsg::ShutdownAck]);
        // Foreign streams are not consumed.
        assert!(link
            .on_stream_data(&mut a, circ, stream + 1, b"x")
            .is_none());
    }
}
