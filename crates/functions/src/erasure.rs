//! Systematic erasure coding for Shard (§9.3): "standard linear encoding
//! techniques to ensure that retrieving any k of the N shards suffices to
//! reconstruct the file" — a Reed–Solomon code with a systematic
//! Vandermonde-derived generator over GF(256).

use crate::gf256::{invert_matrix, mul, mul_acc, pow};

/// One encoded shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPiece {
    /// Row index in the generator matrix (0..k are systematic).
    pub index: u8,
    /// `k` as encoded (needed to reconstruct).
    pub k: u8,
    /// Original file length (strip padding on decode).
    pub file_len: u64,
    /// Shard payload.
    pub data: Vec<u8>,
}

impl ShardPiece {
    /// Serialize.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() + 10);
        out.push(self.index);
        out.push(self.k);
        out.extend_from_slice(&self.file_len.to_be_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Deserialize.
    pub fn from_bytes(b: &[u8]) -> Option<ShardPiece> {
        if b.len() < 10 {
            return None;
        }
        Some(ShardPiece {
            index: b[0],
            k: b[1],
            file_len: u64::from_be_bytes(b[2..10].try_into().ok()?),
            data: b[10..].to_vec(),
        })
    }
}

/// Row `r` of the n×k Vandermonde matrix with distinct evaluation points
/// α_r = r + 1.
fn vandermonde_row(r: u8, k: u8) -> Vec<u8> {
    let alpha = r.wrapping_add(1);
    (0..k).map(|j| pow(alpha, j as u32)).collect()
}

/// The generator row for output shard `row` with data width `k`.
///
/// The generator is G = V · V_top⁻¹ where V is Vandermonde with distinct
/// points: the top k rows of G are the identity (systematic), and **any**
/// k rows of G are invertible, because any k rows of V are (distinct
/// evaluation points) and right-multiplying by the fixed invertible
/// V_top⁻¹ preserves that. A naive identity-plus-Vandermonde stack does
/// *not* have this property.
fn generator_row(row: u8, k: u8) -> Vec<u8> {
    let kk = k as usize;
    if row < k {
        let mut r = vec![0u8; kk];
        r[row as usize] = 1;
        return r;
    }
    let v_top: Vec<Vec<u8>> = (0..k).map(|i| vandermonde_row(i, k)).collect();
    let v_top_inv = invert_matrix(&v_top).expect("Vandermonde top is invertible");
    let v_row = vandermonde_row(row, k);
    (0..kk)
        .map(|j| {
            let mut s = 0u8;
            for i in 0..kk {
                s ^= mul(v_row[i], v_top_inv[i][j]);
            }
            s
        })
        .collect()
}

/// Encode `file` into `n` shards, any `k` of which reconstruct it.
///
/// ```
/// use bento_functions::erasure::{encode, decode};
/// let file = b"the dissident mailing list".to_vec();
/// let shards = encode(&file, 2, 5);
/// // Any two shards suffice — here the two parity-most ones.
/// assert_eq!(decode(&shards[3..5]).unwrap(), file);
/// // One alone does not.
/// assert!(decode(&shards[..1]).is_none());
/// ```
///
/// # Panics
/// If `k == 0`, `n < k`, or `n > 255`.
pub fn encode(file: &[u8], k: u8, n: u8) -> Vec<ShardPiece> {
    assert!(k >= 1 && n >= k, "need 1 <= k <= n");
    let k_us = k as usize;
    let shard_len = file.len().div_ceil(k_us).max(1);
    // Split (zero-padded) into k data shards.
    let mut data: Vec<Vec<u8>> = Vec::with_capacity(k_us);
    for i in 0..k_us {
        let mut s = vec![0u8; shard_len];
        let start = i * shard_len;
        if start < file.len() {
            let end = (start + shard_len).min(file.len());
            s[..end - start].copy_from_slice(&file[start..end]);
        }
        data.push(s);
    }
    (0..n)
        .map(|row| {
            let coeffs = generator_row(row, k);
            let mut out = vec![0u8; shard_len];
            for (j, c) in coeffs.iter().enumerate() {
                mul_acc(&mut out, *c, &data[j]);
            }
            ShardPiece {
                index: row,
                k,
                file_len: file.len() as u64,
                data: out,
            }
        })
        .collect()
}

/// Reconstruct the file from any `k` distinct shards. `None` if there are
/// fewer than `k` distinct shards or they are inconsistent.
pub fn decode(shards: &[ShardPiece]) -> Option<Vec<u8>> {
    let first = shards.first()?;
    let k = first.k as usize;
    let file_len = first.file_len as usize;
    let shard_len = first.data.len();
    // Collect k distinct indices.
    let mut chosen: Vec<&ShardPiece> = Vec::with_capacity(k);
    for s in shards {
        if s.k as usize != k || s.data.len() != shard_len || s.file_len as usize != file_len {
            return None;
        }
        if chosen.iter().all(|c| c.index != s.index) {
            chosen.push(s);
            if chosen.len() == k {
                break;
            }
        }
    }
    if chosen.len() < k {
        return None;
    }
    // Invert the k×k generator submatrix.
    let m: Vec<Vec<u8>> = chosen
        .iter()
        .map(|s| generator_row(s.index, k as u8))
        .collect();
    let mi = invert_matrix(&m)?;
    // data[j] = sum_i mi[j][i] * chosen[i]
    let mut file = Vec::with_capacity(k * shard_len);
    for row in mi.iter().take(k) {
        let mut out = vec![0u8; shard_len];
        for (i, c) in row.iter().enumerate() {
            if *c != 0 {
                for (o, s) in out.iter_mut().zip(chosen[i].data.iter()) {
                    *o ^= mul(*c, *s);
                }
            }
        }
        file.extend_from_slice(&out);
    }
    file.truncate(file_len);
    Some(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn sample_file(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn any_k_of_n_reconstructs() {
        let file = sample_file(10_000, 1);
        let shards = encode(&file, 3, 7);
        assert_eq!(shards.len(), 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let mut pick: Vec<ShardPiece> = shards.clone();
            pick.shuffle(&mut rng);
            pick.truncate(3);
            assert_eq!(decode(&pick).unwrap(), file);
        }
    }

    #[test]
    fn fewer_than_k_fails() {
        let file = sample_file(1000, 3);
        let shards = encode(&file, 4, 8);
        assert!(decode(&shards[..3]).is_none());
        // Duplicate indices don't count toward k.
        let dup = vec![
            shards[0].clone(),
            shards[0].clone(),
            shards[0].clone(),
            shards[0].clone(),
        ];
        assert!(decode(&dup).is_none());
    }

    #[test]
    fn systematic_prefix_is_the_file() {
        let file = sample_file(900, 4);
        let shards = encode(&file, 3, 5);
        let mut joined = Vec::new();
        for s in &shards[..3] {
            joined.extend_from_slice(&s.data);
        }
        joined.truncate(file.len());
        assert_eq!(joined, file);
    }

    #[test]
    fn replication_case_k1() {
        let file = sample_file(500, 5);
        let shards = encode(&file, 1, 4);
        for s in &shards {
            assert_eq!(decode(std::slice::from_ref(s)).unwrap(), file);
        }
    }

    #[test]
    fn parity_only_reconstruction() {
        // Reconstruct using exclusively non-systematic shards.
        let file = sample_file(4096, 6);
        let shards = encode(&file, 4, 10);
        let parity: Vec<ShardPiece> = shards[4..8].to_vec();
        assert_eq!(decode(&parity).unwrap(), file);
    }

    #[test]
    fn uneven_lengths_pad_correctly() {
        for len in [1usize, 2, 3, 499, 500, 501, 1000] {
            let file = sample_file(len, 7 + len as u64);
            let shards = encode(&file, 3, 5);
            assert_eq!(decode(&shards[1..4]).unwrap(), file, "len {len}");
        }
    }

    #[test]
    fn shard_serialization_roundtrip() {
        let file = sample_file(256, 8);
        let shards = encode(&file, 2, 3);
        for s in &shards {
            let back = ShardPiece::from_bytes(&s.to_bytes()).unwrap();
            assert_eq!(&back, s);
        }
        assert!(ShardPiece::from_bytes(&[1, 2]).is_none());
    }

    #[test]
    fn inconsistent_shards_rejected() {
        let file = sample_file(100, 9);
        let mut shards = encode(&file, 2, 4);
        shards[1].k = 3; // claims a different k
        assert!(decode(&shards[..2]).is_none());
    }
}
