//! End-to-end tests of the paper's functions over the full simulated Tor
//! network: Browser (§7), Cover (§9.1), Dropbox (§9.2), Shard (§9.3),
//! LoadBalancer (§8), and the Figure 2 Browser+Dropbox composition.

use bento::protocol::FunctionSpec;
use bento::testnet::BentoNetwork;
use bento::tokens::Token;
use bento::{BentoClientNode, BentoEvent, MiddleboxPolicy};
use bento_functions::browser::{self, BrowseRequest};
use bento_functions::cover::{self, CoverRequest, Mode};
use bento_functions::dropbox;
use bento_functions::erasure;
use bento_functions::load_balancer::{LbParams, ServiceParams};
use bento_functions::shard::{self, decode_locators, ShardRequest};
use bento_functions::standard_registry;
use bento_functions::web::SiteModel;
use simnet::{NodeId, SimDuration, SimTime};
use tor_net::ports::{BENTO_PORT, HS_VIRTUAL_PORT, HTTP_PORT};
use tor_net::{HiddenServiceHost, StreamTarget, TorEvent};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// Connect a client to box `box_idx`, request a Plain container, upload
/// `spec`, and return (conn, invocation token, shutdown token).
fn install(
    bn: &mut BentoNetwork,
    client: NodeId,
    box_idx: usize,
    spec: FunctionSpec,
    t0: u64,
) -> (bento::BoxConn, Token, Token) {
    let image = spec.manifest.image;
    let conn = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            n.bento
                .connect_box(ctx, &mut n.tor, &boxes[box_idx])
                .expect("session")
        });
    bn.net.sim.run_until(secs(t0 + 3));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento.request_container(ctx, &mut n.tor, conn, image);
        });
    bn.net.sim.run_until(secs(t0 + 6));
    let (container, inv, shut) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, _| n.container_ready(conn))
        .expect("container ready");
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(t0 + 9));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(n.upload_ok(conn), "upload accepted: {:?}", n.bento_events);
    });
    (conn, inv, shut)
}

#[test]
fn browser_fetches_compresses_and_pads() {
    let mut bn = BentoNetwork::build(201, 1, MiddleboxPolicy::permissive(), standard_registry);
    let site = SiteModel::generate(0, 77);
    let server = bn.net.add_web_server("web", site.server_pages());
    let client = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    let (conn, inv, _shut) = install(
        &mut bn,
        client,
        0,
        FunctionSpec {
            params: vec![],
            manifest: browser::manifest(false),
        },
        2,
    );
    let padding = 1 << 20;
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let req = BrowseRequest {
                server,
                port: HTTP_PORT,
                path: site.html_path(),
                padding,
                dropbox_on: None,
            };
            n.bento.invoke(ctx, &mut n.tor, conn, inv, req.encode());
        });
    bn.net.sim.run_until(secs(90));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(
            n.output_done(conn),
            "browse completed: {:?}",
            n.bento_events.len()
        );
        // Output 1 = compressed digest, output 2 = padding.
        let outputs: Vec<&Vec<u8>> = n
            .bento_events
            .iter()
            .filter_map(|e| match e {
                BentoEvent::Output(c, d) if *c == conn => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(outputs.len(), 2, "digest then padding");
        let digest = bento_functions::compress::decompress(outputs[0]).expect("valid digest");
        // The digest contains the HTML followed by every asset.
        let html = site.html.encode();
        assert_eq!(&digest[..html.len()], &html[..]);
        assert_eq!(
            digest.len() as u64,
            site.total_bytes() + html.len() as u64 - site.html.inline_len as u64
        );
        // Total transfer is a multiple of the padding quantum.
        let total = (outputs[0].len() + outputs[1].len()) as u64;
        assert_eq!(total % padding, 0, "padded to a multiple of {padding}");
    });
}

#[test]
fn browser_composes_with_dropbox_figure2() {
    let mut bn = BentoNetwork::build(202, 2, MiddleboxPolicy::permissive(), standard_registry);
    let site = SiteModel::generate(1, 77);
    let server = bn.net.add_web_server("web", site.server_pages());
    let dropbox_box = bn.boxes[1];
    let client = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    let (conn, inv, _shut) = install(
        &mut bn,
        client,
        0,
        FunctionSpec {
            params: vec![],
            manifest: browser::manifest(true),
        },
        2,
    );
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let req = BrowseRequest {
                server,
                port: HTTP_PORT,
                path: site.html_path(),
                padding: 0,
                dropbox_on: Some((dropbox_box, BENTO_PORT)),
            };
            n.bento.invoke(ctx, &mut n.tor, conn, inv, req.encode());
            // Alice "goes offline completely during the website download".
        });
    bn.net.sim.run_until(secs(120));
    // The browser's final output is the dropbox locator.
    let locator = bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(n.output_done(conn), "compose finished");
        n.output_bytes(conn)
    });
    assert!(locator.starts_with(b"DROPBOX:"), "locator: {locator:?}");
    let token = Token::from_bytes(&locator[12..44]).expect("token bytes");
    // Alice comes back online and fetches from the dropbox directly.
    let conn2 = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            let info = boxes.iter().find(|b| b.addr == dropbox_box).unwrap();
            n.bento.connect_box(ctx, &mut n.tor, info).unwrap()
        });
    bn.net.sim.run_until(secs(125));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento.invoke(ctx, &mut n.tor, conn2, token, b"G".to_vec());
        });
    bn.net.sim.run_until(secs(180));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        let fetched = n.output_bytes(conn2);
        let digest = bento_functions::compress::decompress(&fetched).expect("digest");
        let html = site.html.encode();
        assert_eq!(&digest[..html.len()], &html[..], "page stored via dropbox");
    });
}

#[test]
fn cover_emits_fixed_rate_downstream_junk() {
    let mut bn = BentoNetwork::build(203, 1, MiddleboxPolicy::permissive(), standard_registry);
    let client = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    let (conn, inv, _shut) = install(
        &mut bn,
        client,
        0,
        FunctionSpec {
            params: vec![],
            manifest: cover::manifest(false),
        },
        2,
    );
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let req = CoverRequest {
                interval_ms: 100,
                count: 20,
                chunk: 498,
                mode: Mode::Downstream,
            };
            n.bento.invoke(ctx, &mut n.tor, conn, inv, req.encode());
        });
    bn.net.sim.run_until(secs(30));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        let junk: Vec<usize> = n
            .bento_events
            .iter()
            .filter_map(|e| match e {
                BentoEvent::Output(c, d) if *c == conn => Some(d.len()),
                _ => None,
            })
            .collect();
        assert_eq!(junk.len(), 20, "one emission per tick");
        assert!(junk.iter().all(|&l| l == 498));
        assert!(n.output_done(conn));
    });
}

#[test]
fn dropbox_over_network_put_get_limit() {
    let mut bn = BentoNetwork::build(204, 1, MiddleboxPolicy::permissive(), standard_registry);
    let client = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    let (conn, inv, _shut) = install(
        &mut bn,
        client,
        0,
        FunctionSpec {
            params: dropbox::Params {
                max_gets: 1,
                expiry_ms: 0,
                max_bytes: 0,
            }
            .encode(),
            manifest: dropbox::manifest(),
        },
        2,
    );
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let mut put = vec![b'P'];
            put.extend_from_slice(&vec![0xAD; 50_000]);
            n.bento.invoke(ctx, &mut n.tor, conn, inv, put);
        });
    bn.net.sim.run_until(secs(15));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert!(n.output_bytes(conn).ends_with(b"OK"));
            n.bento.invoke(ctx, &mut n.tor, conn, inv, b"G".to_vec());
        });
    bn.net.sim.run_until(secs(40));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let out = n.output_bytes(conn);
            assert!(out.len() >= 50_002 && out[2..].iter().all(|&b| b == 0xAD));
            // max_gets = 1: the dropbox has self-destructed; further gets fail.
            n.bento.invoke(ctx, &mut n.tor, conn, inv, b"G".to_vec());
        });
    bn.net.sim.run_until(secs(50));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert_eq!(
            n.rejection(conn),
            Some("bad invocation token"),
            "terminated dropbox no longer answers its token"
        );
    });
}

#[test]
fn shard_deploys_and_any_k_reconstruct() {
    // Box 0 runs Shard; boxes 1..3 receive Dropbox deployments.
    let mut bn = BentoNetwork::build(205, 4, MiddleboxPolicy::permissive(), standard_registry);
    let client = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    let (conn, inv, _shut) = install(
        &mut bn,
        client,
        0,
        FunctionSpec {
            params: vec![],
            manifest: shard::manifest(),
        },
        2,
    );
    let file: Vec<u8> = (0..60_000u32).map(|i| (i * 31 % 251) as u8).collect();
    let targets: Vec<(NodeId, u16)> = bn.boxes[1..4].iter().map(|b| (*b, BENTO_PORT)).collect();
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let req = ShardRequest {
                k: 2,
                targets,
                file: file.clone(),
            };
            n.bento.invoke(ctx, &mut n.tor, conn, inv, req.encode());
        });
    bn.net.sim.run_until(secs(120));
    let locators = bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(n.output_done(conn), "shard deployment finished");
        decode_locators(&n.output_bytes(conn)).expect("locator list")
    });
    assert_eq!(locators.len(), 3, "one shard per target");
    // Fetch only k = 2 shards (skip the first) and reconstruct.
    let mut pieces = Vec::new();
    for (i, loc) in locators.iter().enumerate().skip(1) {
        let conn_i = bn
            .net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, ctx| {
                let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                    .into_iter()
                    .cloned()
                    .collect();
                let info = boxes.iter().find(|b| b.addr == loc.box_addr).unwrap();
                n.bento.connect_box(ctx, &mut n.tor, info).unwrap()
            });
        bn.net.sim.run_until(secs(125 + i as u64 * 20));
        bn.net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, ctx| {
                n.bento
                    .invoke(ctx, &mut n.tor, conn_i, Token(loc.token), b"G".to_vec());
            });
        bn.net.sim.run_until(secs(140 + i as u64 * 20));
        let bytes = bn
            .net
            .sim
            .with_node::<BentoClientNode, _>(client, |n, _| n.output_bytes(conn_i));
        let piece = erasure::ShardPiece::from_bytes(&bytes).expect("shard piece");
        pieces.push(piece);
    }
    assert_eq!(erasure::decode(&pieces).expect("reconstruct"), file);
}

#[test]
fn load_balancer_serves_and_scales() {
    // Box 0 runs the LoadBalancer; box 1 hosts a replica.
    let mut bn = BentoNetwork::build(206, 2, MiddleboxPolicy::permissive(), standard_registry);
    let operator = bn.add_bento_client("operator");
    bn.net.sim.run_until(secs(2));
    let seed = [0x5E; 32];
    let file_len = 200_000u64;
    let lb_params = LbParams {
        service: ServiceParams { seed, file_len },
        n_intro: 2,
        max_per_replica: 1,
        replica_boxes: vec![(bn.boxes[1], BENTO_PORT)],
    };
    let (_conn, _inv, _shut) = install(
        &mut bn,
        operator,
        0,
        FunctionSpec {
            params: lb_params.encode(),
            manifest: bento_functions::load_balancer::lb_manifest(),
        },
        2,
    );
    // Let the service publish its descriptor.
    bn.net.sim.run_until(secs(25));
    let onion = HiddenServiceHost::new(seed, 0, true).onion_addr();
    // Two ordinary Tor clients download concurrently: watermark 1 forces a
    // replica spawn for the second.
    let mut client_nodes = Vec::new();
    for name in ["c1", "c2"] {
        client_nodes.push(bn.net.add_client(name));
    }
    bn.net.sim.run_until(secs(28));
    let mut rend = Vec::new();
    for (i, &c) in client_nodes.iter().enumerate() {
        bn.net.sim.run_until(secs(28 + i as u64));
        let r = bn
            .net
            .sim
            .with_node::<tor_net::netbuild::TestClientNode, _>(c, |n, ctx| {
                n.tor.connect_onion(ctx, onion).expect("onion connect")
            });
        rend.push(r);
    }
    bn.net.sim.run_until(secs(45));
    let mut streams = Vec::new();
    for (&c, &r) in client_nodes.iter().zip(rend.iter()) {
        let s = bn
            .net
            .sim
            .with_node::<tor_net::netbuild::TestClientNode, _>(c, |n, ctx| {
                assert!(
                    n.has_event(|e| matches!(e, TorEvent::RendezvousReady(h) if *h == r)),
                    "rendezvous ready for client; events: {:?}",
                    n.events
                );

                n.tor
                    .open_stream(ctx, r, StreamTarget::Hs(HS_VIRTUAL_PORT))
                    .expect("stream")
            });
        streams.push(s);
    }
    bn.net.sim.run_until(secs(50));
    for (&c, (&r, &s)) in client_nodes.iter().zip(rend.iter().zip(streams.iter())) {
        bn.net
            .sim
            .with_node::<tor_net::netbuild::TestClientNode, _>(c, |n, ctx| {
                n.tor.send_stream(ctx, r, s, b"GET");
            });
    }
    bn.net.sim.run_until(secs(160));
    for (&c, (&r, &s)) in client_nodes.iter().zip(rend.iter().zip(streams.iter())) {
        bn.net
            .sim
            .with_node::<tor_net::netbuild::TestClientNode, _>(c, |n, _| {
                let got = n.stream_bytes(r, s).len() as u64;
                assert_eq!(got, file_len, "full file downloaded");
            });
    }
}

#[test]
fn multipath_fetch_reassembles_over_k_circuits() {
    use bento_functions::multipath::{self, MultipathRequest};
    let mut bn = BentoNetwork::build(207, 1, MiddleboxPolicy::permissive(), standard_registry);
    // A single-part 600 KB resource.
    let body: Vec<u8> = (0..600_000u32).map(|i| (i % 251) as u8).collect();
    let server = bn
        .net
        .add_web_server("web", vec![("/big".to_string(), vec![body.clone()])]);
    let client = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    let (conn, inv, _shut) = install(
        &mut bn,
        client,
        0,
        FunctionSpec {
            params: vec![],
            manifest: multipath::manifest(),
        },
        2,
    );
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let req = MultipathRequest {
                server,
                port: HTTP_PORT,
                path: "/big".into(),
                total_len: body.len() as u64,
                k: 3,
            };
            n.bento.invoke(ctx, &mut n.tor, conn, inv, req.encode());
        });
    bn.net.sim.run_until(secs(90));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(n.output_done(conn), "multipath finished");
        assert_eq!(n.output_bytes(conn), body, "ranges reassembled in order");
    });
}

#[test]
fn load_balancer_fails_over_when_replica_goes_silent() {
    // Box 0 runs the LoadBalancer; box 1 hosts a replica that will be
    // partitioned away — a *silent* death: its circuits to the balancer
    // stay up, so only the missed-heartbeat health sweep can detect it.
    // Clients arriving afterwards must be redirected to a live machine
    // (the balancer itself) instead of being forwarded into the void.
    let mut bn = BentoNetwork::build(213, 2, MiddleboxPolicy::permissive(), standard_registry);
    let operator = bn.add_bento_client("operator");
    bn.net.sim.run_until(secs(2));
    // `install` puts the balancer on discover_boxes()[0], whose consensus
    // ordering need not match bn.boxes — resolve which machine that is so
    // the *other* one hosts the replica (and gets partitioned).
    let lb_box = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(operator, |n, _| {
            bento::BentoClient::discover_boxes(&n.tor)[0].addr
        });
    let replica_box = *bn.boxes.iter().find(|b| **b != lb_box).expect("two boxes");
    let seed = [0x6A; 32];
    let file_len = 200_000u64;
    let lb_params = LbParams {
        service: ServiceParams { seed, file_len },
        n_intro: 2,
        max_per_replica: 1,
        replica_boxes: vec![(replica_box, BENTO_PORT)],
    };
    let (_conn, _inv, _shut) = install(
        &mut bn,
        operator,
        0,
        FunctionSpec {
            params: lb_params.encode(),
            manifest: bento_functions::load_balancer::lb_manifest(),
        },
        2,
    );
    bn.net.sim.run_until(secs(25));
    let onion = HiddenServiceHost::new(seed, 0, true).onion_addr();

    // Phase 1 — two clients force the replica up (watermark 1) and both
    // download; afterwards the replica is idle and heartbeating "load 0".
    // Times are "no earlier than secs(t0)" — the closure advances the clock
    // relative to wherever the previous download left it.
    let download = |bn: &mut BentoNetwork, name: &str, t0: u64| -> (NodeId, u64) {
        let c = bn.net.add_client(name);
        let arrived = bn.net.sim.now().max(secs(t0));
        // Let the newcomer bootstrap (fetch a consensus) before dialing.
        bn.net.sim.run_until(arrived + SimDuration::from_secs(4));
        let mut r = bn
            .net
            .sim
            .with_node::<tor_net::netbuild::TestClientNode, _>(c, |n, ctx| {
                n.tor.connect_onion(ctx, onion).expect("onion connect")
            });
        // Like a real Tor client: retry a stalled or failed rendezvous (a
        // partitioned box is still in the consensus, so circuits routed
        // through it hang or die — a fresh attempt picks a fresh path).
        for _ in 0..4 {
            let dialed = bn.net.sim.now();
            bn.net.sim.run_until(dialed + SimDuration::from_secs(15));
            let ready = bn
                .net
                .sim
                .with_node::<tor_net::netbuild::TestClientNode, _>(c, |n, _| {
                    n.has_event(|e| matches!(e, TorEvent::RendezvousReady(h) if *h == r))
                });
            if ready {
                break;
            }
            r = bn
                .net
                .sim
                .with_node::<tor_net::netbuild::TestClientNode, _>(c, |n, ctx| {
                    n.tor.connect_onion(ctx, onion).expect("onion reconnect")
                });
        }
        let s = bn
            .net
            .sim
            .with_node::<tor_net::netbuild::TestClientNode, _>(c, |n, ctx| {
                assert!(
                    n.has_event(|e| matches!(e, TorEvent::RendezvousReady(h) if *h == r)),
                    "{name}: rendezvous ready; events: {:?}",
                    n.events
                );
                let s = n
                    .tor
                    .open_stream(ctx, r, StreamTarget::Hs(HS_VIRTUAL_PORT))
                    .expect("stream");
                n.tor.send_stream(ctx, r, s, b"GET");
                s
            });
        (c, (r.0 as u64) << 32 | s as u64)
    };
    let (c1, k1) = download(&mut bn, "c1", 28);
    let (c2, k2) = download(&mut bn, "c2", 29);
    bn.net.sim.run_until(secs(150));
    for (c, k) in [(c1, k1), (c2, k2)] {
        bn.net
            .sim
            .with_node::<tor_net::netbuild::TestClientNode, _>(c, |n, _| {
                let (r, s) = (tor_net::CircuitHandle((k >> 32) as usize), k as u16);
                assert_eq!(n.stream_bytes(r, s).len() as u64, file_len);
            });
    }

    // Phase 2 — the replica box drops off the network without closing
    // anything. Its load reports stop; after DEAD_AFTER the sweep marks it
    // Failed.
    bn.net.sim.inject_fault(
        secs(160),
        simnet::FaultAction::Partition {
            group: vec![replica_box],
        },
    );

    // Phase 3 — two more clients, staggered so the second one's
    // introduction arrives while the balancer is already busy with the
    // first: without the health sweep it would be forwarded to the silent
    // replica (stale load 0) and hang forever.
    let (c3, k3) = download(&mut bn, "c3", 172);
    let (c4, k4) = download(&mut bn, "c4", 176);
    bn.net.sim.run_until(secs(300));
    for (c, k) in [(c3, k3), (c4, k4)] {
        bn.net
            .sim
            .with_node::<tor_net::netbuild::TestClientNode, _>(c, |n, _| {
                let (r, s) = (tor_net::CircuitHandle((k >> 32) as usize), k as u16);
                assert_eq!(
                    n.stream_bytes(r, s).len() as u64,
                    file_len,
                    "served by a live machine after the failover"
                );
            });
    }
}
