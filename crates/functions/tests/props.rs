//! Property-based tests of the function substrates: the erasure code's
//! defining k-of-N property, the compressor, and the codecs.

use bento_functions::compress::{compress, decompress};
use bento_functions::erasure::{decode, encode, ShardPiece};
use bento_functions::shard::{decode_locators, encode_locators, ShardLocator};
use bento_functions::web::HtmlDoc;
use proptest::prelude::*;
use simnet::NodeId;

proptest! {
    /// THE Shard invariant (§9.3): any k of N shards reconstruct the file.
    #[test]
    fn any_k_of_n_reconstructs(file in proptest::collection::vec(any::<u8>(), 1..4096),
                               k in 1u8..6, extra in 0u8..5,
                               pick_seed: u64) {
        let n = k + extra;
        let shards = encode(&file, k, n);
        prop_assert_eq!(shards.len(), n as usize);
        // Choose a pseudo-random k-subset from the seed.
        let mut indices: Vec<usize> = (0..n as usize).collect();
        let mut s = pick_seed;
        for i in (1..indices.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            indices.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let picked: Vec<ShardPiece> = indices[..k as usize]
            .iter()
            .map(|&i| shards[i].clone())
            .collect();
        prop_assert_eq!(decode(&picked).unwrap(), file);
    }

    /// Fewer than k distinct shards never reconstruct.
    #[test]
    fn fewer_than_k_fails(file in proptest::collection::vec(any::<u8>(), 1..1024),
                          k in 2u8..6, extra in 0u8..4) {
        let n = k + extra;
        let shards = encode(&file, k, n);
        prop_assert!(decode(&shards[..k as usize - 1]).is_none());
    }

    /// The compressor roundtrips arbitrary data.
    #[test]
    fn compress_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    /// Compressing structured (repetitive) data roundtrips too, and the
    /// decompressor never panics on corruption.
    #[test]
    fn compress_repetitive_and_corrupt(motif in proptest::collection::vec(any::<u8>(), 1..32),
                                       reps in 1usize..200,
                                       flip in any::<(usize, u8)>()) {
        let data: Vec<u8> = motif.iter().copied().cycle().take(motif.len() * reps).collect();
        let mut c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
        if !c.is_empty() {
            let idx = flip.0 % c.len();
            c[idx] ^= 1 << (flip.1 % 8);
            let _ = decompress(&c); // any result is fine; panicking is not
        }
    }

    /// Shard wire formats roundtrip and reject garbage without panicking.
    #[test]
    fn shard_codecs(idx: u8, k in 1u8..10, file_len: u64,
                    data in proptest::collection::vec(any::<u8>(), 0..256),
                    garbage in proptest::collection::vec(any::<u8>(), 0..128)) {
        let piece = ShardPiece { index: idx, k, file_len, data };
        prop_assert_eq!(ShardPiece::from_bytes(&piece.to_bytes()).unwrap(), piece);
        let locs = vec![ShardLocator {
            index: idx,
            box_addr: NodeId(7),
            box_port: 5005,
            token: [idx; 32],
        }];
        prop_assert_eq!(decode_locators(&encode_locators(&locs)).unwrap(), locs);
        let _ = ShardPiece::from_bytes(&garbage);
        let _ = decode_locators(&garbage);
        let _ = HtmlDoc::decode(&garbage);
    }
}
