//! The function programming model.
//!
//! The paper's functions are "essentially arbitrary Python ... like small
//! servlets running on Tor relays" (§5.1), constrained not in what they
//! compute but in the *side effects* they can have. Here a function is a
//! Rust type implementing [`Function`]: an event-driven servlet whose only
//! channel to the world is [`FunctionApi`] — file I/O through the
//! container (or FS Protect), network I/O through the exit-policy rules,
//! and Tor control through the Stem firewall. Uploading "code" is modeled
//! by a [`FunctionRegistry`] lookup: the client ships a function *name*
//! plus parameters plus a manifest, standing in for shipping Python source
//! (see DESIGN.md for why this preserves the paper's safety story).

use crate::protocol::ImageKind;
use conclave::fsprotect::FsProtect;
use rand::rngs::StdRng;
use sandbox::container::{Container, ContainerError, Syscall, SyscallOutcome};
use sandbox::seccomp::SyscallClass;
use simnet::{NodeId, SimDuration, SimTime};
use std::collections::BTreeMap;

/// A target for a function-opened Tor stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnStreamTarget {
    /// An external host:port via the circuit's exit.
    Node(NodeId, u16),
    /// The hidden service at the end of a rendezvous circuit.
    Hs(u16),
}

/// Side effects a function requests; the Bento box applies them after the
/// callback returns.
#[derive(Debug, Clone)]
pub enum FnAction {
    /// Emit output to the invoking client.
    Output(Vec<u8>),
    /// Signal end of this invocation's output.
    OutputEnd,
    /// Open a direct (exit-policy-gated) connection.
    Connect {
        /// Function-local connection handle.
        conn: u64,
        /// Destination.
        host: NodeId,
        /// Destination port.
        port: u16,
    },
    /// Send on a direct connection.
    NetSend {
        /// Connection handle.
        conn: u64,
        /// Bytes.
        data: Vec<u8>,
    },
    /// Close a direct connection.
    NetClose {
        /// Connection handle.
        conn: u64,
    },
    /// Schedule a timer callback.
    SetTimer {
        /// Delay.
        delay: SimDuration,
        /// Tag passed back to `on_timer`.
        tag: u64,
    },
    /// Terminate this function's container.
    Terminate,
    /// Stem: build a circuit (optionally exiting to a destination).
    BuildCircuit {
        /// Function-local circuit handle.
        circ: u64,
        /// Exit requirement.
        exit_to: Option<(NodeId, u16)>,
    },
    /// Stem: connect to an onion service.
    ConnectOnion {
        /// Function-local circuit handle (the rendezvous circuit).
        circ: u64,
        /// The onion address bytes.
        addr: [u8; 32],
    },
    /// Stem: open a stream on an owned circuit.
    OpenStream {
        /// Circuit handle.
        circ: u64,
        /// Function-local stream handle.
        stream: u64,
        /// Target.
        target: FnStreamTarget,
    },
    /// Stem: send on an owned stream.
    StreamSend {
        /// Circuit handle.
        circ: u64,
        /// Stream handle.
        stream: u64,
        /// Bytes.
        data: Vec<u8>,
    },
    /// Stem: close an owned stream.
    StreamClose {
        /// Circuit handle.
        circ: u64,
        /// Stream handle.
        stream: u64,
    },
    /// Stem: accept/refuse an incoming stream on an owned circuit.
    RespondIncoming {
        /// Circuit handle.
        circ: u64,
        /// Stream handle (from `on_incoming_stream`).
        stream: u64,
        /// Accept?
        accept: bool,
    },
    /// Stem: emit a cover (DROP) cell on an owned circuit.
    SendDrop {
        /// Circuit handle.
        circ: u64,
    },
    /// Stem: launch a hidden service (dedicated onion proxy).
    CreateHs {
        /// Function-local service handle.
        hs: u64,
        /// Service key seed (replicas share it).
        seed: [u8; 32],
        /// Number of introduction points (0 = replica, publishes nothing).
        n_intro: u32,
        /// Answer introductions automatically.
        auto_rendezvous: bool,
    },
    /// Stem: hand a raw INTRODUCE2 to an owned hidden service (the
    /// LoadBalancer replica path).
    HsHandleIntro {
        /// Service handle.
        hs: u64,
        /// Raw introduction payload.
        blob: Vec<u8>,
    },
}

/// The mediated API a function sees during a callback. All side effects
/// are *actions* applied by the box afterward; all resource use is charged
/// to the container immediately.
pub struct FunctionApi<'a> {
    pub(crate) runtime: &'a mut ContainerRuntime,
    pub(crate) actions: Vec<FnAction>,
    pub(crate) now: SimTime,
    pub(crate) rng: StdRng,
    pub(crate) next_handle: u64,
}

impl<'a> FunctionApi<'a> {
    /// Construct an API outside a Bento server — for unit-testing functions.
    pub fn for_testing(runtime: &'a mut ContainerRuntime, seed: u64) -> FunctionApi<'a> {
        FunctionApi {
            runtime,
            actions: Vec::new(),
            now: SimTime::ZERO,
            rng: rand::SeedableRng::seed_from_u64(seed),
            next_handle: 0,
        }
    }

    /// The actions queued so far (testing/inspection).
    pub fn actions(&self) -> &[FnAction] {
        &self.actions
    }

    /// Drain the queued actions (testing).
    pub fn take_actions(&mut self) -> Vec<FnAction> {
        std::mem::take(&mut self.actions)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-callback RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn handle(&mut self) -> u64 {
        self.next_handle += 1;
        self.next_handle
    }

    /// Emit output bytes to the invoking client.
    pub fn output(&mut self, data: Vec<u8>) {
        self.actions.push(FnAction::Output(data));
    }

    /// Mark this invocation's output complete.
    pub fn output_end(&mut self) {
        self.actions.push(FnAction::OutputEnd);
    }

    /// Charge CPU time (long computations must account for themselves).
    pub fn cpu(&mut self, ms: u64) -> Result<(), ContainerError> {
        self.runtime.container.charge_cpu(ms)
    }

    /// Write a file (FS Protect in the SGX image — the operator sees only
    /// ciphertext).
    pub fn fs_write(&mut self, path: &str, data: &[u8]) -> Result<(), ContainerError> {
        self.runtime.fs_write(path, data)
    }

    /// Read a file.
    pub fn fs_read(&mut self, path: &str) -> Result<Vec<u8>, ContainerError> {
        self.runtime.fs_read(path)
    }

    /// Delete a file.
    pub fn fs_unlink(&mut self, path: &str) -> Result<(), ContainerError> {
        self.runtime.fs_unlink(path)
    }

    /// Whether a file exists.
    pub fn fs_exists(&mut self, path: &str) -> bool {
        self.runtime.fs_exists(path)
    }

    /// Open a direct connection (checked against the container's network
    /// rules — the relay's exit policy).
    pub fn connect(&mut self, host: NodeId, port: u16) -> Result<u64, ContainerError> {
        match self
            .runtime
            .container
            .syscall(Syscall::Connect { host: host.0, port })?
        {
            SyscallOutcome::Permitted => {
                let conn = self.handle();
                self.actions.push(FnAction::Connect { conn, host, port });
                Ok(conn)
            }
            _ => unreachable!("connect returns Permitted"),
        }
    }

    /// Send on a direct connection.
    pub fn net_send(&mut self, conn: u64, data: Vec<u8>) {
        self.actions.push(FnAction::NetSend { conn, data });
    }

    /// Close a direct connection.
    pub fn net_close(&mut self, conn: u64) {
        self.actions.push(FnAction::NetClose { conn });
    }

    /// Schedule `on_timer(tag)` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(FnAction::SetTimer { delay, tag });
    }

    /// Terminate this function.
    pub fn terminate(&mut self) {
        self.actions.push(FnAction::Terminate);
    }

    /// Stem: build a circuit; `on_circuit_ready` fires with this handle.
    pub fn build_circuit(&mut self, exit_to: Option<(NodeId, u16)>) -> u64 {
        let circ = self.handle();
        self.actions.push(FnAction::BuildCircuit { circ, exit_to });
        circ
    }

    /// Stem: connect to an onion service; `on_circuit_ready` fires when the
    /// rendezvous completes.
    pub fn connect_onion(&mut self, addr: [u8; 32]) -> u64 {
        let circ = self.handle();
        self.actions.push(FnAction::ConnectOnion { circ, addr });
        circ
    }

    /// Stem: open a stream on an owned circuit.
    pub fn open_stream(&mut self, circ: u64, target: FnStreamTarget) -> u64 {
        let stream = self.handle();
        self.actions.push(FnAction::OpenStream {
            circ,
            stream,
            target,
        });
        stream
    }

    /// Stem: send on an owned stream.
    pub fn stream_send(&mut self, circ: u64, stream: u64, data: Vec<u8>) {
        self.actions
            .push(FnAction::StreamSend { circ, stream, data });
    }

    /// Stem: close an owned stream.
    pub fn stream_close(&mut self, circ: u64, stream: u64) {
        self.actions.push(FnAction::StreamClose { circ, stream });
    }

    /// Stem: accept or refuse an incoming stream.
    pub fn respond_incoming(&mut self, circ: u64, stream: u64, accept: bool) {
        self.actions.push(FnAction::RespondIncoming {
            circ,
            stream,
            accept,
        });
    }

    /// Stem: send one cover cell.
    pub fn send_drop(&mut self, circ: u64) {
        self.actions.push(FnAction::SendDrop { circ });
    }

    /// Stem: launch a hidden service.
    pub fn create_hs(&mut self, seed: [u8; 32], n_intro: u32, auto_rendezvous: bool) -> u64 {
        let hs = self.handle();
        self.actions.push(FnAction::CreateHs {
            hs,
            seed,
            n_intro,
            auto_rendezvous,
        });
        hs
    }

    /// Stem: process a forwarded introduction (replica path).
    pub fn hs_handle_intro(&mut self, hs: u64, blob: Vec<u8>) {
        self.actions.push(FnAction::HsHandleIntro { hs, blob });
    }
}

/// A Bento function: an event-driven servlet.
///
/// Every callback receives the mediated [`FunctionApi`]; the default
/// implementations ignore events a function does not care about, so simple
/// functions are only a few lines — mirroring the paper's "about four lines
/// of Python" Browser.
///
/// Functions must be [`Send`]: the host node (and everything inside it) may
/// migrate across worker threads between windows of the sharded simulator
/// engine. Functions are never called concurrently.
pub trait Function: Send {
    /// The function was installed (once, after upload).
    fn on_install(&mut self, _api: &mut FunctionApi<'_>) {}
    /// The client invoked the function with `input`.
    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, input: Vec<u8>);
    /// A direct connection opened.
    fn on_net_connected(&mut self, _api: &mut FunctionApi<'_>, _conn: u64) {}
    /// Data on a direct connection.
    fn on_net_data(&mut self, _api: &mut FunctionApi<'_>, _conn: u64, _data: Vec<u8>) {}
    /// A direct connection closed.
    fn on_net_closed(&mut self, _api: &mut FunctionApi<'_>, _conn: u64) {}
    /// An owned circuit is ready (also fired when `connect_onion`
    /// completes its rendezvous).
    fn on_circuit_ready(&mut self, _api: &mut FunctionApi<'_>, _circ: u64) {}
    /// An owned circuit failed or closed.
    fn on_circuit_failed(&mut self, _api: &mut FunctionApi<'_>, _circ: u64) {}
    /// An owned stream connected.
    fn on_stream_connected(&mut self, _api: &mut FunctionApi<'_>, _circ: u64, _stream: u64) {}
    /// Data on an owned stream.
    fn on_stream_data(
        &mut self,
        _api: &mut FunctionApi<'_>,
        _circ: u64,
        _stream: u64,
        _data: Vec<u8>,
    ) {
    }
    /// An owned stream ended.
    fn on_stream_ended(&mut self, _api: &mut FunctionApi<'_>, _circ: u64, _stream: u64) {}
    /// A peer opened a stream toward an owned rendezvous circuit.
    fn on_incoming_stream(
        &mut self,
        _api: &mut FunctionApi<'_>,
        _circ: u64,
        _stream: u64,
        _port: u16,
    ) {
    }
    /// An owned hidden service published its descriptor.
    fn on_hs_published(&mut self, _api: &mut FunctionApi<'_>, _hs: u64) {}
    /// An owned hidden service received an introduction it did not answer
    /// (auto_rendezvous off).
    fn on_hs_introduction(&mut self, _api: &mut FunctionApi<'_>, _hs: u64, _blob: Vec<u8>) {}
    /// An owned hidden service joined a client rendezvous circuit; the
    /// circuit is owned by this function under handle `circ`.
    fn on_hs_client_circuit(&mut self, _api: &mut FunctionApi<'_>, _hs: u64, _circ: u64) {}
    /// A timer fired.
    fn on_timer(&mut self, _api: &mut FunctionApi<'_>, _tag: u64) {}
}

/// Constructs a function from uploaded parameters.
pub type Constructor = fn(&[u8]) -> Box<dyn Function>;

/// The registry standing in for "shipping Python source": maps function
/// names to constructors. Operators provide the images; clients provide the
/// function (name + parameters) — §5.3's split between container images and
/// client-provided functions.
#[derive(Default)]
pub struct FunctionRegistry {
    map: BTreeMap<String, Constructor>,
}

impl FunctionRegistry {
    /// Empty registry.
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    /// Register a constructor under `name`.
    pub fn register(&mut self, name: &str, ctor: Constructor) -> &mut Self {
        self.map.insert(name.to_string(), ctor);
        self
    }

    /// Instantiate `name` with `params`.
    pub fn instantiate(&self, name: &str, params: &[u8]) -> Option<Box<dyn Function>> {
        self.map.get(name).map(|ctor| ctor(params))
    }

    /// Registered names (sorted — the map is ordered).
    pub fn names(&self) -> Vec<&str> {
        self.map.keys().map(|s| s.as_str()).collect()
    }
}

/// The per-function execution environment: the sandbox container plus, for
/// the SGX image, the conclave's FS Protect.
pub struct ContainerRuntime {
    /// The sandbox container.
    pub container: Container,
    /// FS Protect (SGX image only).
    pub fsp: Option<FsProtect>,
    /// Which image this is.
    pub image: ImageKind,
}

impl ContainerRuntime {
    fn fs_write(&mut self, path: &str, data: &[u8]) -> Result<(), ContainerError> {
        match &mut self.fsp {
            Some(fsp) => {
                self.container.check_class(SyscallClass::Write)?;
                self.container.charge_disk(data.len() as u64)?;
                fsp.write(path, data);
                Ok(())
            }
            None => self
                .container
                .syscall(Syscall::Write {
                    path: path.to_string(),
                    data: data.to_vec(),
                })
                .map(|_| ()),
        }
    }

    fn fs_read(&mut self, path: &str) -> Result<Vec<u8>, ContainerError> {
        match &mut self.fsp {
            Some(fsp) => {
                self.container.check_class(SyscallClass::Read)?;
                fsp.read(path)
                    .ok_or(ContainerError::Fs(sandbox::fs::FsError::NotFound(
                        path.to_string(),
                    )))
            }
            None => match self.container.syscall(Syscall::Read {
                path: path.to_string(),
            })? {
                SyscallOutcome::Data(d) => Ok(d),
                _ => unreachable!("read returns data"),
            },
        }
    }

    fn fs_unlink(&mut self, path: &str) -> Result<(), ContainerError> {
        match &mut self.fsp {
            Some(fsp) => {
                self.container.check_class(SyscallClass::Unlink)?;
                if fsp.unlink(path) {
                    Ok(())
                } else {
                    Err(ContainerError::Fs(sandbox::fs::FsError::NotFound(
                        path.to_string(),
                    )))
                }
            }
            None => self
                .container
                .syscall(Syscall::Unlink {
                    path: path.to_string(),
                })
                .map(|_| ()),
        }
    }

    fn fs_exists(&mut self, path: &str) -> bool {
        match &self.fsp {
            Some(fsp) => fsp.exists(path),
            None => self.container.fs().exists(path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sandbox::cgroup::ResourceLimits;
    use sandbox::netrules::{NetRule, NetRules};
    use sandbox::seccomp::SeccompFilter;

    fn runtime(sgx: bool) -> ContainerRuntime {
        let mut rng = StdRng::seed_from_u64(9);
        ContainerRuntime {
            container: Container::new(
                1,
                ResourceLimits::default_function(),
                SeccompFilter::allow_all(),
                NetRules::from_rules(vec![NetRule {
                    accept: true,
                    host: None,
                    ports: (80, 443),
                }]),
                1 << 20,
                64,
            ),
            fsp: if sgx {
                Some(FsProtect::launch(&mut rng))
            } else {
                None
            },
            image: if sgx {
                ImageKind::Sgx
            } else {
                ImageKind::Plain
            },
        }
    }

    fn api(rt: &mut ContainerRuntime) -> FunctionApi<'_> {
        FunctionApi {
            runtime: rt,
            actions: Vec::new(),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(1),
            next_handle: 0,
        }
    }

    #[test]
    fn plain_fs_roundtrip() {
        let mut rt = runtime(false);
        let mut a = api(&mut rt);
        a.fs_write("out", b"data").unwrap();
        assert_eq!(a.fs_read("out").unwrap(), b"data");
        assert!(a.fs_exists("out"));
        a.fs_unlink("out").unwrap();
        assert!(!a.fs_exists("out"));
    }

    #[test]
    fn sgx_fs_roundtrip_is_encrypted_at_rest() {
        let mut rt = runtime(true);
        {
            let mut a = api(&mut rt);
            a.fs_write("secret", b"plaintext payload").unwrap();
            assert_eq!(a.fs_read("secret").unwrap(), b"plaintext payload");
        }
        // The operator inspects the backing store: ciphertext only.
        let fsp = rt.fsp.as_ref().unwrap();
        for (_, ct) in fsp.operator_view() {
            assert!(!ct.windows(9).any(|w| w == b"plaintext"));
        }
    }

    #[test]
    fn connect_gated_by_net_rules() {
        let mut rt = runtime(false);
        let mut a = api(&mut rt);
        assert!(a.connect(NodeId(5), 80).is_ok());
        assert!(matches!(
            a.connect(NodeId(5), 22),
            Err(ContainerError::NetDenied { .. })
        ));
        // One Connect action was queued for the permitted attempt only.
        let connects = a
            .actions
            .iter()
            .filter(|x| matches!(x, FnAction::Connect { .. }))
            .count();
        assert_eq!(connects, 1);
    }

    #[test]
    fn handles_are_unique() {
        let mut rt = runtime(false);
        let mut a = api(&mut rt);
        let c1 = a.build_circuit(None);
        let c2 = a.build_circuit(None);
        let s = a.open_stream(c1, FnStreamTarget::Hs(443));
        assert!(c1 != c2 && c2 != s && c1 != s);
    }

    #[test]
    fn registry_instantiates_by_name() {
        struct Echo;
        impl Function for Echo {
            fn on_invoke(&mut self, api: &mut FunctionApi<'_>, input: Vec<u8>) {
                api.output(input);
                api.output_end();
            }
        }
        fn make_echo(_params: &[u8]) -> Box<dyn Function> {
            Box::new(Echo)
        }
        let mut reg = FunctionRegistry::new();
        reg.register("echo", make_echo);
        assert_eq!(reg.names(), vec!["echo"]);
        let mut f = reg.instantiate("echo", b"").unwrap();
        let mut rt = runtime(false);
        let mut a = api(&mut rt);
        f.on_invoke(&mut a, b"ping".to_vec());
        assert_eq!(a.actions.len(), 2);
        assert!(matches!(&a.actions[0], FnAction::Output(d) if d == b"ping"));
        assert!(reg.instantiate("missing", b"").is_none());
    }

    #[test]
    fn seccomp_denial_blocks_fs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut rt = ContainerRuntime {
            container: Container::new(
                2,
                ResourceLimits::default_function(),
                SeccompFilter::deny_all(),
                NetRules::deny_all(),
                1 << 20,
                4,
            ),
            fsp: Some(FsProtect::launch(&mut rng)),
            image: ImageKind::Sgx,
        };
        let mut a = api(&mut rt);
        assert!(matches!(
            a.fs_write("x", b"y"),
            Err(ContainerError::SeccompDenied(SyscallClass::Write))
        ));
    }
}
