//! The Bento box host node: one machine running an unmodified Tor relay, a
//! Bento server reachable through the relay's exit path to "localhost",
//! and an onion proxy for the functions' own Tor use (Figure 3).

use crate::server::{BentoServer, Deps};
use simnet::{ConnId, Ctx, Node, NodeId};
use tor_net::client::TorClient;
use tor_net::relay::{RelayCore, RelayEvent};

/// A relay + Bento server + onion proxy, wired together.
pub struct BentoBoxNode {
    /// The co-resident (unmodified) Tor relay.
    pub relay: RelayCore,
    /// The onion proxy functions use through the Stem firewall.
    pub tor: TorClient,
    /// The Bento server.
    pub bento: BentoServer,
}

impl BentoBoxNode {
    /// Assemble a box from its components. The onion proxy is barred from
    /// ever routing through the co-resident relay (a node cannot hold both
    /// ends of a loopback OR link).
    pub fn new(relay: RelayCore, mut tor: TorClient, bento: BentoServer) -> BentoBoxNode {
        tor.exclude_relay(relay.fingerprint());
        BentoBoxNode { relay, tor, bento }
    }

    /// Route queued relay local-stream events and onion-proxy events into
    /// the Bento server.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        // Local Bento-protocol streams.
        for ev in self.relay.drain_events() {
            let mut deps = Deps {
                ctx,
                relay: &mut self.relay,
                tor: &mut self.tor,
            };
            match ev {
                RelayEvent::LocalStreamOpened { stream, .. } => {
                    self.bento.on_local_stream_opened(stream);
                }
                RelayEvent::LocalStreamData { stream, data } => {
                    self.bento.on_local_stream_data(&mut deps, stream, data);
                }
                RelayEvent::LocalStreamClosed { stream } => {
                    self.bento.on_local_stream_closed(stream);
                }
            }
        }
        // Onion-proxy events for function circuits.
        for ev in self.tor.poll_events() {
            let mut deps = Deps {
                ctx,
                relay: &mut self.relay,
                tor: &mut self.tor,
            };
            self.bento.on_tor_event(&mut deps, ev);
        }
    }
}

impl Node for BentoBoxNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.relay.on_start(ctx);
        self.tor.bootstrap(ctx);
    }

    fn on_conn_open(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, peer: NodeId, port: u16) {
        self.relay.on_conn_open(ctx, conn, peer, port);
        self.pump(ctx);
    }

    fn on_conn_established(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, peer: NodeId) {
        if !self.relay.on_conn_established(ctx, conn, peer)
            && !self.tor.handle_conn_established(ctx, conn)
            && self.bento.owns_conn(conn)
        {
            let mut deps = Deps {
                ctx,
                relay: &mut self.relay,
                tor: &mut self.tor,
            };
            self.bento.on_conn_established(&mut deps, conn);
        }
        self.pump(ctx);
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
        if !self.relay.on_msg(ctx, conn, msg.clone())
            && !self.tor.handle_msg(ctx, conn, msg.clone())
            && self.bento.owns_conn(conn)
        {
            let mut deps = Deps {
                ctx,
                relay: &mut self.relay,
                tor: &mut self.tor,
            };
            self.bento.on_conn_msg(&mut deps, conn, msg);
        }
        self.pump(ctx);
    }

    fn on_conn_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        if !self.relay.on_conn_closed(ctx, conn) && !self.tor.handle_conn_closed(ctx, conn) {
            let mut deps = Deps {
                ctx,
                relay: &mut self.relay,
                tor: &mut self.tor,
            };
            self.bento.on_conn_closed(&mut deps, conn);
        }
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if !self.relay.on_timer(ctx, tag) && !self.tor.handle_timer(ctx, tag) {
            let mut deps = Deps {
                ctx,
                relay: &mut self.relay,
                tor: &mut self.tor,
            };
            self.bento.on_timer(&mut deps, tag);
        }
        self.pump(ctx);
    }

    fn on_crash(&mut self) {
        // Everything volatile dies: relay link/circuit state, the onion
        // proxy's circuits and consensus, the server's containers. The
        // server's sealed store (its disk) survives and is replayed once
        // the restarted proxy re-fetches a consensus.
        self.relay.reset();
        self.tor.reset();
        self.bento.crash();
    }

    // Default on_restart → on_start: the relay re-registers under its
    // seed-derived identity and the onion proxy re-bootstraps.

    fn flush_telemetry(&mut self) {
        self.relay.flush_telemetry();
    }
}
