//! The Bento client: discover boxes, fetch policies, attest, upload,
//! invoke, compose, shut down — all over ordinary Tor circuits.

use crate::policy::MiddleboxPolicy;
use crate::protocol::{BentoMsg, FunctionSpec, ImageKind};
use crate::tokens::Token;
use conclave::channel::{AttestedChannel, ClientHello};
use onion_crypto::hashsig::MerkleVerifyKey;
use simnet::{ConnId, Ctx, Node, NodeId};
use std::collections::VecDeque;
use tor_net::client::{CircuitHandle, TerminalReq, TorClient, TorEvent};
use tor_net::dir::{RelayFlags, RelayInfo};
use tor_net::stream_frame::{encode_frame, FrameAssembler};
use tor_net::StreamTarget;

/// Handle to one client↔box session (a Tor stream to the box's Bento port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoxConn(pub usize);

/// Events the Bento client surfaces.
#[derive(Debug)]
pub enum BentoEvent {
    /// The stream to the box is connected; requests may be sent.
    Connected(BoxConn),
    /// The box's middlebox node policy.
    Policy(BoxConn, MiddleboxPolicy),
    /// A container is ready (attestation, if any, verified).
    ContainerReady {
        /// Session.
        conn: BoxConn,
        /// Container id for the upload.
        container: u64,
        /// Invocation capability.
        invocation: Token,
        /// Shutdown capability.
        shutdown: Token,
    },
    /// Attestation of the box's conclave failed; do not upload.
    AttestationFailed(BoxConn, String),
    /// The function was installed.
    UploadOk(BoxConn, u64),
    /// The box refused a request.
    Rejected(BoxConn, String),
    /// Function output.
    Output(BoxConn, Vec<u8>),
    /// The function finished this invocation's output.
    OutputEnd(BoxConn),
    /// The container was shut down.
    ShutdownAck(BoxConn),
    /// The session closed.
    Closed(BoxConn),
}

struct Session {
    circ: CircuitHandle,
    stream: Option<u16>,
    relay_addr: NodeId,
    bento_port: u16,
    assembler: FrameAssembler,
    /// Queued frames awaiting stream establishment.
    queued: Vec<Vec<u8>>,
    connected: bool,
    pending_hello: Option<ClientHello>,
    channel: Option<AttestedChannel>,
    alive: bool,
}

/// The Bento client component (drives a [`TorClient`]).
pub struct BentoClient {
    sessions: Vec<Session>,
    events: VecDeque<BentoEvent>,
    ias_key: MerkleVerifyKey,
    expected_measurement: [u8; 32],
}

impl BentoClient {
    /// A client that pins the attestation service key and the expected
    /// conclave image measurement (the "Bento execution environment,
    /// including Python" — §5.4).
    pub fn new(ias_key: MerkleVerifyKey, expected_measurement: [u8; 32]) -> BentoClient {
        BentoClient {
            sessions: Vec::new(),
            events: VecDeque::new(),
            ias_key,
            expected_measurement,
        }
    }

    /// Drain pending events.
    pub fn poll_events(&mut self) -> Vec<BentoEvent> {
        self.events.drain(..).collect()
    }

    /// Bento boxes advertised in the consensus.
    pub fn discover_boxes(tor: &TorClient) -> Vec<&RelayInfo> {
        tor.consensus()
            .map(|c| {
                c.with_flags(RelayFlags::BENTO)
                    .into_iter()
                    .filter(|r| r.bento_port.is_some())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Open a session to a Bento box: a circuit terminating at the box's
    /// relay, then a stream to its Bento port via the relay's "localhost"
    /// exit.
    pub fn connect_box(
        &mut self,
        ctx: &mut Ctx<'_>,
        tor: &mut TorClient,
        relay: &RelayInfo,
    ) -> Option<BoxConn> {
        let bento_port = relay.bento_port?;
        let path = tor.select_path(ctx, TerminalReq::Specific(relay.fingerprint))?;
        let circ = tor.build_circuit(ctx, path)?;
        let id = self.sessions.len();
        self.sessions.push(Session {
            circ,
            stream: None,
            relay_addr: relay.addr,
            bento_port,
            assembler: FrameAssembler::new(),
            queued: Vec::new(),
            connected: false,
            pending_hello: None,
            channel: None,
            alive: true,
        });
        Some(BoxConn(id))
    }

    fn send_msg(&mut self, ctx: &mut Ctx<'_>, tor: &mut TorClient, conn: BoxConn, msg: &BentoMsg) {
        let Some(s) = self.sessions.get_mut(conn.0) else {
            return;
        };
        let frame = encode_frame(&msg.encode());
        if s.connected {
            let (circ, stream) = (s.circ, s.stream.expect("connected session has stream"));
            tor.send_stream(ctx, circ, stream, &frame);
        } else {
            s.queued.push(frame);
        }
    }

    /// Request the box's middlebox node policy.
    pub fn get_policy(&mut self, ctx: &mut Ctx<'_>, tor: &mut TorClient, conn: BoxConn) {
        self.send_msg(ctx, tor, conn, &BentoMsg::GetPolicy);
    }

    /// Request a container. For [`ImageKind::Sgx`] the attested-channel
    /// handshake is performed automatically.
    pub fn request_container(
        &mut self,
        ctx: &mut Ctx<'_>,
        tor: &mut TorClient,
        conn: BoxConn,
        image: ImageKind,
    ) {
        let client_hello = match image {
            ImageKind::Plain => None,
            ImageKind::Sgx => {
                let (state, hello) = AttestedChannel::client_hello(ctx.rng());
                if let Some(s) = self.sessions.get_mut(conn.0) {
                    s.pending_hello = Some(state);
                }
                Some(hello)
            }
        };
        self.send_msg(
            ctx,
            tor,
            conn,
            &BentoMsg::RequestContainer {
                image,
                client_hello,
            },
        );
    }

    /// Upload a function spec; sealed under the attested channel when the
    /// container is a conclave.
    pub fn upload(
        &mut self,
        ctx: &mut Ctx<'_>,
        tor: &mut TorClient,
        conn: BoxConn,
        container: u64,
        spec: &FunctionSpec,
    ) {
        let plain = spec.encode();
        let (payload, sealed) = match self
            .sessions
            .get_mut(conn.0)
            .and_then(|s| s.channel.as_mut())
        {
            Some(ch) => (ch.seal_msg(&plain), true),
            None => (plain, false),
        };
        self.send_msg(
            ctx,
            tor,
            conn,
            &BentoMsg::UploadFunction {
                container_id: container,
                payload,
                sealed,
            },
        );
    }

    /// Invoke a function by its invocation token.
    pub fn invoke(
        &mut self,
        ctx: &mut Ctx<'_>,
        tor: &mut TorClient,
        conn: BoxConn,
        token: Token,
        input: Vec<u8>,
    ) {
        self.send_msg(
            ctx,
            tor,
            conn,
            &BentoMsg::Invoke {
                token: token.0,
                input,
            },
        );
    }

    /// Close a session: end the stream and tear down its circuit. The
    /// container (if any) keeps running — only the transport goes away;
    /// tokens remain valid for future sessions.
    pub fn close_box(&mut self, ctx: &mut Ctx<'_>, tor: &mut TorClient, conn: BoxConn) {
        let Some(s) = self.sessions.get_mut(conn.0) else {
            return;
        };
        if !s.alive {
            return;
        }
        s.alive = false;
        if let Some(stream) = s.stream.take() {
            tor.close_stream(ctx, s.circ, stream);
        }
        tor.destroy_circuit(ctx, s.circ);
    }

    /// Shut a container down by its shutdown token.
    pub fn shutdown(
        &mut self,
        ctx: &mut Ctx<'_>,
        tor: &mut TorClient,
        conn: BoxConn,
        token: Token,
    ) {
        self.send_msg(ctx, tor, conn, &BentoMsg::Shutdown { token: token.0 });
    }

    /// Feed a Tor event through the Bento client. Returns the event back if
    /// it did not belong to a Bento session.
    pub fn handle_tor_event(
        &mut self,
        ctx: &mut Ctx<'_>,
        tor: &mut TorClient,
        ev: TorEvent,
    ) -> Option<TorEvent> {
        match ev {
            TorEvent::CircuitReady(h) => {
                let found = self
                    .sessions
                    .iter_mut()
                    .enumerate()
                    .find(|(_, s)| s.circ == h && s.stream.is_none() && s.alive);
                if let Some((_idx, s)) = found {
                    let target = StreamTarget::Node(s.relay_addr, s.bento_port);
                    let circ = s.circ;
                    let stream = tor.open_stream(ctx, circ, target);
                    // Re-borrow to store.
                    if let Some(s) = self.sessions.iter_mut().find(|s| s.circ == h) {
                        s.stream = stream;
                    }
                    return None;
                }
                Some(TorEvent::CircuitReady(h))
            }
            TorEvent::StreamConnected(h, sid) => {
                let found = self
                    .sessions
                    .iter_mut()
                    .enumerate()
                    .find(|(_, s)| s.circ == h && s.stream == Some(sid));
                if let Some((idx, s)) = found {
                    s.connected = true;
                    let queued = std::mem::take(&mut s.queued);
                    let circ = s.circ;
                    for frame in queued {
                        tor.send_stream(ctx, circ, sid, &frame);
                    }
                    self.events.push_back(BentoEvent::Connected(BoxConn(idx)));
                    return None;
                }
                Some(TorEvent::StreamConnected(h, sid))
            }
            TorEvent::StreamData(h, sid, data) => {
                let found = self
                    .sessions
                    .iter_mut()
                    .enumerate()
                    .find(|(_, s)| s.circ == h && s.stream == Some(sid));
                if let Some((idx, s)) = found {
                    s.assembler.push(&data);
                    let frames = s.assembler.drain_frames();
                    for frame in frames {
                        if let Ok(msg) = BentoMsg::decode(&frame) {
                            self.handle_box_msg(BoxConn(idx), msg);
                        }
                    }
                    return None;
                }
                Some(TorEvent::StreamData(h, sid, data))
            }
            TorEvent::StreamEnded(h, sid) => {
                let found = self
                    .sessions
                    .iter_mut()
                    .enumerate()
                    .find(|(_, s)| s.circ == h && s.stream == Some(sid));
                if let Some((idx, s)) = found {
                    s.alive = false;
                    self.events.push_back(BentoEvent::Closed(BoxConn(idx)));
                    return None;
                }
                Some(TorEvent::StreamEnded(h, sid))
            }
            other => Some(other),
        }
    }

    fn handle_box_msg(&mut self, conn: BoxConn, msg: BentoMsg) {
        match msg {
            BentoMsg::Policy(bytes) => {
                if let Ok(p) = MiddleboxPolicy::decode(&bytes) {
                    self.events.push_back(BentoEvent::Policy(conn, p));
                }
            }
            BentoMsg::ContainerReady {
                container_id,
                invocation_token,
                shutdown_token,
                server_hello,
            } => {
                // Verify attestation when the container is a conclave.
                if let Some(hello) = server_hello {
                    let state = self
                        .sessions
                        .get_mut(conn.0)
                        .and_then(|s| s.pending_hello.take());
                    let Some(state) = state else {
                        self.events.push_back(BentoEvent::AttestationFailed(
                            conn,
                            "unexpected attestation reply".into(),
                        ));
                        return;
                    };
                    match AttestedChannel::client_finish(
                        &state,
                        &hello,
                        &self.ias_key,
                        &self.expected_measurement,
                    ) {
                        Ok(channel) => {
                            if let Some(s) = self.sessions.get_mut(conn.0) {
                                s.channel = Some(channel);
                            }
                        }
                        Err(e) => {
                            self.events
                                .push_back(BentoEvent::AttestationFailed(conn, e.to_string()));
                            return;
                        }
                    }
                }
                self.events.push_back(BentoEvent::ContainerReady {
                    conn,
                    container: container_id,
                    invocation: Token(invocation_token),
                    shutdown: Token(shutdown_token),
                });
            }
            BentoMsg::UploadOk { container_id } => {
                self.events
                    .push_back(BentoEvent::UploadOk(conn, container_id));
            }
            BentoMsg::Rejected { reason } => {
                self.events.push_back(BentoEvent::Rejected(conn, reason));
            }
            BentoMsg::Output { data } => {
                self.events.push_back(BentoEvent::Output(conn, data));
            }
            BentoMsg::OutputEnd => {
                self.events.push_back(BentoEvent::OutputEnd(conn));
            }
            BentoMsg::ShutdownAck => {
                self.events.push_back(BentoEvent::ShutdownAck(conn));
            }
            // Server-bound messages arriving at the client: ignore.
            _ => {}
        }
    }
}

/// A scriptable user node: onion proxy + Bento client + event logs. Used by
/// tests, examples and benches.
pub struct BentoClientNode {
    /// The onion proxy.
    pub tor: TorClient,
    /// The Bento client.
    pub bento: BentoClient,
    /// Un-consumed Tor events.
    pub tor_events: Vec<TorEvent>,
    /// Bento events, in order.
    pub bento_events: Vec<BentoEvent>,
}

impl BentoClientNode {
    /// Assemble a client node.
    pub fn new(tor: TorClient, bento: BentoClient) -> BentoClientNode {
        BentoClientNode {
            tor,
            bento,
            tor_events: Vec::new(),
            bento_events: Vec::new(),
        }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        for ev in self.tor.poll_events() {
            if let Some(ev) = self.bento.handle_tor_event(ctx, &mut self.tor, ev) {
                self.tor_events.push(ev);
            }
        }
        self.bento_events.extend(self.bento.poll_events());
    }

    /// All output bytes received on a session, concatenated in order.
    pub fn output_bytes(&self, conn: BoxConn) -> Vec<u8> {
        let mut out = Vec::new();
        for e in &self.bento_events {
            if let BentoEvent::Output(c, d) = e {
                if *c == conn {
                    out.extend_from_slice(d);
                }
            }
        }
        out
    }

    /// Whether an OutputEnd was seen for this session.
    pub fn output_done(&self, conn: BoxConn) -> bool {
        self.bento_events
            .iter()
            .any(|e| matches!(e, BentoEvent::OutputEnd(c) if *c == conn))
    }

    /// First ContainerReady event for this session.
    pub fn container_ready(&self, conn: BoxConn) -> Option<(u64, Token, Token)> {
        self.bento_events.iter().find_map(|e| match e {
            BentoEvent::ContainerReady {
                conn: c,
                container,
                invocation,
                shutdown,
            } if *c == conn => Some((*container, *invocation, *shutdown)),
            _ => None,
        })
    }

    /// Whether the upload completed for this session.
    pub fn upload_ok(&self, conn: BoxConn) -> bool {
        self.bento_events
            .iter()
            .any(|e| matches!(e, BentoEvent::UploadOk(c, _) if *c == conn))
    }

    /// First rejection reason for this session.
    pub fn rejection(&self, conn: BoxConn) -> Option<&str> {
        self.bento_events.iter().find_map(|e| match e {
            BentoEvent::Rejected(c, r) if *c == conn => Some(r.as_str()),
            _ => None,
        })
    }
}

impl Node for BentoClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.tor.bootstrap(ctx);
    }
    fn on_conn_established(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _peer: NodeId) {
        self.tor.handle_conn_established(ctx, conn);
        self.pump(ctx);
    }
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
        self.tor.handle_msg(ctx, conn, msg);
        self.pump(ctx);
    }
    fn on_conn_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        self.tor.handle_conn_closed(ctx, conn);
        self.pump(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        self.tor.handle_timer(ctx, tag);
        self.pump(ctx);
    }
}
