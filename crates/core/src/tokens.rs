//! Invocation and shutdown tokens (§5.3).
//!
//! When a Bento server spawns a container it returns two capabilities: an
//! *invocation token* (required on every message to the function — this is
//! also what stops an attacker injecting packets into someone else's
//! function, §6.1) and a *shutdown token* (required to terminate it). The
//! split lets a client share use of a function while retaining exclusive
//! shutdown rights.

use onion_crypto::hmac::ct_eq;
use rand::Rng;

/// A 32-byte bearer capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub [u8; 32]);

impl Token {
    /// Generate a fresh random token.
    pub fn random(rng: &mut impl Rng) -> Token {
        let mut t = [0u8; 32];
        rng.fill(&mut t);
        Token(t)
    }

    /// Constant-time comparison against presented bytes.
    pub fn matches(&self, presented: &[u8]) -> bool {
        ct_eq(&self.0, presented)
    }

    /// Parse from exactly 32 bytes.
    pub fn from_bytes(b: &[u8]) -> Option<Token> {
        if b.len() != 32 {
            return None;
        }
        let mut t = [0u8; 32];
        t.copy_from_slice(b);
        Some(Token(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn tokens_are_distinct_and_match_themselves() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Token::random(&mut rng);
        let b = Token::random(&mut rng);
        assert_ne!(a, b);
        assert!(a.matches(&a.0));
        assert!(!a.matches(&b.0));
    }

    #[test]
    fn wrong_length_never_matches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Token::random(&mut rng);
        assert!(!a.matches(&a.0[..31]));
        assert!(!a.matches(&[]));
    }

    #[test]
    fn parse_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Token::random(&mut rng);
        assert_eq!(Token::from_bytes(&a.0), Some(a));
        assert_eq!(Token::from_bytes(&a.0[..10]), None);
    }
}
