//! Middlebox node policies (§5.5): what an operator is willing to do on
//! behalf of others.
//!
//! "Bento's middlebox node policies are boolean values over the set of API
//! calls that Bento exposes to functions. Every system call and Stem
//! library function that can be exposed to functions is also specified in
//! the middlebox node policy." Plus resource ceilings and the container
//! images offered.

use crate::manifest::Manifest;
use crate::protocol::ImageKind;
use crate::stem::StemCall;
use sandbox::seccomp::SyscallClass;
use simnet::wire::{Reader, WireError, Writer};
use std::collections::BTreeSet;

/// A middlebox operator's policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiddleboxPolicy {
    /// System-call classes functions may request.
    pub syscalls: BTreeSet<SyscallClass>,
    /// Stem routines functions may request.
    pub stem: BTreeSet<StemCall>,
    /// Per-function memory ceiling (bytes).
    pub max_memory: u64,
    /// Per-function CPU ceiling (ms).
    pub max_cpu_ms: u64,
    /// Per-function disk ceiling (bytes).
    pub max_disk: u64,
    /// Maximum concurrently loaded functions.
    pub max_functions: u32,
    /// Whether the plain Python image is offered.
    pub offers_plain: bool,
    /// Whether the Python-OP-SGX (conclave) image is offered.
    pub offers_sgx: bool,
}

impl MiddleboxPolicy {
    /// A permissive default: everything except process spawning; both
    /// images; paper-scale resource ceilings.
    pub fn permissive() -> MiddleboxPolicy {
        let mut syscalls: BTreeSet<SyscallClass> = SyscallClass::ALL.iter().copied().collect();
        syscalls.remove(&SyscallClass::Fork);
        syscalls.remove(&SyscallClass::Exec);
        MiddleboxPolicy {
            syscalls,
            stem: StemCall::ALL.iter().copied().collect(),
            max_memory: 128 << 20,
            max_cpu_ms: 600_000,
            max_disk: 256 << 20,
            max_functions: 16,
            offers_plain: true,
            offers_sgx: true,
        }
    }

    /// A restrictive policy: no filesystem persistence, no hidden services
    /// (the paper's "operator can protect themselves by setting a policy
    /// that prevents functions from accessing the filesystem", §6.2).
    pub fn no_storage() -> MiddleboxPolicy {
        let mut p = MiddleboxPolicy::permissive();
        p.syscalls.remove(&SyscallClass::Write);
        p.syscalls.remove(&SyscallClass::Unlink);
        p.max_disk = 0;
        p
    }

    /// Does this policy permit everything `manifest` requests?
    /// Returns the first refusal reason, or `None` if acceptable.
    pub fn refuses(&self, manifest: &Manifest) -> Option<String> {
        for sc in &manifest.syscalls {
            if !self.syscalls.contains(sc) {
                return Some(format!("syscall {} not offered", sc.name()));
            }
        }
        for st in &manifest.stem {
            if !self.stem.contains(st) {
                return Some(format!("stem call {} not offered", st.name()));
            }
        }
        if manifest.memory > self.max_memory {
            return Some(format!(
                "memory {} exceeds offered {}",
                manifest.memory, self.max_memory
            ));
        }
        if manifest.disk > self.max_disk {
            return Some(format!(
                "disk {} exceeds offered {}",
                manifest.disk, self.max_disk
            ));
        }
        match manifest.image {
            ImageKind::Plain if !self.offers_plain => Some("plain image not offered".into()),
            ImageKind::Sgx if !self.offers_sgx => Some("SGX image not offered".into()),
            _ => None,
        }
    }

    /// Encode for dissemination (policy-query responses, consensus).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.varu64(self.syscalls.len() as u64);
        for sc in &self.syscalls {
            w.u8(sc.id());
        }
        w.varu64(self.stem.len() as u64);
        for st in &self.stem {
            w.u8(st.id());
        }
        w.u64(self.max_memory);
        w.u64(self.max_cpu_ms);
        w.u64(self.max_disk);
        w.u32(self.max_functions);
        w.bool(self.offers_plain);
        w.bool(self.offers_sgx);
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<MiddleboxPolicy, WireError> {
        let mut r = Reader::new(buf);
        let n = r.varu64()?.min(64);
        let mut syscalls = BTreeSet::new();
        for _ in 0..n {
            let id = r.u8()?;
            syscalls.insert(SyscallClass::from_id(id).ok_or(WireError::BadDiscriminant {
                what: "syscall class",
                value: id as u64,
            })?);
        }
        let m = r.varu64()?.min(64);
        let mut stem = BTreeSet::new();
        for _ in 0..m {
            let id = r.u8()?;
            stem.insert(StemCall::from_id(id).ok_or(WireError::BadDiscriminant {
                what: "stem call",
                value: id as u64,
            })?);
        }
        let max_memory = r.u64()?;
        let max_cpu_ms = r.u64()?;
        let max_disk = r.u64()?;
        let max_functions = r.u32()?;
        let offers_plain = r.bool()?;
        let offers_sgx = r.bool()?;
        r.finish()?;
        Ok(MiddleboxPolicy {
            syscalls,
            stem,
            max_memory,
            max_cpu_ms,
            max_disk,
            max_functions,
            offers_plain,
            offers_sgx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for p in [MiddleboxPolicy::permissive(), MiddleboxPolicy::no_storage()] {
            let back = MiddleboxPolicy::decode(&p.encode()).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn permissive_accepts_typical_manifest() {
        let p = MiddleboxPolicy::permissive();
        let m = Manifest::minimal("browser")
            .with_syscalls([SyscallClass::Connect, SyscallClass::Write])
            .with_stem([StemCall::OpenStream]);
        assert_eq!(p.refuses(&m), None);
    }

    #[test]
    fn fork_always_refused_by_default_policy() {
        let p = MiddleboxPolicy::permissive();
        let m = Manifest::minimal("evil").with_syscalls([SyscallClass::Fork]);
        assert!(p.refuses(&m).unwrap().contains("fork"));
    }

    #[test]
    fn no_storage_refuses_writes() {
        let p = MiddleboxPolicy::no_storage();
        let m = Manifest::minimal("dropbox").with_syscalls([SyscallClass::Write]);
        assert!(p.refuses(&m).is_some());
        let ok = Manifest::minimal("cover").with_stem([StemCall::SendDrop]);
        assert_eq!(p.refuses(&ok), None);
    }

    #[test]
    fn resource_ceilings_enforced() {
        let p = MiddleboxPolicy::permissive();
        let mut m = Manifest::minimal("hog");
        m.memory = p.max_memory + 1;
        assert!(p.refuses(&m).unwrap().contains("memory"));
        m.memory = 1;
        m.disk = p.max_disk + 1;
        assert!(p.refuses(&m).unwrap().contains("disk"));
    }

    #[test]
    fn image_offering_checked() {
        let mut p = MiddleboxPolicy::permissive();
        p.offers_sgx = false;
        let mut m = Manifest::minimal("private");
        m.image = ImageKind::Sgx;
        assert!(p.refuses(&m).unwrap().contains("SGX"));
        m.image = ImageKind::Plain;
        assert_eq!(p.refuses(&m), None);
    }

    #[test]
    fn decode_rejects_bad_ids() {
        let mut bytes = MiddleboxPolicy::permissive().encode();
        bytes[1] = 200; // first syscall id -> invalid
        assert!(MiddleboxPolicy::decode(&bytes).is_err());
    }
}
