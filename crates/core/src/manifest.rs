//! Function manifests (§5.5): what a function asks permission for.
//!
//! "Upon receiving the manifest, Bento compares it to its own middlebox
//! node policy; if the manifest asks for more permissions than the node's
//! policy permits, then the function is rejected. Otherwise, the Bento
//! server sets up the execution environment, and constrains the sandbox or
//! conclave to permit only the specific API calls that the manifest file
//! requested (even if the middlebox policy allowed for more)."

use crate::protocol::ImageKind;
use crate::stem::StemCall;
use sandbox::seccomp::{SeccompFilter, SyscallClass};
use simnet::wire::{Reader, WireError, Writer};
use std::collections::BTreeSet;

/// A function's permission request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Function name (registry key).
    pub name: String,
    /// System-call classes the function needs.
    pub syscalls: BTreeSet<SyscallClass>,
    /// Stem routines the function needs.
    pub stem: BTreeSet<StemCall>,
    /// Memory it may use (bytes).
    pub memory: u64,
    /// Disk it may use (bytes).
    pub disk: u64,
    /// Which container image it targets.
    pub image: ImageKind,
}

impl Manifest {
    /// A minimal manifest: clock and randomness only, tiny footprint,
    /// plain image.
    pub fn minimal(name: &str) -> Manifest {
        Manifest {
            name: name.to_string(),
            syscalls: [SyscallClass::GetTime, SyscallClass::GetRandom]
                .into_iter()
                .collect(),
            stem: BTreeSet::new(),
            memory: 16 << 20,
            disk: 0,
            image: ImageKind::Plain,
        }
    }

    /// Add syscall requests.
    pub fn with_syscalls(mut self, extra: impl IntoIterator<Item = SyscallClass>) -> Manifest {
        self.syscalls.extend(extra);
        self
    }

    /// Add Stem requests.
    pub fn with_stem(mut self, extra: impl IntoIterator<Item = StemCall>) -> Manifest {
        self.stem.extend(extra);
        self
    }

    /// Request the SGX (conclave) image.
    pub fn with_sgx(mut self) -> Manifest {
        self.image = ImageKind::Sgx;
        self
    }

    /// Request disk space.
    pub fn with_disk(mut self, bytes: u64) -> Manifest {
        self.disk = bytes;
        if bytes > 0 {
            self.syscalls.insert(SyscallClass::Open);
            self.syscalls.insert(SyscallClass::Read);
            self.syscalls.insert(SyscallClass::Write);
            self.syscalls.insert(SyscallClass::Unlink);
        }
        self
    }

    /// The seccomp filter the server installs: deny-by-default, allowing
    /// exactly what the manifest requested.
    pub fn to_seccomp(&self) -> SeccompFilter {
        let mut f = SeccompFilter::deny_all();
        for sc in &self.syscalls {
            f = f.allow(*sc);
        }
        f
    }

    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.name);
        w.varu64(self.syscalls.len() as u64);
        for sc in &self.syscalls {
            w.u8(sc.id());
        }
        w.varu64(self.stem.len() as u64);
        for st in &self.stem {
            w.u8(st.id());
        }
        w.u64(self.memory);
        w.u64(self.disk);
        w.u8(self.image.id());
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<Manifest, WireError> {
        let mut r = Reader::new(buf);
        let m = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(m)
    }

    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Manifest, WireError> {
        let name = r.str("manifest name")?;
        let n = r.varu64()?.min(64);
        let mut syscalls = BTreeSet::new();
        for _ in 0..n {
            let id = r.u8()?;
            syscalls.insert(SyscallClass::from_id(id).ok_or(WireError::BadDiscriminant {
                what: "syscall class",
                value: id as u64,
            })?);
        }
        let k = r.varu64()?.min(64);
        let mut stem = BTreeSet::new();
        for _ in 0..k {
            let id = r.u8()?;
            stem.insert(StemCall::from_id(id).ok_or(WireError::BadDiscriminant {
                what: "stem call",
                value: id as u64,
            })?);
        }
        let memory = r.u64()?;
        let disk = r.u64()?;
        let image = ImageKind::from_id(r.u8()?).ok_or(WireError::BadDiscriminant {
            what: "image kind",
            value: 255,
        })?;
        Ok(Manifest {
            name,
            syscalls,
            stem,
            memory,
            disk,
            image,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = Manifest::minimal("browser")
            .with_syscalls([SyscallClass::Connect])
            .with_stem([StemCall::NewCircuit, StemCall::OpenStream])
            .with_disk(1 << 20)
            .with_sgx();
        let back = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn seccomp_is_least_privilege() {
        // Even if the node policy allows more, the installed filter only
        // has what the manifest asked for.
        let m = Manifest::minimal("cover");
        let f = m.to_seccomp();
        assert!(f.permits(SyscallClass::GetTime));
        assert!(f.permits(SyscallClass::GetRandom));
        assert!(!f.permits(SyscallClass::Connect));
        assert!(!f.permits(SyscallClass::Write));
        assert!(!f.permits(SyscallClass::Fork));
    }

    #[test]
    fn with_disk_implies_file_syscalls() {
        let m = Manifest::minimal("dropbox").with_disk(1024);
        assert!(m.syscalls.contains(&SyscallClass::Write));
        assert!(m.syscalls.contains(&SyscallClass::Read));
        assert!(m.syscalls.contains(&SyscallClass::Unlink));
        assert_eq!(m.disk, 1024);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Manifest::decode(&[]).is_err());
        let mut ok = Manifest::minimal("x").encode();
        ok.push(7);
        assert!(Manifest::decode(&ok).is_err(), "trailing bytes rejected");
    }
}
