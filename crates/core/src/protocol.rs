//! The Bento wire protocol: frames exchanged between a Bento client and a
//! Bento server over a Tor stream to the box's "localhost" port.

use crate::manifest::Manifest;
use simnet::wire::{Reader, WireError, Writer};

/// Which standard container image a function targets (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageKind {
    /// The Python container: plain sandbox, no enclave. For functions that
    /// process no sensitive data.
    Plain,
    /// The Python-OP-SGX container: the function (and an optional dedicated
    /// onion proxy) execute inside a conclave with FS Protect.
    Sgx,
}

impl ImageKind {
    /// Stable wire id.
    pub fn id(self) -> u8 {
        match self {
            ImageKind::Plain => 0,
            ImageKind::Sgx => 1,
        }
    }

    /// Parse a wire id.
    pub fn from_id(id: u8) -> Option<ImageKind> {
        match id {
            0 => Some(ImageKind::Plain),
            1 => Some(ImageKind::Sgx),
            _ => None,
        }
    }
}

/// What a client ships when uploading: parameters plus the manifest. (In
/// the paper this is Python source plus a manifest; the registry name in
/// the manifest stands in for the source — see DESIGN.md.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSpec {
    /// Opaque constructor parameters for the function.
    pub params: Vec<u8>,
    /// The permission manifest (also names the function).
    pub manifest: Manifest,
}

impl FunctionSpec {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.params);
        w.bytes(&self.manifest.encode());
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<FunctionSpec, WireError> {
        let mut r = Reader::new(buf);
        let params = r.bytes_vec("params")?;
        let manifest = Manifest::decode(r.bytes("manifest")?)?;
        r.finish()?;
        Ok(FunctionSpec { params, manifest })
    }
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BentoMsg {
    /// Client: request the middlebox node policy.
    GetPolicy,
    /// Server: the encoded [`crate::policy::MiddleboxPolicy`].
    Policy(Vec<u8>),
    /// Client: spawn a container. For the SGX image, `client_hello` opens
    /// the attested channel.
    RequestContainer {
        /// Image to spawn.
        image: ImageKind,
        /// Attested-channel hello (SGX image only).
        client_hello: Option<Vec<u8>>,
    },
    /// Server: container spawned; capabilities follow.
    ContainerReady {
        /// Container id (names the container in uploads).
        container_id: u64,
        /// Required on every invocation.
        invocation_token: [u8; 32],
        /// Required to terminate.
        shutdown_token: [u8; 32],
        /// Attested-channel reply with stapled IAS report (SGX image only).
        server_hello: Option<Vec<u8>>,
    },
    /// Client: upload the function spec. `sealed` means the payload is
    /// encrypted under the attested channel (SGX image).
    UploadFunction {
        /// Target container.
        container_id: u64,
        /// [`FunctionSpec`] bytes, possibly channel-sealed.
        payload: Vec<u8>,
        /// Whether `payload` is channel-sealed.
        sealed: bool,
    },
    /// Server: upload accepted; the function is installed.
    UploadOk {
        /// The container now running the function.
        container_id: u64,
    },
    /// Server: upload (or other request) refused.
    Rejected {
        /// Human-readable reason (policy mismatch, bad token, ...).
        reason: String,
    },
    /// Client: invoke the function with `input`.
    Invoke {
        /// Invocation token.
        token: [u8; 32],
        /// Input delivered to the function.
        input: Vec<u8>,
    },
    /// Server: output bytes from the function (may repeat).
    Output {
        /// Output data.
        data: Vec<u8>,
    },
    /// Server: the function signaled completion of this invocation.
    OutputEnd,
    /// Client: terminate the container.
    Shutdown {
        /// Shutdown token.
        token: [u8; 32],
    },
    /// Server: container terminated.
    ShutdownAck,
}

impl BentoMsg {
    /// Encode to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            BentoMsg::GetPolicy => {
                w.u8(1);
            }
            BentoMsg::Policy(p) => {
                w.u8(2);
                w.bytes(p);
            }
            BentoMsg::RequestContainer {
                image,
                client_hello,
            } => {
                w.u8(3);
                w.u8(image.id());
                match client_hello {
                    Some(h) => {
                        w.u8(1);
                        w.bytes(h);
                    }
                    None => {
                        w.u8(0);
                    }
                }
            }
            BentoMsg::ContainerReady {
                container_id,
                invocation_token,
                shutdown_token,
                server_hello,
            } => {
                w.u8(4);
                w.u64(*container_id);
                w.raw(invocation_token);
                w.raw(shutdown_token);
                match server_hello {
                    Some(h) => {
                        w.u8(1);
                        w.bytes(h);
                    }
                    None => {
                        w.u8(0);
                    }
                }
            }
            BentoMsg::UploadFunction {
                container_id,
                payload,
                sealed,
            } => {
                w.u8(5);
                w.u64(*container_id);
                w.bool(*sealed);
                w.bytes(payload);
            }
            BentoMsg::UploadOk { container_id } => {
                w.u8(6);
                w.u64(*container_id);
            }
            BentoMsg::Rejected { reason } => {
                w.u8(7);
                w.str(reason);
            }
            BentoMsg::Invoke { token, input } => {
                w.u8(8);
                w.raw(token);
                w.bytes(input);
            }
            BentoMsg::Output { data } => {
                w.u8(9);
                w.bytes(data);
            }
            BentoMsg::OutputEnd => {
                w.u8(10);
            }
            BentoMsg::Shutdown { token } => {
                w.u8(11);
                w.raw(token);
            }
            BentoMsg::ShutdownAck => {
                w.u8(12);
            }
        }
        w.into_bytes()
    }

    /// Decode a frame body.
    pub fn decode(buf: &[u8]) -> Result<BentoMsg, WireError> {
        let mut r = Reader::new(buf);
        let tag = r.u8()?;
        let msg = match tag {
            1 => BentoMsg::GetPolicy,
            2 => BentoMsg::Policy(r.bytes_vec("policy")?),
            3 => {
                let image = ImageKind::from_id(r.u8()?).ok_or(WireError::BadDiscriminant {
                    what: "image kind",
                    value: 255,
                })?;
                let client_hello = match r.u8()? {
                    0 => None,
                    1 => Some(r.bytes_vec("client hello")?),
                    v => {
                        return Err(WireError::BadDiscriminant {
                            what: "hello flag",
                            value: v as u64,
                        })
                    }
                };
                BentoMsg::RequestContainer {
                    image,
                    client_hello,
                }
            }
            4 => {
                let container_id = r.u64()?;
                let invocation_token = r.array("invocation token")?;
                let shutdown_token = r.array("shutdown token")?;
                let server_hello = match r.u8()? {
                    0 => None,
                    1 => Some(r.bytes_vec("server hello")?),
                    v => {
                        return Err(WireError::BadDiscriminant {
                            what: "hello flag",
                            value: v as u64,
                        })
                    }
                };
                BentoMsg::ContainerReady {
                    container_id,
                    invocation_token,
                    shutdown_token,
                    server_hello,
                }
            }
            5 => BentoMsg::UploadFunction {
                container_id: r.u64()?,
                sealed: r.bool()?,
                payload: r.bytes_vec("payload")?,
            },
            6 => BentoMsg::UploadOk {
                container_id: r.u64()?,
            },
            7 => BentoMsg::Rejected {
                reason: r.str("reason")?,
            },
            8 => BentoMsg::Invoke {
                token: r.array("token")?,
                input: r.bytes_vec("input")?,
            },
            9 => BentoMsg::Output {
                data: r.bytes_vec("output")?,
            },
            10 => BentoMsg::OutputEnd,
            11 => BentoMsg::Shutdown {
                token: r.array("token")?,
            },
            12 => BentoMsg::ShutdownAck,
            v => {
                return Err(WireError::BadDiscriminant {
                    what: "bento message",
                    value: v as u64,
                })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_messages_roundtrip() {
        let msgs = vec![
            BentoMsg::GetPolicy,
            BentoMsg::Policy(vec![1, 2, 3]),
            BentoMsg::RequestContainer {
                image: ImageKind::Plain,
                client_hello: None,
            },
            BentoMsg::RequestContainer {
                image: ImageKind::Sgx,
                client_hello: Some(vec![9; 64]),
            },
            BentoMsg::ContainerReady {
                container_id: 7,
                invocation_token: [1; 32],
                shutdown_token: [2; 32],
                server_hello: Some(vec![3; 100]),
            },
            BentoMsg::UploadFunction {
                container_id: 7,
                payload: vec![4; 50],
                sealed: true,
            },
            BentoMsg::UploadOk { container_id: 7 },
            BentoMsg::Rejected {
                reason: "policy".into(),
            },
            BentoMsg::Invoke {
                token: [5; 32],
                input: b"https://example.com".to_vec(),
            },
            BentoMsg::Output {
                data: vec![6; 1000],
            },
            BentoMsg::OutputEnd,
            BentoMsg::Shutdown { token: [7; 32] },
            BentoMsg::ShutdownAck,
        ];
        for m in msgs {
            let back = BentoMsg::decode(&m.encode()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BentoMsg::decode(&[]).is_err());
        assert!(BentoMsg::decode(&[99]).is_err());
        let mut ok = BentoMsg::OutputEnd.encode();
        ok.push(1);
        assert!(BentoMsg::decode(&ok).is_err());
        // Truncated token.
        let mut inv = BentoMsg::Invoke {
            token: [0; 32],
            input: vec![],
        }
        .encode();
        inv.truncate(20);
        assert!(BentoMsg::decode(&inv).is_err());
    }

    #[test]
    fn function_spec_roundtrip() {
        let spec = FunctionSpec {
            params: b"url=https://x|pad=1048576".to_vec(),
            manifest: Manifest::minimal("browser"),
        };
        let back = FunctionSpec::decode(&spec.encode()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn image_ids_roundtrip() {
        for i in [ImageKind::Plain, ImageKind::Sgx] {
            assert_eq!(ImageKind::from_id(i.id()), Some(i));
        }
        assert_eq!(ImageKind::from_id(7), None);
    }
}
