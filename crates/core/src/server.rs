//! The Bento server (§5.2–§5.5): container management, token issuance,
//! manifest negotiation, the attested upload path, and function execution.
//!
//! The server is a *component* driven by its host node
//! ([`crate::node::BentoBoxNode`]): the host feeds it local-stream events
//! from the co-resident relay (the Bento protocol), connection events for
//! the functions' direct network I/O, and Tor events for the functions'
//! Stem-mediated circuits.

use crate::function::{ContainerRuntime, FnAction, Function, FunctionApi, FunctionRegistry};
use crate::manifest::Manifest;
use crate::policy::MiddleboxPolicy;
use crate::protocol::{BentoMsg, FunctionSpec, ImageKind};
use crate::stem::{StemCall, StemFirewall};
use crate::tokens::Token;
use conclave::attest::{Ias, Platform};
use conclave::channel::AttestedChannel;
use conclave::enclave::Enclave;
use conclave::epc::Epc;
use conclave::fsprotect::FsProtect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sandbox::cgroup::{CGroup, ResourceLimits};
use sandbox::container::Container;
use sandbox::netrules::{NetRule, NetRules};
use simnet::{ConnId, Ctx};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use tor_net::client::{CircuitHandle, TerminalReq, TorClient, TorEvent};
use tor_net::dir::ExitPolicy;
use tor_net::hs::{HiddenServiceHost, HsEvent};
use tor_net::relay::{LocalStream, RelayCore};
use tor_net::stream_frame::{encode_frame, FrameAssembler};
use tor_net::StreamTarget;

// Control-plane telemetry: container/function lifecycle and policy
// decisions. All cold paths, recorded inline at the decision point (the
// rejected/granted counters hook the single `reply` choke point).
static T_REJECTED: telemetry::Counter = telemetry::Counter::new("bento.requests_rejected");
static T_CONTAINERS: telemetry::Counter = telemetry::Counter::new("bento.containers_granted");
static T_UPLOADS: telemetry::Counter = telemetry::Counter::new("bento.functions_uploaded");
static T_INVOKES: telemetry::Counter = telemetry::Counter::new("bento.invocations");
static T_TEARDOWNS: telemetry::Counter = telemetry::Counter::new("bento.containers_torn_down");
static T_INVOKE_BYTES: telemetry::Histo = telemetry::Histo::new("bento.invoke_input_bytes");
static T_RECOVERED: telemetry::Counter = telemetry::Counter::new("bento.functions_recovered");

/// Timer-tag namespace for function timers.
pub const FN_TAG_BASE: u64 = 0x0300_0000_0000_0000;
/// Bits of a function timer tag reserved for the function's own tag value.
const FN_TAG_BITS: u64 = 20;

/// Estimated resident footprint of the Bento runtime inside a function
/// container, bytes (paper §7.3: "maximum memory usage of a Bento server
/// and Browser is roughly 16–20 MB").
pub const FN_BASE_MEMORY: u64 = 16 << 20;
/// Additional conclave overhead (paper §7.3: "the estimated 7.3 MB
/// required for conclaves").
pub const CONCLAVE_OVERHEAD: u64 = 7_654_604; // ≈ 7.3 MiB

/// Externals the server acts through, lent by the host for each call.
pub struct Deps<'a, 'b> {
    /// Simulator context of the host node.
    pub ctx: &'a mut Ctx<'b>,
    /// The co-resident relay (local streams back to clients).
    pub relay: &'a mut RelayCore,
    /// The box's onion proxy for functions.
    pub tor: &'a mut TorClient,
}

struct ContainerEntry {
    image: ImageKind,
    invocation_token: Token,
    shutdown_token: Token,
    channel: Option<AttestedChannel>,
    enclave_id: Option<u64>,
    /// Execution environment; present after a successful upload.
    runtime: Option<ContainerRuntime>,
    function: Option<Box<dyn Function>>,
    manifest: Option<Manifest>,
    /// The client stream whose Invoke is currently being served.
    invoker: Option<LocalStream>,
    /// function-local conn handle <-> simnet conn.
    conns: BTreeMap<u64, ConnId>,
    /// function-local circ handle <-> tor circuit.
    circs: BTreeMap<u64, CircuitHandle>,
    circs_rev: BTreeMap<usize, u64>,
    /// (fn circ, fn stream) <-> tor stream id.
    streams: BTreeMap<(u64, u64), u16>,
    streams_rev: BTreeMap<(usize, u16), u64>,
    /// function-local hs handle -> index into server hs table.
    hss: BTreeMap<u64, u64>,
    alive: bool,
}

struct HsEntry {
    container: u64,
    fn_handle: u64,
    host: HiddenServiceHost,
}

/// The crash-surviving record of one uploaded function: enough to rebuild
/// the container after a host restart with the *same* client-held tokens,
/// so clients reattach without renegotiating. Stored sealed to
/// (platform, enclave measurement).
struct StoredFunction {
    image: ImageKind,
    invocation_token: Token,
    shutdown_token: Token,
    /// The plain (already-opened) `FunctionSpec` bytes.
    spec: Vec<u8>,
}

impl StoredFunction {
    fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(65 + self.spec.len());
        v.push(match self.image {
            ImageKind::Plain => 0u8,
            ImageKind::Sgx => 1u8,
        });
        v.extend_from_slice(&self.invocation_token.0);
        v.extend_from_slice(&self.shutdown_token.0);
        v.extend_from_slice(&self.spec);
        v
    }

    fn decode(b: &[u8]) -> Option<StoredFunction> {
        if b.len() < 65 {
            return None;
        }
        let image = match b[0] {
            0 => ImageKind::Plain,
            1 => ImageKind::Sgx,
            _ => return None,
        };
        Some(StoredFunction {
            image,
            invocation_token: Token::from_bytes(&b[1..33])?,
            shutdown_token: Token::from_bytes(&b[33..65])?,
            spec: b[65..].to_vec(),
        })
    }
}

struct StreamState {
    assembler: FrameAssembler,
}

/// The Bento server component.
pub struct BentoServer {
    policy: MiddleboxPolicy,
    registry: FunctionRegistry,
    /// Aggregate cgroup capping all functions together (§6.2).
    aggregate: CGroup,
    epc: Epc,
    ias: Arc<Mutex<Ias>>,
    platform: Platform,
    enclave_image: Vec<u8>,
    /// The relay's exit policy, compiled into per-container net rules.
    exit_policy: ExitPolicy,
    containers: BTreeMap<u64, ContainerEntry>,
    next_container: u64,
    streams: BTreeMap<u64, StreamState>,
    firewall: StemFirewall,
    net_conns: BTreeMap<ConnId, (u64, u64)>,
    hss: BTreeMap<u64, HsEntry>,
    next_hs: u64,
    rng: StdRng,
    /// Per-function cumulative network budget (operator-side, not part of
    /// the advertised policy wire format).
    function_network_budget: u64,
    /// The box's "disk": sealed [`StoredFunction`] records keyed by
    /// container id. Survives [`BentoServer::crash`]; `BTreeMap` so replay
    /// order is deterministic.
    sealed_store: std::collections::BTreeMap<u64, Vec<u8>>,
    /// Set by [`BentoServer::crash`] when there are records to replay;
    /// recovery waits for the onion proxy's next `ConsensusReady` so
    /// reinstalled functions can immediately build circuits.
    pending_recovery: bool,
}

/// One container's operator-visible storage: (blob/file name hash, bytes).
pub type ContainerStorageView = Vec<([u8; 32], Vec<u8>)>;

impl BentoServer {
    /// Create a server.
    pub fn new(
        policy: MiddleboxPolicy,
        registry: FunctionRegistry,
        exit_policy: ExitPolicy,
        enclave_image: Vec<u8>,
        ias: Arc<Mutex<Ias>>,
        platform: Platform,
        seed: u64,
    ) -> BentoServer {
        BentoServer {
            policy,
            registry,
            aggregate: CGroup::new(ResourceLimits::default_aggregate()),
            epc: Epc::default(),
            ias,
            platform,
            enclave_image,
            exit_policy,
            containers: BTreeMap::new(),
            next_container: 1,
            streams: BTreeMap::new(),
            firewall: StemFirewall::new(),
            net_conns: BTreeMap::new(),
            hss: BTreeMap::new(),
            next_hs: 1,
            rng: StdRng::seed_from_u64(seed),
            function_network_budget: ResourceLimits::default_function().network,
            sealed_store: std::collections::BTreeMap::new(),
            pending_recovery: false,
        }
    }

    /// Override the per-function cumulative network budget (bytes). An
    /// operator-side runtime knob; §6.2's cap on functions "leveraging the
    /// middleboxes' resources as a tool for undertaking DDoS attacks".
    pub fn set_function_network_budget(&mut self, bytes: u64) {
        self.function_network_budget = bytes;
    }

    /// The node policy (e.g. for the policy-query function).
    pub fn policy(&self) -> &MiddleboxPolicy {
        &self.policy
    }

    /// Number of loaded (alive) functions.
    pub fn live_functions(&self) -> usize {
        self.containers.values().filter(|c| c.alive).count()
    }

    /// Aggregate resource usage across all functions.
    pub fn aggregate_usage(&self) -> sandbox::cgroup::ResourceUsage {
        self.aggregate.usage()
    }

    /// EPC paging statistics (scalability experiments).
    pub fn epc_stats(&self) -> conclave::epc::PagingStats {
        self.epc.stats()
    }

    /// The EPC (scalability experiments).
    pub fn epc(&self) -> &Epc {
        &self.epc
    }

    /// Stem firewall violations (operator inspection).
    pub fn stem_violations(&self) -> usize {
        self.firewall.violations().len()
    }

    /// What the operator can see of each container's storage: FS Protect
    /// ciphertext for conclave containers, raw files for plain ones
    /// (§6.2's plausible-deniability inspection surface). Each entry pairs
    /// the container id with its [`ContainerStorageView`].
    pub fn operator_storage_view(&self) -> Vec<(u64, ContainerStorageView)> {
        self.containers
            .iter()
            .filter_map(|(id, c)| {
                let rt = c.runtime.as_ref()?;
                let blobs = match &rt.fsp {
                    Some(fsp) => fsp
                        .operator_view()
                        .into_iter()
                        .map(|(k, v)| (k, v.to_vec()))
                        .collect(),
                    None => rt
                        .container
                        .fs()
                        .list()
                        .iter()
                        .map(|p| {
                            (
                                onion_crypto::sha256::sha256(p.as_bytes()),
                                // bento-lint: allow(BL005) -- `p` came from fs().list() on the same immutable borrow
                                rt.container.fs().read(p).expect("listed file").to_vec(),
                            )
                        })
                        .collect(),
                };
                Some((*id, blobs))
            })
            .collect()
    }

    /// Memory footprint of one function container of `manifest_memory`
    /// bytes in the given image, as charged against the EPC.
    pub fn enclave_footprint(manifest_memory: u64) -> u64 {
        FN_BASE_MEMORY.max(manifest_memory) + CONCLAVE_OVERHEAD
    }

    // ------------------------------------------------------------------
    // Local-stream (Bento protocol) events.
    // ------------------------------------------------------------------

    /// A client stream reached the Bento port.
    pub fn on_local_stream_opened(&mut self, stream: LocalStream) {
        self.streams.insert(
            stream.0,
            StreamState {
                assembler: FrameAssembler::new(),
            },
        );
    }

    /// Bytes arrived on a client stream.
    pub fn on_local_stream_data(
        &mut self,
        deps: &mut Deps<'_, '_>,
        stream: LocalStream,
        data: Vec<u8>,
    ) {
        let frames = match self.streams.get_mut(&stream.0) {
            Some(st) => {
                st.assembler.push(&data);
                st.assembler.drain_frames()
            }
            None => return,
        };
        for frame in frames {
            match BentoMsg::decode(&frame) {
                Ok(msg) => self.handle_msg(deps, stream, msg),
                Err(_) => self.reply(
                    deps,
                    stream,
                    &BentoMsg::Rejected {
                        reason: "malformed frame".into(),
                    },
                ),
            }
        }
    }

    /// A client stream closed.
    pub fn on_local_stream_closed(&mut self, stream: LocalStream) {
        self.streams.remove(&stream.0);
        // Clear invoker pointers that referenced this stream.
        for c in self.containers.values_mut() {
            if c.invoker == Some(stream) {
                c.invoker = None;
            }
        }
    }

    fn reply(&mut self, deps: &mut Deps<'_, '_>, stream: LocalStream, msg: &BentoMsg) {
        match msg {
            BentoMsg::Rejected { .. } => T_REJECTED.inc(),
            BentoMsg::ContainerReady { .. } => T_CONTAINERS.inc(),
            BentoMsg::UploadOk { .. } => T_UPLOADS.inc(),
            _ => {}
        }
        deps.relay
            .local_send(deps.ctx, stream, &encode_frame(&msg.encode()));
    }

    fn handle_msg(&mut self, deps: &mut Deps<'_, '_>, stream: LocalStream, msg: BentoMsg) {
        match msg {
            BentoMsg::GetPolicy => {
                let p = BentoMsg::Policy(self.policy.encode());
                self.reply(deps, stream, &p);
            }
            BentoMsg::RequestContainer {
                image,
                client_hello,
            } => self.handle_request_container(deps, stream, image, client_hello),
            BentoMsg::UploadFunction {
                container_id,
                payload,
                sealed,
            } => self.handle_upload(deps, stream, container_id, payload, sealed),
            BentoMsg::Invoke { token, input } => self.handle_invoke(deps, stream, token, input),
            BentoMsg::Shutdown { token } => self.handle_shutdown(deps, stream, token),
            // Client-bound messages arriving at the server are protocol
            // violations; refuse quietly.
            _ => self.reply(
                deps,
                stream,
                &BentoMsg::Rejected {
                    reason: "unexpected message".into(),
                },
            ),
        }
    }

    fn handle_request_container(
        &mut self,
        deps: &mut Deps<'_, '_>,
        stream: LocalStream,
        image: ImageKind,
        client_hello: Option<Vec<u8>>,
    ) {
        if self.live_functions() >= self.policy.max_functions as usize {
            self.reply(
                deps,
                stream,
                &BentoMsg::Rejected {
                    reason: "function limit reached".into(),
                },
            );
            return;
        }
        let offered = match image {
            ImageKind::Plain => self.policy.offers_plain,
            ImageKind::Sgx => self.policy.offers_sgx,
        };
        if !offered {
            self.reply(
                deps,
                stream,
                &BentoMsg::Rejected {
                    reason: "image not offered".into(),
                },
            );
            return;
        }
        let id = self.next_container;
        self.next_container += 1;
        let invocation_token = Token::random(&mut self.rng);
        let shutdown_token = Token::random(&mut self.rng);
        let (channel, enclave_id, server_hello) = match image {
            ImageKind::Plain => (None, None, None),
            ImageKind::Sgx => {
                let Some(hello) = client_hello else {
                    self.reply(
                        deps,
                        stream,
                        &BentoMsg::Rejected {
                            reason: "SGX image requires attestation hello".into(),
                        },
                    );
                    return;
                };
                // The conclave's footprint is the runtime base plus the
                // conclave overhead (§7.3), not the policy's memory ceiling.
                let footprint = Self::enclave_footprint(0);
                let enclave = Enclave::create(
                    id,
                    &self.enclave_image,
                    footprint,
                    self.platform.tcb_version,
                );
                if !self.epc.register(id, footprint) {
                    self.reply(
                        deps,
                        stream,
                        &BentoMsg::Rejected {
                            reason: "enclave exceeds EPC".into(),
                        },
                    );
                    return;
                }
                self.epc.touch(id);
                // Lock poisoning can't happen in practice (the simulator never
                // panics while holding the lock), but this is a recovery path:
                // degrade to a rejection rather than unwrap.
                let Ok(mut ias) = self.ias.lock() else {
                    self.epc.unregister(id);
                    self.reply(
                        deps,
                        stream,
                        &BentoMsg::Rejected {
                            reason: "attestation service unavailable".into(),
                        },
                    );
                    return;
                };
                match AttestedChannel::server_respond(
                    &mut self.rng,
                    &enclave,
                    &self.platform,
                    &mut ias,
                    &hello,
                ) {
                    Ok((reply, channel)) => (Some(channel), Some(id), Some(reply)),
                    Err(e) => {
                        drop(ias);
                        self.epc.unregister(id);
                        self.reply(
                            deps,
                            stream,
                            &BentoMsg::Rejected {
                                reason: format!("attestation failed: {e}"),
                            },
                        );
                        return;
                    }
                }
            }
        };
        self.containers.insert(
            id,
            ContainerEntry {
                image,
                invocation_token,
                shutdown_token,
                channel,
                enclave_id,
                runtime: None,
                function: None,
                manifest: None,
                invoker: None,
                conns: BTreeMap::new(),
                circs: BTreeMap::new(),
                circs_rev: BTreeMap::new(),
                streams: BTreeMap::new(),
                streams_rev: BTreeMap::new(),
                hss: BTreeMap::new(),
                alive: true,
            },
        );
        let ready = BentoMsg::ContainerReady {
            container_id: id,
            invocation_token: invocation_token.0,
            shutdown_token: shutdown_token.0,
            server_hello,
        };
        self.reply(deps, stream, &ready);
    }

    /// Compile the relay's exit policy into container net rules (§5.3's
    /// iptables translation). The container may additionally reach the
    /// Bento box's own Tor instance only through the Stem firewall, never
    /// directly.
    fn compile_net_rules(&self) -> NetRules {
        let mut rules = NetRules::deny_all();
        for r in &self.exit_policy.rules {
            rules.push(NetRule {
                accept: r.accept,
                host: r.host.map(|h| h.0),
                ports: r.ports,
            });
        }
        rules
    }

    fn handle_upload(
        &mut self,
        deps: &mut Deps<'_, '_>,
        stream: LocalStream,
        container_id: u64,
        payload: Vec<u8>,
        sealed: bool,
    ) {
        let reject = |server: &mut Self, deps: &mut Deps<'_, '_>, reason: String| {
            server.reply(deps, stream, &BentoMsg::Rejected { reason });
        };
        let Some(entry) = self.containers.get_mut(&container_id) else {
            reject(self, deps, "no such container".into());
            return;
        };
        if !entry.alive || entry.runtime.is_some() {
            reject(self, deps, "container not accepting uploads".into());
            return;
        }
        let plain = if sealed {
            let Some(channel) = entry.channel.as_mut() else {
                reject(self, deps, "no attested channel".into());
                return;
            };
            match channel.open_msg(&payload) {
                Ok(p) => p,
                Err(_) => {
                    reject(self, deps, "sealed payload failed to open".into());
                    return;
                }
            }
        } else {
            payload
        };
        let spec = match FunctionSpec::decode(&plain) {
            Ok(s) => s,
            Err(_) => {
                reject(self, deps, "malformed function spec".into());
                return;
            }
        };
        // Manifest vs image consistency and node policy (§5.5).
        let entry_image = entry.image;
        if spec.manifest.image != entry_image {
            reject(self, deps, "manifest image mismatch".into());
            return;
        }
        if let Some(reason) = self.policy.refuses(&spec.manifest) {
            reject(self, deps, reason);
            return;
        }
        let Some(function) = self.registry.instantiate(&spec.manifest.name, &spec.params) else {
            reject(
                self,
                deps,
                format!("unknown function {:?}", spec.manifest.name),
            );
            return;
        };
        // Build the execution environment, least-privilege per manifest.
        let limits = ResourceLimits {
            memory: spec.manifest.memory.min(self.policy.max_memory),
            cpu_ms: self.policy.max_cpu_ms,
            disk: spec.manifest.disk.min(self.policy.max_disk),
            network: self.function_network_budget,
        };
        let net_rules = self.compile_net_rules();
        let container = Container::new(
            container_id,
            limits,
            spec.manifest.to_seccomp(),
            net_rules,
            limits.disk.max(1),
            1024,
        );
        let fsp = match entry_image {
            ImageKind::Sgx => Some(FsProtect::launch(&mut self.rng)),
            ImageKind::Plain => None,
        };
        // Charge the base footprint against the aggregate group.
        if self.aggregate.alloc_memory(FN_BASE_MEMORY).is_err() {
            reject(self, deps, "box function memory exhausted".into());
            return;
        }
        // bento-lint: allow(BL005) -- entry inserted into `containers` earlier in this function
        let entry = self.containers.get_mut(&container_id).expect("exists");
        entry.runtime = Some(ContainerRuntime {
            container,
            fsp,
            image: entry_image,
        });
        entry.function = Some(function);
        // Until the first Invoke arrives, function output (e.g. unsolicited
        // load reports from a timer) rides the uploader's stream — otherwise
        // a never-invoked function has no way to speak at all.
        entry.invoker = Some(stream);
        self.firewall
            .register_function(container_id, spec.manifest.stem.iter().copied());
        entry.manifest = Some(spec.manifest);
        self.run_function(deps, container_id, |f, api| f.on_install(api));
        // The entry may have terminated itself during install.
        if self
            .containers
            .get(&container_id)
            .map(|c| c.alive)
            .unwrap_or(false)
        {
            // Persist the function to the box's sealed disk so a host crash
            // can rebuild it with the same client-held tokens.
            let (invocation_token, shutdown_token) = {
                // bento-lint: allow(BL005) -- presence just checked by the surrounding `alive` guard
                let e = self.containers.get(&container_id).expect("exists");
                (e.invocation_token, e.shutdown_token)
            };
            let record = StoredFunction {
                image: entry_image,
                invocation_token,
                shutdown_token,
                spec: plain,
            };
            let (secret, measurement) = self.sealing_identity();
            self.sealed_store.insert(
                container_id,
                conclave::sealed::seal_data(&secret, &measurement, &record.encode()),
            );
            self.reply(deps, stream, &BentoMsg::UploadOk { container_id });
        } else {
            self.reply(
                deps,
                stream,
                &BentoMsg::Rejected {
                    reason: "function terminated during install".into(),
                },
            );
        }
    }

    fn find_by_invocation(&self, token: &[u8; 32]) -> Option<u64> {
        self.containers
            .iter()
            .find(|(_, c)| c.alive && c.invocation_token.matches(token))
            .map(|(id, _)| *id)
    }

    fn find_by_shutdown(&self, token: &[u8; 32]) -> Option<u64> {
        self.containers
            .iter()
            .find(|(_, c)| c.alive && c.shutdown_token.matches(token))
            .map(|(id, _)| *id)
    }

    fn handle_invoke(
        &mut self,
        deps: &mut Deps<'_, '_>,
        stream: LocalStream,
        token: [u8; 32],
        input: Vec<u8>,
    ) {
        let Some(id) = self.find_by_invocation(&token) else {
            self.reply(
                deps,
                stream,
                &BentoMsg::Rejected {
                    reason: "bad invocation token".into(),
                },
            );
            return;
        };
        // bento-lint: allow(BL005) -- `id` was returned by find_by_invocation over this same map
        let entry = self.containers.get_mut(&id).expect("exists");
        if entry.function.is_none() {
            self.reply(
                deps,
                stream,
                &BentoMsg::Rejected {
                    reason: "no function uploaded".into(),
                },
            );
            return;
        }
        entry.invoker = Some(stream);
        T_INVOKES.inc();
        T_INVOKE_BYTES.record(input.len() as u64);
        // Swap the enclave in (paging cost accrues in the EPC stats).
        if entry.enclave_id.is_some() {
            self.epc.touch(id);
        }
        self.run_function(deps, id, move |f, api| f.on_invoke(api, input));
    }

    fn handle_shutdown(&mut self, deps: &mut Deps<'_, '_>, stream: LocalStream, token: [u8; 32]) {
        // The invocation token must NOT be sufficient: only the shutdown
        // token terminates (§5.3).
        let Some(id) = self.find_by_shutdown(&token) else {
            self.reply(
                deps,
                stream,
                &BentoMsg::Rejected {
                    reason: "bad shutdown token".into(),
                },
            );
            return;
        };
        self.teardown_container(deps, id, "shutdown token presented");
        self.reply(deps, stream, &BentoMsg::ShutdownAck);
    }

    fn teardown_container(&mut self, deps: &mut Deps<'_, '_>, id: u64, reason: &str) {
        let Some(entry) = self.containers.get_mut(&id) else {
            return;
        };
        if !entry.alive {
            return;
        }
        entry.alive = false;
        T_TEARDOWNS.inc();
        if let Some(rt) = entry.runtime.as_mut() {
            rt.container.terminate(reason);
            self.aggregate.free_memory(FN_BASE_MEMORY);
        }
        let circs: Vec<CircuitHandle> = entry.circs.values().copied().collect();
        let conns: Vec<ConnId> = entry.conns.values().copied().collect();
        let hss: Vec<u64> = entry.hss.values().copied().collect();
        entry.function = None;
        for c in circs {
            deps.tor.destroy_circuit(deps.ctx, c);
        }
        for c in conns {
            deps.ctx.close(c);
            self.net_conns.remove(&c);
        }
        for h in hss {
            self.hss.remove(&h);
        }
        self.firewall.remove_function(id);
        if let Some(eid) = self.containers.get(&id).and_then(|e| e.enclave_id) {
            self.epc.unregister(eid);
        }
        // An intentionally-terminated function must not resurrect after a
        // crash: erase its disk record.
        self.sealed_store.remove(&id);
    }

    // ------------------------------------------------------------------
    // Crash recovery (sealed disk).
    // ------------------------------------------------------------------

    fn sealing_identity(&self) -> ([u8; 32], [u8; 32]) {
        (
            self.platform.sealing_secret(),
            onion_crypto::sha256::sha256(&self.enclave_image),
        )
    }

    /// The host crashed: all volatile state (containers, channels, streams,
    /// firewall grants) is gone. The sealed store — this box's disk — and
    /// static configuration survive. Call on the simulator's crash hook;
    /// recovery replays the store after the next consensus arrives.
    pub fn crash(&mut self) {
        self.containers.clear();
        self.streams.clear();
        self.net_conns.clear();
        self.hss.clear();
        self.firewall = StemFirewall::new();
        self.aggregate = CGroup::new(ResourceLimits::default_aggregate());
        self.epc = Epc::default();
        self.pending_recovery = !self.sealed_store.is_empty();
    }

    /// Number of sealed function records on disk (test hook).
    pub fn sealed_functions(&self) -> usize {
        self.sealed_store.len()
    }

    /// Replay the sealed store: rebuild every recorded container with its
    /// original tokens so clients reattach without renegotiating. Attested
    /// channels do NOT survive — an SGX client must re-attest before its
    /// next sealed upload — but invocation/shutdown tokens keep working,
    /// exactly like a service reloading its state files after a reboot.
    pub fn recover(&mut self, deps: &mut Deps<'_, '_>) {
        if !self.pending_recovery {
            return;
        }
        self.pending_recovery = false;
        let (secret, measurement) = self.sealing_identity();
        let records: Vec<(u64, Vec<u8>)> = self
            .sealed_store
            .iter()
            .map(|(id, blob)| (*id, blob.clone()))
            .collect();
        for (id, blob) in records {
            let Ok(plain) = conclave::sealed::unseal_data(&secret, &measurement, &blob) else {
                continue; // tampered or foreign blob: refuse quietly
            };
            let Some(record) = StoredFunction::decode(&plain) else {
                continue;
            };
            if self.restore_container(deps, id, record) {
                T_RECOVERED.inc();
            }
        }
    }

    /// Rebuild one container from its disk record. Returns true on success.
    fn restore_container(
        &mut self,
        deps: &mut Deps<'_, '_>,
        id: u64,
        record: StoredFunction,
    ) -> bool {
        let Ok(spec) = FunctionSpec::decode(&record.spec) else {
            return false;
        };
        let Some(function) = self.registry.instantiate(&spec.manifest.name, &spec.params) else {
            return false;
        };
        let limits = ResourceLimits {
            memory: spec.manifest.memory.min(self.policy.max_memory),
            cpu_ms: self.policy.max_cpu_ms,
            disk: spec.manifest.disk.min(self.policy.max_disk),
            network: self.function_network_budget,
        };
        let net_rules = self.compile_net_rules();
        let container = Container::new(
            id,
            limits,
            spec.manifest.to_seccomp(),
            net_rules,
            limits.disk.max(1),
            1024,
        );
        let (fsp, enclave_id) = match record.image {
            ImageKind::Sgx => {
                let footprint = Self::enclave_footprint(0);
                if !self.epc.register(id, footprint) {
                    return false;
                }
                self.epc.touch(id);
                (Some(FsProtect::launch(&mut self.rng)), Some(id))
            }
            ImageKind::Plain => (None, None),
        };
        if self.aggregate.alloc_memory(FN_BASE_MEMORY).is_err() {
            if let Some(eid) = enclave_id {
                self.epc.unregister(eid);
            }
            return false;
        }
        self.next_container = self.next_container.max(id + 1);
        self.firewall
            .register_function(id, spec.manifest.stem.iter().copied());
        self.containers.insert(
            id,
            ContainerEntry {
                image: record.image,
                invocation_token: record.invocation_token,
                shutdown_token: record.shutdown_token,
                channel: None, // clients must re-attest for sealed uploads
                enclave_id,
                runtime: Some(ContainerRuntime {
                    container,
                    fsp,
                    image: record.image,
                }),
                function: Some(function),
                manifest: Some(spec.manifest),
                invoker: None,
                conns: BTreeMap::new(),
                circs: BTreeMap::new(),
                circs_rev: BTreeMap::new(),
                streams: BTreeMap::new(),
                streams_rev: BTreeMap::new(),
                hss: BTreeMap::new(),
                alive: true,
            },
        );
        self.run_function(deps, id, |f, api| f.on_install(api));
        self.containers.get(&id).map(|c| c.alive).unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Function execution.
    // ------------------------------------------------------------------

    fn run_function(
        &mut self,
        deps: &mut Deps<'_, '_>,
        id: u64,
        f: impl FnOnce(&mut dyn Function, &mut FunctionApi<'_>),
    ) {
        let (mut function, mut runtime) = {
            let Some(entry) = self.containers.get_mut(&id) else {
                return;
            };
            if !entry.alive {
                return;
            }
            let (Some(function), Some(runtime)) = (entry.function.take(), entry.runtime.take())
            else {
                return;
            };
            (function, runtime)
        };
        let mut api = FunctionApi {
            runtime: &mut runtime,
            actions: Vec::new(),
            now: deps.ctx.now(),
            rng: StdRng::seed_from_u64(deps.ctx.rng().gen()),
            next_handle: self.rng.gen::<u32>() as u64 | 0x1_0000_0000,
        };
        f(function.as_mut(), &mut api);
        let actions = std::mem::take(&mut api.actions);
        let container_died = !runtime.container.is_running();
        if let Some(entry) = self.containers.get_mut(&id) {
            entry.function = Some(function);
            entry.runtime = Some(runtime);
        }
        if container_died {
            self.teardown_container(deps, id, "resource limit");
            return;
        }
        self.apply_actions(deps, id, actions);
    }

    fn apply_actions(&mut self, deps: &mut Deps<'_, '_>, id: u64, actions: Vec<FnAction>) {
        for action in actions {
            if !self.containers.get(&id).map(|c| c.alive).unwrap_or(false) {
                return;
            }
            self.apply_action(deps, id, action);
        }
    }

    fn apply_action(&mut self, deps: &mut Deps<'_, '_>, id: u64, action: FnAction) {
        match action {
            FnAction::Output(data) => {
                // Output rides the invoker's Tor stream: network, charged.
                if !self.charge_network(deps, id, data.len() as u64) {
                    return;
                }
                let invoker = self.containers.get(&id).and_then(|c| c.invoker);
                if let Some(stream) = invoker {
                    let msg = BentoMsg::Output { data };
                    self.reply(deps, stream, &msg);
                }
            }
            FnAction::OutputEnd => {
                let invoker = self.containers.get(&id).and_then(|c| c.invoker);
                if let Some(stream) = invoker {
                    self.reply(deps, stream, &BentoMsg::OutputEnd);
                }
            }
            FnAction::Connect { conn, host, port } => {
                // The policy gate already ran inside FunctionApi::connect.
                let real = deps.ctx.connect(host, port);
                if let Some(entry) = self.containers.get_mut(&id) {
                    entry.conns.insert(conn, real);
                }
                self.net_conns.insert(real, (id, conn));
            }
            FnAction::NetSend { conn, data } => {
                let real = self
                    .containers
                    .get(&id)
                    .and_then(|c| c.conns.get(&conn))
                    .copied();
                if let Some(real) = real {
                    if self.charge_network(deps, id, data.len() as u64) {
                        deps.ctx.send(real, data);
                    }
                }
            }
            FnAction::NetClose { conn } => {
                let real = self
                    .containers
                    .get_mut(&id)
                    .and_then(|c| c.conns.remove(&conn));
                if let Some(real) = real {
                    self.net_conns.remove(&real);
                    deps.ctx.close(real);
                }
            }
            FnAction::SetTimer { delay, tag } => {
                let encoded = FN_TAG_BASE | (id << FN_TAG_BITS) | (tag & ((1 << FN_TAG_BITS) - 1));
                deps.ctx.set_timer(delay, encoded);
            }
            FnAction::Terminate => {
                self.teardown_container(deps, id, "function requested termination");
            }
            FnAction::BuildCircuit { circ, exit_to } => {
                if self.firewall.check(id, StemCall::NewCircuit).is_err() {
                    self.notify_circuit_failed(deps, id, circ);
                    return;
                }
                let req = match exit_to {
                    // A circuit "exiting" to another box's Bento port must
                    // terminate at that box itself (its localhost opt-in).
                    Some((host, port)) if port == tor_net::ports::BENTO_PORT => {
                        let fp = deps
                            .tor
                            .consensus()
                            .and_then(|c| c.relays.iter().find(|r| r.addr == host))
                            .map(|r| r.fingerprint);
                        match fp {
                            Some(fp) => TerminalReq::Specific(fp),
                            None => {
                                self.notify_circuit_failed(deps, id, circ);
                                return;
                            }
                        }
                    }
                    Some((host, port)) => TerminalReq::ExitTo(host, port),
                    None => TerminalReq::Any,
                };
                let built = deps
                    .tor
                    .select_path(deps.ctx, req)
                    .and_then(|p| deps.tor.build_circuit(deps.ctx, p));
                match built {
                    Some(h) => self.bind_circuit(id, circ, h),
                    None => self.notify_circuit_failed(deps, id, circ),
                }
            }
            FnAction::ConnectOnion { circ, addr } => {
                if self.firewall.check(id, StemCall::ConnectOnion).is_err() {
                    self.notify_circuit_failed(deps, id, circ);
                    return;
                }
                match deps.tor.connect_onion(deps.ctx, tor_net::OnionAddr(addr)) {
                    Some(h) => self.bind_circuit(id, circ, h),
                    None => self.notify_circuit_failed(deps, id, circ),
                }
            }
            FnAction::OpenStream {
                circ,
                stream,
                target,
            } => {
                let Some(h) = self.owned_circuit(id, circ, StemCall::OpenStream) else {
                    return;
                };
                let tgt = match target {
                    crate::function::FnStreamTarget::Node(n, p) => StreamTarget::Node(n, p),
                    crate::function::FnStreamTarget::Hs(p) => StreamTarget::Hs(p),
                };
                if let Some(sid) = deps.tor.open_stream(deps.ctx, h, tgt) {
                    if let Some(entry) = self.containers.get_mut(&id) {
                        entry.streams.insert((circ, stream), sid);
                        entry.streams_rev.insert((h.0, sid), stream);
                    }
                }
            }
            FnAction::StreamSend { circ, stream, data } => {
                let Some(h) = self.owned_circuit(id, circ, StemCall::SendStream) else {
                    return;
                };
                let sid = self
                    .containers
                    .get(&id)
                    .and_then(|c| c.streams.get(&(circ, stream)))
                    .copied();
                if let Some(sid) = sid {
                    if self.charge_network(deps, id, data.len() as u64) {
                        deps.tor.send_stream(deps.ctx, h, sid, &data);
                    }
                }
            }
            FnAction::StreamClose { circ, stream } => {
                let Some(h) = self.owned_circuit(id, circ, StemCall::SendStream) else {
                    return;
                };
                let sid = self
                    .containers
                    .get_mut(&id)
                    .and_then(|c| c.streams.remove(&(circ, stream)));
                if let Some(sid) = sid {
                    if let Some(entry) = self.containers.get_mut(&id) {
                        entry.streams_rev.remove(&(h.0, sid));
                    }
                    deps.tor.close_stream(deps.ctx, h, sid);
                }
            }
            FnAction::RespondIncoming {
                circ,
                stream,
                accept,
            } => {
                let Some(h) = self.owned_circuit(id, circ, StemCall::OpenStream) else {
                    return;
                };
                let sid = self
                    .containers
                    .get(&id)
                    .and_then(|c| c.streams.get(&(circ, stream)))
                    .copied();
                if let Some(sid) = sid {
                    deps.tor.respond_incoming(deps.ctx, h, sid, accept);
                }
            }
            FnAction::SendDrop { circ } => {
                let Some(h) = self.owned_circuit(id, circ, StemCall::SendDrop) else {
                    return;
                };
                deps.tor.send_drop(deps.ctx, h);
            }
            FnAction::CreateHs {
                hs,
                seed,
                n_intro,
                auto_rendezvous,
            } => {
                if self
                    .firewall
                    .check(id, StemCall::CreateHiddenService)
                    .is_err()
                {
                    return;
                }
                let mut host = HiddenServiceHost::new(seed, n_intro as usize, auto_rendezvous);
                if n_intro > 0 {
                    host.start(deps.ctx, deps.tor);
                }
                let gid = self.next_hs;
                self.next_hs += 1;
                self.hss.insert(
                    gid,
                    HsEntry {
                        container: id,
                        fn_handle: hs,
                        host,
                    },
                );
                if let Some(entry) = self.containers.get_mut(&id) {
                    entry.hss.insert(hs, gid);
                }
                self.firewall.grant_hs(id, gid);
            }
            FnAction::HsHandleIntro { hs, blob } => {
                let gid = self
                    .containers
                    .get(&id)
                    .and_then(|c| c.hss.get(&hs))
                    .copied();
                let Some(gid) = gid else { return };
                if self.firewall.hs_owner(gid) != Some(id) {
                    return;
                }
                if let Some(entry) = self.hss.get_mut(&gid) {
                    entry.host.handle_introduction(deps.ctx, deps.tor, &blob);
                }
            }
        }
    }

    /// Charge network bytes to a function; a container that blows its
    /// budget is killed (§6.2: functions cannot leverage the box for
    /// unbounded traffic). Returns false when the container died.
    fn charge_network(&mut self, deps: &mut Deps<'_, '_>, id: u64, bytes: u64) -> bool {
        let over = match self
            .containers
            .get_mut(&id)
            .and_then(|c| c.runtime.as_mut())
        {
            Some(rt) => rt.container.cgroup_mut().charge_network(bytes).is_err(),
            None => false,
        };
        let _ = self.aggregate.charge_network(bytes);
        if over {
            self.teardown_container(deps, id, "network budget exhausted");
            return false;
        }
        true
    }

    fn bind_circuit(&mut self, id: u64, fn_circ: u64, h: CircuitHandle) {
        if let Some(entry) = self.containers.get_mut(&id) {
            entry.circs.insert(fn_circ, h);
            entry.circs_rev.insert(h.0, fn_circ);
        }
        self.firewall.grant_circuit(id, h.0);
    }

    fn owned_circuit(&mut self, id: u64, fn_circ: u64, call: StemCall) -> Option<CircuitHandle> {
        let h = self.containers.get(&id)?.circs.get(&fn_circ).copied()?;
        self.firewall.check_circuit(id, call, h.0).ok()?;
        Some(h)
    }

    fn notify_circuit_failed(&mut self, deps: &mut Deps<'_, '_>, id: u64, fn_circ: u64) {
        self.run_function(deps, id, move |f, api| f.on_circuit_failed(api, fn_circ));
    }

    // ------------------------------------------------------------------
    // Routed host events.
    // ------------------------------------------------------------------

    /// Whether a simnet connection belongs to one of this server's
    /// functions.
    pub fn owns_conn(&self, conn: ConnId) -> bool {
        self.net_conns.contains_key(&conn)
    }

    /// A function-owned direct connection established.
    pub fn on_conn_established(&mut self, deps: &mut Deps<'_, '_>, conn: ConnId) -> bool {
        let Some(&(id, fn_conn)) = self.net_conns.get(&conn) else {
            return false;
        };
        self.run_function(deps, id, move |f, api| f.on_net_connected(api, fn_conn));
        true
    }

    /// Data on a function-owned direct connection.
    pub fn on_conn_msg(&mut self, deps: &mut Deps<'_, '_>, conn: ConnId, msg: Vec<u8>) -> bool {
        let Some(&(id, fn_conn)) = self.net_conns.get(&conn) else {
            return false;
        };
        if self.charge_network(deps, id, msg.len() as u64) {
            self.run_function(deps, id, move |f, api| f.on_net_data(api, fn_conn, msg));
        }
        true
    }

    /// A function-owned direct connection closed.
    pub fn on_conn_closed(&mut self, deps: &mut Deps<'_, '_>, conn: ConnId) -> bool {
        let Some((id, fn_conn)) = self.net_conns.remove(&conn) else {
            return false;
        };
        if let Some(entry) = self.containers.get_mut(&id) {
            entry.conns.remove(&fn_conn);
        }
        self.run_function(deps, id, move |f, api| f.on_net_closed(api, fn_conn));
        true
    }

    /// A timer fired; claims function-namespace tags.
    pub fn on_timer(&mut self, deps: &mut Deps<'_, '_>, tag: u64) -> bool {
        if tag & FN_TAG_BASE != FN_TAG_BASE {
            return false;
        }
        let id = (tag & !FN_TAG_BASE) >> FN_TAG_BITS;
        let user_tag = tag & ((1 << FN_TAG_BITS) - 1);
        self.run_function(deps, id, move |f, api| f.on_timer(api, user_tag));
        true
    }

    /// Route a Tor event from the box's onion proxy. Returns true if the
    /// event belonged to a function.
    pub fn on_tor_event(&mut self, deps: &mut Deps<'_, '_>, ev: TorEvent) -> bool {
        // A fresh consensus after a crash is the recovery trigger: the
        // onion proxy can route again, so replay the sealed disk.
        if self.pending_recovery && matches!(ev, TorEvent::ConsensusReady) {
            self.recover(deps);
        }
        // First offer the event to each hidden-service host.
        let mut ev = ev;
        let gids: Vec<u64> = self.hss.keys().copied().collect();
        for gid in gids {
            let Some(mut entry) = self.hss.remove(&gid) else {
                continue;
            };
            let out = entry.host.handle_event(deps.ctx, deps.tor, ev);
            let hs_events: Vec<HsEvent> = entry.host.drain_events();
            let container = entry.container;
            let fn_handle = entry.fn_handle;
            self.hss.insert(gid, entry);
            for hev in hs_events {
                self.dispatch_hs_event(deps, gid, container, fn_handle, hev);
            }
            match out {
                Some(e) => ev = e,
                None => return true,
            }
        }
        // Then map circuits to owning functions.
        let circ_of = |ev: &TorEvent| -> Option<CircuitHandle> {
            match ev {
                TorEvent::CircuitReady(h)
                | TorEvent::CircuitClosed(h)
                | TorEvent::StreamConnected(h, _)
                | TorEvent::StreamData(h, _, _)
                | TorEvent::StreamEnded(h, _)
                | TorEvent::IncomingStream(h, _, _)
                | TorEvent::ControlCell(h, _, _)
                | TorEvent::DirResponse(h, _, _)
                | TorEvent::RendezvousReady(h)
                | TorEvent::RendezvousFailed(h, _) => Some(*h),
                // Functions do not use managed circuits; the old handle's
                // closure already reached them as on_circuit_failed.
                TorEvent::CircuitRebuilt(..) | TorEvent::ConsensusReady => None,
            }
        };
        let Some(h) = circ_of(&ev) else {
            return false;
        };
        let owner = self
            .containers
            .iter()
            .find(|(_, c)| c.circs_rev.contains_key(&h.0))
            .map(|(id, c)| (*id, c.circs_rev[&h.0]));
        let Some((id, fn_circ)) = owner else {
            return false;
        };
        match ev {
            TorEvent::CircuitReady(_) | TorEvent::RendezvousReady(_) => {
                self.run_function(deps, id, move |f, api| f.on_circuit_ready(api, fn_circ));
            }
            TorEvent::CircuitClosed(_) | TorEvent::RendezvousFailed(_, _) => {
                self.run_function(deps, id, move |f, api| f.on_circuit_failed(api, fn_circ));
            }
            TorEvent::StreamConnected(_, sid) => {
                let fn_stream = self
                    .containers
                    .get(&id)
                    .and_then(|c| c.streams_rev.get(&(h.0, sid)))
                    .copied();
                if let Some(fn_stream) = fn_stream {
                    self.run_function(deps, id, move |f, api| {
                        f.on_stream_connected(api, fn_circ, fn_stream)
                    });
                }
            }
            TorEvent::StreamData(_, sid, data) => {
                let fn_stream = self
                    .containers
                    .get(&id)
                    .and_then(|c| c.streams_rev.get(&(h.0, sid)))
                    .copied();
                if let Some(fn_stream) = fn_stream {
                    if self.charge_network(deps, id, data.len() as u64) {
                        self.run_function(deps, id, move |f, api| {
                            f.on_stream_data(api, fn_circ, fn_stream, data)
                        });
                    }
                }
            }
            TorEvent::StreamEnded(_, sid) => {
                let fn_stream = self
                    .containers
                    .get_mut(&id)
                    .and_then(|c| c.streams_rev.remove(&(h.0, sid)));
                if let Some(fn_stream) = fn_stream {
                    if let Some(entry) = self.containers.get_mut(&id) {
                        entry.streams.remove(&(fn_circ, fn_stream));
                    }
                    self.run_function(deps, id, move |f, api| {
                        f.on_stream_ended(api, fn_circ, fn_stream)
                    });
                }
            }
            TorEvent::IncomingStream(_, sid, port) => {
                // Allocate a function-local stream handle for the incoming
                // stream.
                let fn_stream = self.rng.gen::<u32>() as u64 | 0x2_0000_0000;
                if let Some(entry) = self.containers.get_mut(&id) {
                    entry.streams.insert((fn_circ, fn_stream), sid);
                    entry.streams_rev.insert((h.0, sid), fn_stream);
                }
                self.run_function(deps, id, move |f, api| {
                    f.on_incoming_stream(api, fn_circ, fn_stream, port)
                });
            }
            TorEvent::ControlCell(..) | TorEvent::DirResponse(..) => {}
            TorEvent::ConsensusReady | TorEvent::CircuitRebuilt(..) => {}
        }
        true
    }

    fn dispatch_hs_event(
        &mut self,
        deps: &mut Deps<'_, '_>,
        gid: u64,
        container: u64,
        fn_handle: u64,
        hev: HsEvent,
    ) {
        match hev {
            HsEvent::Published(_) => {
                self.run_function(deps, container, move |f, api| {
                    f.on_hs_published(api, fn_handle)
                });
            }
            HsEvent::Introduction(blob) => {
                self.run_function(deps, container, move |f, api| {
                    f.on_hs_introduction(api, fn_handle, blob)
                });
            }
            HsEvent::ClientCircuit(h) => {
                // The rendezvous circuit becomes an owned function circuit.
                let fn_circ = self.rng.gen::<u32>() as u64 | 0x3_0000_0000;
                self.bind_circuit(container, fn_circ, h);
                let _ = gid;
                self.run_function(deps, container, move |f, api| {
                    f.on_hs_client_circuit(api, fn_handle, fn_circ)
                });
            }
        }
    }
}
