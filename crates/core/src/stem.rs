//! The Stem firewall (§5.3): mediated access to the co-resident Tor
//! instance.
//!
//! Functions "must connect (via a local socket) to issue all Stem
//! invocations. The firewall maintains state about the circuits each
//! function is allowed to access, and the Stem routines the function may
//! invoke." Here the firewall is a policy gate plus an ownership table:
//! which Stem calls a function may make, and which circuits/hidden services
//! it may touch (a function can never act on another function's circuits).

use std::collections::{BTreeMap, BTreeSet};

// One verdict is counted per gate evaluated: `check_circuit` runs two gates
// (routine permission, then ownership), so a NotOwner denial records one
// allowed routine gate and one denied ownership gate.
static T_ALLOWED: telemetry::Counter = telemetry::Counter::new("stem.calls_allowed");
static T_DENIED: telemetry::Counter = telemetry::Counter::new("stem.calls_denied");

/// Stem (Tor control) routines a function can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StemCall {
    /// Build a new circuit.
    NewCircuit,
    /// Open a stream on an owned circuit.
    OpenStream,
    /// Send data on an owned stream.
    SendStream,
    /// Send cover (DROP) cells on an owned circuit.
    SendDrop,
    /// Connect to an onion service.
    ConnectOnion,
    /// Launch a hidden service (a dedicated onion proxy, §5.4).
    CreateHiddenService,
    /// Read the consensus (relay listing).
    ReadConsensus,
}

impl StemCall {
    /// Every call, for exhaustive policies.
    pub const ALL: [StemCall; 7] = [
        StemCall::NewCircuit,
        StemCall::OpenStream,
        StemCall::SendStream,
        StemCall::SendDrop,
        StemCall::ConnectOnion,
        StemCall::CreateHiddenService,
        StemCall::ReadConsensus,
    ];

    /// Stable wire id.
    pub fn id(self) -> u8 {
        match self {
            StemCall::NewCircuit => 0,
            StemCall::OpenStream => 1,
            StemCall::SendStream => 2,
            StemCall::SendDrop => 3,
            StemCall::ConnectOnion => 4,
            StemCall::CreateHiddenService => 5,
            StemCall::ReadConsensus => 6,
        }
    }

    /// Parse a stable wire id.
    pub fn from_id(id: u8) -> Option<StemCall> {
        StemCall::ALL.iter().copied().find(|c| c.id() == id)
    }

    /// Stable name for policy documents.
    pub fn name(self) -> &'static str {
        match self {
            StemCall::NewCircuit => "new_circuit",
            StemCall::OpenStream => "open_stream",
            StemCall::SendStream => "send_stream",
            StemCall::SendDrop => "send_drop",
            StemCall::ConnectOnion => "connect_onion",
            StemCall::CreateHiddenService => "create_hidden_service",
            StemCall::ReadConsensus => "read_consensus",
        }
    }
}

/// Why the firewall refused a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StemDenied {
    /// The function's negotiated permissions do not include this routine.
    NotPermitted(StemCall),
    /// The circuit/service is not owned by this function.
    NotOwner,
}

impl std::fmt::Display for StemDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StemDenied::NotPermitted(c) => write!(f, "stem call {} not permitted", c.name()),
            StemDenied::NotOwner => write!(f, "circuit not owned by this function"),
        }
    }
}

/// Per-function firewall state on one Bento box.
#[derive(Debug, Default)]
pub struct StemFirewall {
    /// function id -> allowed routines (from the approved manifest).
    allowed: BTreeMap<u64, BTreeSet<StemCall>>,
    /// circuit slot -> owning function.
    circuit_owner: BTreeMap<usize, u64>,
    /// hidden service id -> owning function.
    hs_owner: BTreeMap<u64, u64>,
    /// Denied attempts, for operator inspection.
    violations: Vec<(u64, StemDenied)>,
}

impl StemFirewall {
    /// Empty firewall.
    pub fn new() -> StemFirewall {
        StemFirewall::default()
    }

    /// Register a function's permitted routines.
    pub fn register_function(&mut self, function: u64, calls: impl IntoIterator<Item = StemCall>) {
        self.allowed.insert(function, calls.into_iter().collect());
    }

    /// Remove a function and all its ownership records.
    pub fn remove_function(&mut self, function: u64) {
        self.allowed.remove(&function);
        self.circuit_owner.retain(|_, f| *f != function);
        self.hs_owner.retain(|_, f| *f != function);
    }

    /// Gate a routine with no object (NewCircuit, ConnectOnion, ...).
    pub fn check(&mut self, function: u64, call: StemCall) -> Result<(), StemDenied> {
        let ok = self
            .allowed
            .get(&function)
            .map(|s| s.contains(&call))
            .unwrap_or(false);
        if ok {
            T_ALLOWED.inc();
            Ok(())
        } else {
            T_DENIED.inc();
            let d = StemDenied::NotPermitted(call);
            self.violations.push((function, d));
            Err(d)
        }
    }

    /// Record that `function` now owns `circuit`.
    pub fn grant_circuit(&mut self, function: u64, circuit: usize) {
        self.circuit_owner.insert(circuit, function);
    }

    /// Record that `function` now owns hidden service `hs`.
    pub fn grant_hs(&mut self, function: u64, hs: u64) {
        self.hs_owner.insert(hs, function);
    }

    /// Who owns a circuit.
    pub fn circuit_owner(&self, circuit: usize) -> Option<u64> {
        self.circuit_owner.get(&circuit).copied()
    }

    /// Who owns a hidden service.
    pub fn hs_owner(&self, hs: u64) -> Option<u64> {
        self.hs_owner.get(&hs).copied()
    }

    /// Gate a routine acting on an owned circuit.
    pub fn check_circuit(
        &mut self,
        function: u64,
        call: StemCall,
        circuit: usize,
    ) -> Result<(), StemDenied> {
        self.check(function, call)?;
        if self.circuit_owner.get(&circuit) == Some(&function) {
            T_ALLOWED.inc();
            Ok(())
        } else {
            T_DENIED.inc();
            self.violations.push((function, StemDenied::NotOwner));
            Err(StemDenied::NotOwner)
        }
    }

    /// Denied attempts so far.
    pub fn violations(&self) -> &[(u64, StemDenied)] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregistered_function_denied_everything() {
        let mut fw = StemFirewall::new();
        assert!(fw.check(1, StemCall::NewCircuit).is_err());
        assert_eq!(fw.violations().len(), 1);
    }

    #[test]
    fn permitted_calls_pass() {
        let mut fw = StemFirewall::new();
        fw.register_function(1, [StemCall::NewCircuit, StemCall::OpenStream]);
        assert!(fw.check(1, StemCall::NewCircuit).is_ok());
        assert!(fw.check(1, StemCall::OpenStream).is_ok());
        assert_eq!(
            fw.check(1, StemCall::CreateHiddenService),
            Err(StemDenied::NotPermitted(StemCall::CreateHiddenService))
        );
    }

    #[test]
    fn circuit_ownership_isolates_functions() {
        let mut fw = StemFirewall::new();
        fw.register_function(1, StemCall::ALL);
        fw.register_function(2, StemCall::ALL);
        fw.grant_circuit(1, 10);
        assert!(fw.check_circuit(1, StemCall::SendStream, 10).is_ok());
        // Function 2 may call SendStream in general, but not on circuit 10.
        assert_eq!(
            fw.check_circuit(2, StemCall::SendStream, 10),
            Err(StemDenied::NotOwner)
        );
    }

    #[test]
    fn remove_function_revokes_ownership() {
        let mut fw = StemFirewall::new();
        fw.register_function(1, StemCall::ALL);
        fw.grant_circuit(1, 5);
        fw.grant_hs(1, 7);
        fw.remove_function(1);
        assert_eq!(fw.circuit_owner(5), None);
        assert_eq!(fw.hs_owner(7), None);
        assert!(fw.check(1, StemCall::NewCircuit).is_err());
    }

    #[test]
    fn ids_roundtrip() {
        for c in StemCall::ALL {
            assert_eq!(StemCall::from_id(c.id()), Some(c));
        }
        assert_eq!(StemCall::from_id(99), None);
    }
}
