//! # bento — safely bringing network function virtualization to Tor
//!
//! This crate is the paper's contribution: an architecture that lets Tor
//! clients install and run "functions" on willing Tor relays, protecting
//! the *functions from the middleboxes* (conclaves: attestation, FS
//! Protect) and the *middleboxes from the functions* (containers, seccomp,
//! middlebox node policies, manifests, the Stem firewall).
//!
//! Component map (Figure 3 of the paper):
//!
//! * [`server::BentoServer`] — runs next to an unmodified Tor relay
//!   ([`tor_net::RelayCore`]) and is reached through the relay's own exit
//!   path to "localhost"; spawns a container per client function, issues
//!   invocation/shutdown tokens, negotiates manifests against the node
//!   policy, and executes functions.
//! * [`node::BentoBoxNode`] — the host machine: relay + Bento server + an
//!   onion proxy ([`tor_net::TorClient`]) for the functions' own Tor use
//!   (circuits, hidden services) mediated by the [`stem::StemFirewall`].
//! * [`client::BentoClient`] — the user side: discover Bento boxes in the
//!   consensus, fetch their policies, attest the conclave, upload over the
//!   attested channel, invoke, compose, shut down.
//! * [`function::Function`] — the function programming model. The paper's
//!   functions are "a few lines of Python"; here they are small Rust types
//!   behind the same mediated API (see DESIGN.md for the substitution
//!   argument), registered in a [`function::FunctionRegistry`] that stands
//!   in for shipping source code.
//!
//! Bento requires **no modifications to Tor**: everything in this crate
//! sits strictly on top of the `tor-net` substrate's public interfaces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod function;
pub mod manifest;
pub mod node;
pub mod policy;
pub mod protocol;
pub mod server;
pub mod stem;
pub mod testnet;
pub mod tokens;

pub use client::{BentoClient, BentoClientNode, BentoEvent, BoxConn};
pub use function::{FnAction, Function, FunctionApi, FunctionRegistry};
pub use manifest::Manifest;
pub use node::BentoBoxNode;
pub use policy::MiddleboxPolicy;
pub use protocol::{BentoMsg, ImageKind};
pub use server::BentoServer;
pub use stem::{StemCall, StemFirewall};
pub use tokens::Token;
