//! Stand up a Tor network with Bento boxes in a few lines — used by the
//! integration tests, the examples, and every benchmark.

use crate::client::{BentoClient, BentoClientNode};
use crate::function::FunctionRegistry;
use crate::node::BentoBoxNode;
use crate::policy::MiddleboxPolicy;
use crate::server::BentoServer;
use conclave::attest::Ias;
use conclave::enclave::Enclave;
use onion_crypto::hashsig::MerkleVerifyKey;
use simnet::{Iface, NodeId};
use std::sync::{Arc, Mutex};
use tor_net::client::TorClient;
use tor_net::dir::{ExitPolicy, RelayFlags};
use tor_net::netbuild::{NetworkBuilder, TorNetwork};
use tor_net::ports::BENTO_PORT;
use tor_net::relay::{RelayConfig, RelayCore};

/// The canonical conclave image every Bento box runs (measured; clients pin
/// its measurement).
pub const ENCLAVE_IMAGE: &[u8] = b"bento-conclave-image: python runtime + function loader v1";

/// Measurement of [`ENCLAVE_IMAGE`].
pub fn enclave_measurement() -> [u8; 32] {
    onion_crypto::sha256::sha256(ENCLAVE_IMAGE)
}

/// A Tor network plus Bento infrastructure.
pub struct BentoNetwork {
    /// The underlying Tor network (owns the simulator).
    pub net: TorNetwork,
    /// Addresses of the Bento boxes.
    pub boxes: Vec<NodeId>,
    /// The shared (simulated) Intel Attestation Service.
    pub ias: Arc<Mutex<Ias>>,
    /// The IAS verification key clients pin.
    pub ias_key: MerkleVerifyKey,
}

impl BentoNetwork {
    /// Build a network with `n_boxes` Bento boxes, each running `policy`
    /// and instantiating functions from `make_registry()`.
    pub fn build(
        seed: u64,
        n_boxes: usize,
        policy: MiddleboxPolicy,
        make_registry: fn() -> FunctionRegistry,
    ) -> BentoNetwork {
        Self::build_with_iface(seed, n_boxes, policy, make_registry, Iface::tor_relay())
    }

    /// Like [`BentoNetwork::build`], with an explicit relay access interface
    /// (experiments calibrate per-circuit bandwidth through it).
    pub fn build_with_iface(
        seed: u64,
        n_boxes: usize,
        policy: MiddleboxPolicy,
        make_registry: fn() -> FunctionRegistry,
        relay_iface: Iface,
    ) -> BentoNetwork {
        Self::build_full(
            seed,
            n_boxes,
            policy,
            make_registry,
            relay_iface,
            relay_iface,
        )
    }

    /// Fully explicit construction: separate interfaces for the plain
    /// relays and for the Bento box machines (Figure 5 contends on the box
    /// uplinks while the relay fabric is generously provisioned).
    pub fn build_full(
        seed: u64,
        n_boxes: usize,
        policy: MiddleboxPolicy,
        make_registry: fn() -> FunctionRegistry,
        relay_iface: Iface,
        box_iface: Iface,
    ) -> BentoNetwork {
        Self::build_full_opts(
            seed,
            n_boxes,
            policy,
            make_registry,
            relay_iface,
            box_iface,
            0,
        )
    }

    /// Like [`BentoNetwork::build_full`], plus the simulator engine choice:
    /// `shards == 0` is the default serial engine, `shards >= 1` runs on the
    /// sharded conservative-PDES engine (a distinct, internally
    /// shard-count-invariant baseline).
    #[allow(clippy::too_many_arguments)]
    pub fn build_full_opts(
        seed: u64,
        n_boxes: usize,
        policy: MiddleboxPolicy,
        make_registry: fn() -> FunctionRegistry,
        relay_iface: Iface,
        box_iface: Iface,
        shards: usize,
    ) -> BentoNetwork {
        let mut net = NetworkBuilder::new()
            .seed(seed)
            .middles(6)
            .exits(2)
            .hsdirs(2)
            .relay_iface(relay_iface)
            .shards(shards)
            .build();
        let ias = Arc::new(Mutex::new(Ias::new([0xC0; 32], 5)));
        let ias_key = ias.lock().expect("ias lock").verify_key();

        let mut boxes = Vec::new();
        for i in 0..n_boxes {
            let mut cfg = RelayConfig::middle(&format!("bento{i}"), [0xB0 + i as u8; 32]);
            cfg.flags = RelayFlags::default()
                .with(RelayFlags::EXIT | RelayFlags::FAST | RelayFlags::BENTO | RelayFlags::GUARD);
            cfg.exit_policy = ExitPolicy::web_only();
            cfg.bento_port = Some(BENTO_PORT);
            cfg.authority_addr = Some(net.authority);
            let relay = RelayCore::new(cfg);
            let fp = relay.fingerprint();
            let tor = TorClient::new(net.authority, net.authority_key);
            let platform = {
                let mut ias_mut = ias.lock().expect("ias lock");
                // Deterministic per-box platform keys via a seeded RNG.
                let mut rng: rand::rngs::StdRng =
                    rand::SeedableRng::seed_from_u64(seed ^ (i as u64) << 8 | 0xF00D);
                ias_mut.provision_platform(1000 + i as u64, &mut rng)
            };
            let bento = BentoServer::new(
                policy.clone(),
                make_registry(),
                ExitPolicy::web_only(),
                ENCLAVE_IMAGE.to_vec(),
                ias.clone(),
                platform,
                seed.wrapping_add(i as u64),
            );
            let node = BentoBoxNode::new(relay, tor, bento);
            let addr = net
                .sim
                .add_node(format!("bento{i}"), box_iface, Box::new(node));
            net.relays.push((addr, fp));
            boxes.push(addr);
        }
        BentoNetwork {
            net,
            boxes,
            ias,
            ias_key,
        }
    }

    /// Attach a Bento-capable client node.
    pub fn add_bento_client(&mut self, name: &str) -> NodeId {
        let tor = TorClient::new(self.net.authority, self.net.authority_key);
        let bento = BentoClient::new(self.ias_key, enclave_measurement());
        let node = BentoClientNode::new(tor, bento);
        self.net
            .sim
            .add_node(name, Iface::residential(), Box::new(node))
    }

    /// A freshly measured conclave [`Enclave`] (for direct conclave tests).
    pub fn reference_enclave(&self) -> Enclave {
        Enclave::create(0, ENCLAVE_IMAGE, 24 << 20, 5)
    }
}
