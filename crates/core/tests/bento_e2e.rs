//! End-to-end Bento tests on the simulated Tor network: the full life
//! cycle of §5 (policy fetch, attestation, upload over the attested
//! channel, invocation, token checks, shutdown) and the security
//! properties of §6.

use bento::function::{Function, FunctionApi, FunctionRegistry};
use bento::manifest::Manifest;
use bento::protocol::{FunctionSpec, ImageKind};

use bento::testnet::BentoNetwork;
use bento::tokens::Token;
use bento::{BentoClientNode, BentoEvent, MiddleboxPolicy};
use sandbox::seccomp::SyscallClass;
use simnet::{SimDuration, SimTime};

/// Test function: echoes its input back, optionally storing it first.
struct EchoFn {
    stored: bool,
}
impl Function for EchoFn {
    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, input: Vec<u8>) {
        if self.stored {
            api.fs_write("last-input", &input).expect("fs allowed");
        }
        api.output(input);
        api.output_end();
    }
}

/// Test function: floods its invoker with output until the network budget
/// kills it.
struct FlooderFn;
impl Function for FlooderFn {
    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, _input: Vec<u8>) {
        // Tries to emit 100 MB; far beyond its budget.
        for _ in 0..200 {
            api.output(vec![0xEE; 512 * 1024]);
        }
        api.output_end();
    }
}

/// Test function: burns CPU until the cgroup kills it (§6.2 resource
/// exhaustion).
struct HogFn;
impl Function for HogFn {
    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, _input: Vec<u8>) {
        // The policy CPU budget is finite; this loop must be stopped by
        // the container, not by cooperation.
        loop {
            if api.cpu(60_000).is_err() {
                // The container is already dead; nothing we output matters.
                api.output(b"still alive?!".to_vec());
                return;
            }
        }
    }
}

/// Test function: tries forbidden things and reports what happened.
struct ProbeFn;
impl Function for ProbeFn {
    fn on_invoke(&mut self, api: &mut FunctionApi<'_>, _input: Vec<u8>) {
        let report = vec![
            // The manifest didn't request Write: must be refused.
            match api.fs_write("x", b"y") {
                Err(_) => b'W',
                Ok(_) => b'!',
            },
            // Port 22 isn't in the web-only exit policy: must be refused.
            match api.connect(simnet::NodeId(0), 22) {
                Err(_) => b'C',
                Ok(_) => b'!',
            },
        ];
        api.output(report);
        api.output_end();
    }
}

fn registry() -> FunctionRegistry {
    fn make_echo(_p: &[u8]) -> Box<dyn Function> {
        Box::new(EchoFn { stored: false })
    }
    fn make_echo_store(_p: &[u8]) -> Box<dyn Function> {
        Box::new(EchoFn { stored: true })
    }
    fn make_probe(_p: &[u8]) -> Box<dyn Function> {
        Box::new(ProbeFn)
    }
    fn make_hog(_p: &[u8]) -> Box<dyn Function> {
        Box::new(HogFn)
    }
    fn make_flooder(_p: &[u8]) -> Box<dyn Function> {
        Box::new(FlooderFn)
    }
    let mut r = FunctionRegistry::new();
    r.register("echo", make_echo);
    r.register("echo-store", make_echo_store);
    r.register("probe", make_probe);
    r.register("hog", make_hog);
    r.register("flooder", make_flooder);
    r
}

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// Drive a full session up to ContainerReady; returns (client node id,
/// box conn, container id, tokens).
fn establish(
    bn: &mut BentoNetwork,
    image: ImageKind,
) -> (simnet::NodeId, bento::BoxConn, u64, Token, Token) {
    let client = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    let conn = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            assert!(!boxes.is_empty(), "bento boxes in consensus");
            n.bento
                .connect_box(ctx, &mut n.tor, &boxes[0])
                .expect("session")
        });
    bn.net.sim.run_until(secs(5));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert!(
                n.bento_events
                    .iter()
                    .any(|e| matches!(e, BentoEvent::Connected(c) if *c == conn)),
                "bento stream connected; events: {:?}",
                n.bento_events
            );
            n.bento.request_container(ctx, &mut n.tor, conn, image);
        });
    bn.net.sim.run_until(secs(8));
    let (container, inv, shut) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, _| n.container_ready(conn))
        .unwrap_or_else(|| panic!("container ready"));
    (client, conn, container, inv, shut)
}

#[test]
fn full_lifecycle_plain_image() {
    let mut bn = BentoNetwork::build(101, 1, MiddleboxPolicy::permissive(), registry);
    let (client, conn, container, inv, shut) = establish(&mut bn, ImageKind::Plain);
    // Upload echo.
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("echo"),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert!(n.upload_ok(conn), "upload accepted: {:?}", n.bento_events);
            n.bento
                .invoke(ctx, &mut n.tor, conn, inv, b"hello bento".to_vec());
        });
    bn.net.sim.run_until(secs(14));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert_eq!(n.output_bytes(conn), b"hello bento");
            assert!(n.output_done(conn));
            n.bento.shutdown(ctx, &mut n.tor, conn, shut);
        });
    bn.net.sim.run_until(secs(17));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(n
            .bento_events
            .iter()
            .any(|e| matches!(e, BentoEvent::ShutdownAck(c) if *c == conn)));
    });
    // The box no longer runs the function.
    let bx = bn.boxes[0];
    bn.net.sim.with_node::<bento::BentoBoxNode, _>(bx, |n, _| {
        assert_eq!(n.bento.live_functions(), 0);
    });
}

#[test]
fn sgx_image_attests_and_uploads_sealed() {
    let mut bn = BentoNetwork::build(102, 1, MiddleboxPolicy::permissive(), registry);
    let (client, conn, container, inv, _shut) = establish(&mut bn, ImageKind::Sgx);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            // No attestation failure events.
            assert!(!n
                .bento_events
                .iter()
                .any(|e| matches!(e, BentoEvent::AttestationFailed(..))));
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("echo-store")
                    .with_disk(1 << 20)
                    .with_sgx(),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert!(
                n.upload_ok(conn),
                "sealed upload accepted: {:?}",
                n.bento_events
            );
            n.bento
                .invoke(ctx, &mut n.tor, conn, inv, b"secret payload".to_vec());
        });
    bn.net.sim.run_until(secs(14));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert_eq!(n.output_bytes(conn), b"secret payload");
    });
}

#[test]
fn wrong_invocation_token_rejected() {
    let mut bn = BentoNetwork::build(103, 1, MiddleboxPolicy::permissive(), registry);
    let (client, conn, container, _inv, _shut) = establish(&mut bn, ImageKind::Plain);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("echo"),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            // An attacker without the token cannot inject input (§6.1).
            n.bento
                .invoke(ctx, &mut n.tor, conn, Token([0xEE; 32]), b"inject".to_vec());
        });
    bn.net.sim.run_until(secs(14));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(n.output_bytes(conn).is_empty(), "no output for bad token");
        assert_eq!(n.rejection(conn), Some("bad invocation token"));
    });
}

#[test]
fn invocation_token_cannot_shut_down() {
    let mut bn = BentoNetwork::build(104, 1, MiddleboxPolicy::permissive(), registry);
    let (client, conn, container, inv, _shut) = establish(&mut bn, ImageKind::Plain);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("echo"),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            // Presenting the invocation token as a shutdown token must fail —
            // the §5.3 sharing model depends on it.
            n.bento.shutdown(ctx, &mut n.tor, conn, inv);
        });
    bn.net.sim.run_until(secs(14));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert_eq!(n.rejection(conn), Some("bad shutdown token"));
    });
    let bx = bn.boxes[0];
    bn.net.sim.with_node::<bento::BentoBoxNode, _>(bx, |n, _| {
        assert_eq!(n.bento.live_functions(), 1, "function still running");
    });
}

#[test]
fn manifest_exceeding_policy_rejected() {
    // A no-storage node must refuse a function whose manifest wants disk.
    let mut bn = BentoNetwork::build(105, 1, MiddleboxPolicy::no_storage(), registry);
    let (client, conn, container, _inv, _shut) = establish(&mut bn, ImageKind::Plain);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("echo-store").with_disk(1 << 20),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(!n.upload_ok(conn));
        assert!(n.rejection(conn).unwrap().contains("not offered"));
    });
}

#[test]
fn unknown_function_rejected() {
    let mut bn = BentoNetwork::build(106, 1, MiddleboxPolicy::permissive(), registry);
    let (client, conn, container, _inv, _shut) = establish(&mut bn, ImageKind::Plain);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("not-in-registry"),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(n.rejection(conn).unwrap().contains("unknown function"));
    });
}

#[test]
fn sandbox_enforces_manifest_at_runtime() {
    let mut bn = BentoNetwork::build(107, 1, MiddleboxPolicy::permissive(), registry);
    let (client, conn, container, inv, _shut) = establish(&mut bn, ImageKind::Plain);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            // The probe asks only for Connect; not Write.
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("probe").with_syscalls([SyscallClass::Connect]),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert!(n.upload_ok(conn), "{:?}", n.bento_events);
            n.bento.invoke(ctx, &mut n.tor, conn, inv, vec![]);
        });
    bn.net.sim.run_until(secs(14));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        // 'W' = write refused by seccomp; 'C' = connect refused by the
        // exit-policy-derived net rules.
        assert_eq!(n.output_bytes(conn), b"WC");
    });
}

#[test]
fn policy_query_returns_node_policy() {
    let mut bn = BentoNetwork::build(108, 1, MiddleboxPolicy::no_storage(), registry);
    let client = bn.add_bento_client("alice");
    bn.net.sim.run_until(secs(2));
    let conn = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            let c = n.bento.connect_box(ctx, &mut n.tor, &boxes[0]).unwrap();
            n.bento.get_policy(ctx, &mut n.tor, c);
            c
        });
    bn.net.sim.run_until(secs(6));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        let got = n.bento_events.iter().find_map(|e| match e {
            BentoEvent::Policy(c, p) if *c == conn => Some(p.clone()),
            _ => None,
        });
        let p = got.expect("policy received");
        assert_eq!(p, MiddleboxPolicy::no_storage());
        assert!(!p.syscalls.contains(&SyscallClass::Write));
    });
}

#[test]
fn invocation_token_shareable_across_clients() {
    let mut bn = BentoNetwork::build(109, 1, MiddleboxPolicy::permissive(), registry);
    let (alice, conn_a, container, inv, _shut) = establish(&mut bn, ImageKind::Plain);
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let spec = FunctionSpec {
            params: vec![],
            manifest: Manifest::minimal("echo"),
        };
        n.bento.upload(ctx, &mut n.tor, conn_a, container, &spec);
    });
    bn.net.sim.run_until(secs(11));
    // Bob receives the invocation token out of band and uses the function.
    let bob = bn.add_bento_client("bob");
    bn.net.sim.run_until(secs(13));
    let conn_b = bn.net.sim.with_node::<BentoClientNode, _>(bob, |n, ctx| {
        let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
            .into_iter()
            .cloned()
            .collect();
        n.bento.connect_box(ctx, &mut n.tor, &boxes[0]).unwrap()
    });
    bn.net.sim.run_until(secs(16));
    bn.net.sim.with_node::<BentoClientNode, _>(bob, |n, ctx| {
        n.bento
            .invoke(ctx, &mut n.tor, conn_b, inv, b"from bob".to_vec());
    });
    bn.net.sim.run_until(secs(20));
    bn.net.sim.with_node::<BentoClientNode, _>(bob, |n, _| {
        assert_eq!(n.output_bytes(conn_b), b"from bob");
    });
}

#[test]
fn function_limit_enforced() {
    let mut policy = MiddleboxPolicy::permissive();
    policy.max_functions = 1;
    let mut bn = BentoNetwork::build(110, 1, policy, registry);
    let (client, conn, _c1, _inv, _shut) = establish(&mut bn, ImageKind::Plain);
    // A second container request must be refused.
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento
                .request_container(ctx, &mut n.tor, conn, ImageKind::Plain);
        });
    bn.net.sim.run_until(secs(11));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert_eq!(n.rejection(conn), Some("function limit reached"));
    });
}

#[test]
fn second_upload_to_same_container_rejected() {
    let mut bn = BentoNetwork::build(111, 1, MiddleboxPolicy::permissive(), registry);
    let (client, conn, container, _inv, _shut) = establish(&mut bn, ImageKind::Plain);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("echo"),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert!(n.upload_ok(conn));
            // A second upload (e.g. trying to swap the code under the same
            // tokens) must be refused.
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("probe"),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(14));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert_eq!(n.rejection(conn), Some("container not accepting uploads"));
    });
}

#[test]
fn cross_client_sealed_upload_rejected() {
    // Bob opens his own attested channel to the same box, then tries to
    // install code into *Alice's* container: his payload is sealed under
    // the wrong channel and the conclave refuses it.
    let mut bn = BentoNetwork::build(112, 1, MiddleboxPolicy::permissive(), registry);
    let (_alice, _conn_a, alice_container, _inv, _shut) = establish(&mut bn, ImageKind::Sgx);
    let bob = bn.add_bento_client("bob");
    bn.net.sim.run_until(secs(10));
    let conn_b = bn.net.sim.with_node::<BentoClientNode, _>(bob, |n, ctx| {
        let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
            .into_iter()
            .cloned()
            .collect();
        n.bento.connect_box(ctx, &mut n.tor, &boxes[0]).unwrap()
    });
    bn.net.sim.run_until(secs(13));
    bn.net.sim.with_node::<BentoClientNode, _>(bob, |n, ctx| {
        n.bento
            .request_container(ctx, &mut n.tor, conn_b, ImageKind::Sgx);
    });
    bn.net.sim.run_until(secs(17));
    bn.net.sim.with_node::<BentoClientNode, _>(bob, |n, ctx| {
        assert!(
            n.container_ready(conn_b).is_some(),
            "bob has his own channel"
        );
        // Target Alice's container with Bob's channel.
        let spec = FunctionSpec {
            params: vec![],
            manifest: Manifest::minimal("echo").with_sgx(),
        };
        n.bento
            .upload(ctx, &mut n.tor, conn_b, alice_container, &spec);
    });
    bn.net.sim.run_until(secs(21));
    bn.net.sim.with_node::<BentoClientNode, _>(bob, |n, _| {
        assert_eq!(n.rejection(conn_b), Some("sealed payload failed to open"));
    });
}

#[test]
fn outputs_route_to_most_recent_invoker() {
    // Two clients share an invocation token; outputs follow whoever invoked
    // last (§5.3's sharing semantics).
    let mut bn = BentoNetwork::build(113, 1, MiddleboxPolicy::permissive(), registry);
    let (alice, conn_a, container, inv, _shut) = establish(&mut bn, ImageKind::Plain);
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        let spec = FunctionSpec {
            params: vec![],
            manifest: Manifest::minimal("echo"),
        };
        n.bento.upload(ctx, &mut n.tor, conn_a, container, &spec);
    });
    bn.net.sim.run_until(secs(11));
    let bob = bn.add_bento_client("bob");
    bn.net.sim.run_until(secs(13));
    let conn_b = bn.net.sim.with_node::<BentoClientNode, _>(bob, |n, ctx| {
        let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
            .into_iter()
            .cloned()
            .collect();
        n.bento.connect_box(ctx, &mut n.tor, &boxes[0]).unwrap()
    });
    bn.net.sim.run_until(secs(16));
    // Alice invokes, then Bob invokes: each gets their own output.
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, ctx| {
        n.bento
            .invoke(ctx, &mut n.tor, conn_a, inv, b"for alice".to_vec());
    });
    bn.net.sim.run_until(secs(19));
    bn.net.sim.with_node::<BentoClientNode, _>(bob, |n, ctx| {
        n.bento
            .invoke(ctx, &mut n.tor, conn_b, inv, b"for bob".to_vec());
    });
    bn.net.sim.run_until(secs(24));
    bn.net.sim.with_node::<BentoClientNode, _>(alice, |n, _| {
        assert_eq!(n.output_bytes(conn_a), b"for alice");
    });
    bn.net.sim.with_node::<BentoClientNode, _>(bob, |n, _| {
        assert_eq!(n.output_bytes(conn_b), b"for bob");
    });
}

#[test]
fn resource_exhaustion_kills_function_not_box() {
    let mut bn = BentoNetwork::build(114, 1, MiddleboxPolicy::permissive(), registry);
    let (client, conn, container, inv, _shut) = establish(&mut bn, ImageKind::Plain);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("hog"),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert!(n.upload_ok(conn));
            n.bento.invoke(ctx, &mut n.tor, conn, inv, vec![]);
        });
    bn.net.sim.run_until(secs(14));
    // The hog's container was OOM/CPU-killed; its output never escaped.
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(
            n.output_bytes(conn).is_empty(),
            "killed function emits nothing"
        );
    });
    let bx = bn.boxes[0];
    bn.net.sim.with_node::<bento::BentoBoxNode, _>(bx, |n, _| {
        assert_eq!(n.bento.live_functions(), 0, "container torn down");
    });
    // The box still serves new work: the same client installs echo.
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento
                .request_container(ctx, &mut n.tor, conn, ImageKind::Plain);
        });
    bn.net.sim.run_until(secs(18));
    let (c2, inv2, _s2) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, _| {
            n.bento_events.iter().rev().find_map(|e| match e {
                BentoEvent::ContainerReady {
                    container,
                    invocation,
                    shutdown,
                    ..
                } => Some((*container, *invocation, *shutdown)),
                _ => None,
            })
        })
        .expect("fresh container after the kill");
    assert_ne!(c2, container);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("echo"),
            };
            n.bento.upload(ctx, &mut n.tor, conn, c2, &spec);
        });
    bn.net.sim.run_until(secs(22));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento
                .invoke(ctx, &mut n.tor, conn, inv2, b"box is fine".to_vec());
        });
    bn.net.sim.run_until(secs(26));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert_eq!(n.output_bytes(conn), b"box is fine");
    });
}

#[test]
fn network_budget_kills_flooder() {
    // Outputs travel on the client's session; charge_network must stop the
    // function once its cgroup network budget is gone.
    let mut bn = BentoNetwork::build(115, 1, MiddleboxPolicy::permissive(), registry);
    // The operator caps each function at 1 MB of cumulative traffic.
    let bx0 = bn.boxes[0];
    bn.net.sim.with_node::<bento::BentoBoxNode, _>(bx0, |n, _| {
        n.bento.set_function_network_budget(1 << 20);
    });
    let (client, conn, container, inv, _shut) = establish(&mut bn, ImageKind::Plain);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("flooder"),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert!(n.upload_ok(conn));
            n.bento.invoke(ctx, &mut n.tor, conn, inv, vec![]);
        });
    // Note: applying actions stops as soon as the container dies, so only
    // the data within budget ever leaves the box.
    bn.net.sim.run_until(secs(40));
    let bx = bn.boxes[0];
    bn.net.sim.with_node::<bento::BentoBoxNode, _>(bx, |n, _| {
        assert_eq!(n.bento.live_functions(), 0, "flooder killed");
    });
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        let got = n.output_bytes(conn).len() as u64;
        // Budget 1 MB; attempted 100 MB. At most ~budget + one action's
        // worth escaped before the kill.
        assert!(got <= (1 << 20) + 512 * 1024, "flood truncated, got {got}");
    });
}

#[test]
fn box_crash_recovers_functions_from_sealed_storage() {
    // Upload echo, crash the whole box, restart it: the function record is
    // replayed from the sealed store once the reborn onion proxy has a
    // consensus, and the client re-attaches with its ORIGINAL tokens.
    let mut bn = BentoNetwork::build(108, 1, MiddleboxPolicy::permissive(), registry);
    let (client, conn, container, inv, _shut) = establish(&mut bn, ImageKind::Plain);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("echo"),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert!(n.upload_ok(conn), "upload accepted: {:?}", n.bento_events);
            n.bento
                .invoke(ctx, &mut n.tor, conn, inv, b"before crash".to_vec());
        });
    bn.net.sim.run_until(secs(14));
    let bx = bn.boxes[0];
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert_eq!(n.output_bytes(conn), b"before crash");
    });
    bn.net.sim.with_node::<bento::BentoBoxNode, _>(bx, |n, _| {
        assert_eq!(n.bento.live_functions(), 1);
        assert_eq!(n.bento.sealed_functions(), 1, "record sealed to disk");
    });

    // The box dies and comes back four seconds later.
    bn.net
        .sim
        .inject_fault(secs(16), simnet::FaultAction::Crash(bx));
    bn.net
        .sim
        .inject_fault(secs(20), simnet::FaultAction::Restart(bx));
    // Give the reborn box time to re-register its relay, re-fetch the
    // consensus, and replay the sealed store.
    bn.net.sim.run_until(secs(40));
    bn.net.sim.with_node::<bento::BentoBoxNode, _>(bx, |n, _| {
        assert_eq!(
            n.bento.live_functions(),
            1,
            "function restored from sealed storage"
        );
    });

    // The client's old session died with the box; it reconnects and
    // invokes with the token minted before the crash.
    let conn2 = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            n.bento
                .connect_box(ctx, &mut n.tor, &boxes[0])
                .expect("reconnect")
        });
    bn.net.sim.run_until(secs(45));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento
                .invoke(ctx, &mut n.tor, conn2, inv, b"after crash".to_vec());
        });
    bn.net.sim.run_until(secs(50));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert_eq!(
            n.output_bytes(conn2),
            b"after crash",
            "original invocation token honoured by the recovered function"
        );
    });
}

#[test]
fn intentional_shutdown_is_not_resurrected_by_recovery() {
    // Shutdown erases the sealed record, so a crash + restart after an
    // intentional teardown must NOT bring the function back.
    let mut bn = BentoNetwork::build(109, 1, MiddleboxPolicy::permissive(), registry);
    let (client, conn, container, _inv, shut) = establish(&mut bn, ImageKind::Plain);
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: Manifest::minimal("echo"),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net.sim.run_until(secs(11));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            assert!(n.upload_ok(conn), "upload accepted: {:?}", n.bento_events);
            n.bento.shutdown(ctx, &mut n.tor, conn, shut);
        });
    bn.net.sim.run_until(secs(14));
    let bx = bn.boxes[0];
    bn.net.sim.with_node::<bento::BentoBoxNode, _>(bx, |n, _| {
        assert_eq!(n.bento.live_functions(), 0);
        assert_eq!(n.bento.sealed_functions(), 0, "sealed record erased");
    });
    bn.net
        .sim
        .inject_fault(secs(16), simnet::FaultAction::Crash(bx));
    bn.net
        .sim
        .inject_fault(secs(20), simnet::FaultAction::Restart(bx));
    bn.net.sim.run_until(secs(40));
    bn.net.sim.with_node::<bento::BentoBoxNode, _>(bx, |n, _| {
        assert_eq!(n.bento.live_functions(), 0, "nothing resurrected");
    });
}
