//! Property-based tests: filesystem quota invariants and policy evaluation
//! under arbitrary operation sequences.

use proptest::prelude::*;
use sandbox::fs::MemFs;
use sandbox::netrules::{NetRule, NetRules};
use sandbox::seccomp::{SeccompFilter, SyscallClass};

#[derive(Debug, Clone)]
enum FsOp {
    Write(String, Vec<u8>),
    Append(String, Vec<u8>),
    Unlink(String),
    Clear,
}

fn fs_op() -> impl Strategy<Value = FsOp> {
    let path =
        prop::sample::select(vec!["a", "b", "dir/c", "../x", "d/e/f"]).prop_map(|s| s.to_string());
    let data = proptest::collection::vec(any::<u8>(), 0..200);
    prop_oneof![
        (path.clone(), data.clone()).prop_map(|(p, d)| FsOp::Write(p, d)),
        (path.clone(), data).prop_map(|(p, d)| FsOp::Append(p, d)),
        path.prop_map(FsOp::Unlink),
        Just(FsOp::Clear),
    ]
}

proptest! {
    /// Under any op sequence: usage equals the sum of live file sizes and
    /// never exceeds the quota; file count never exceeds its quota.
    #[test]
    fn memfs_accounting_invariant(ops in proptest::collection::vec(fs_op(), 0..64)) {
        let mut fs = MemFs::new(512, 3);
        for op in ops {
            match op {
                FsOp::Write(p, d) => { let _ = fs.write(&p, &d); }
                FsOp::Append(p, d) => { let _ = fs.append(&p, &d); }
                FsOp::Unlink(p) => { let _ = fs.unlink(&p); }
                FsOp::Clear => fs.clear(),
            }
            let live: u64 = fs
                .list()
                .iter()
                .map(|p| fs.read(p).unwrap().len() as u64)
                .sum();
            prop_assert_eq!(fs.bytes_used(), live);
            prop_assert!(fs.bytes_used() <= 512);
            prop_assert!(fs.file_count() <= 3);
        }
    }

    /// First-match-wins evaluation is order-sensitive but total: every
    /// (host, port) gets exactly one verdict, and appending a trailing
    /// accept-all only ever turns rejects into accepts.
    #[test]
    fn netrules_monotone_under_default_flip(
        rules in proptest::collection::vec(
            (any::<bool>(), proptest::option::of(0u32..8), 0u16..100, 0u16..100), 0..8),
        host in 0u32..8, port in 0u16..100)
    {
        let rules: Vec<NetRule> = rules
            .into_iter()
            .map(|(accept, h, a, b)| NetRule {
                accept,
                host: h,
                ports: (a.min(b), a.max(b)),
            })
            .collect();
        let base = NetRules::from_rules(rules.clone());
        let verdict = base.allows(host, port);
        let mut widened_rules = rules;
        widened_rules.push(NetRule::accept_any());
        let widened = NetRules::from_rules(widened_rules);
        let widened_verdict = widened.allows(host, port);
        prop_assert!(widened_verdict || !verdict, "widening never revokes an accept");
    }

    /// Seccomp: permits(c) is consistent with check(c), and the violation
    /// log grows exactly on denials.
    #[test]
    fn seccomp_log_matches_denials(default_allow: bool,
                                   overrides in proptest::collection::vec(
                                       (0u8..11, any::<bool>()), 0..8),
                                   calls in proptest::collection::vec(0u8..11, 0..32)) {
        let mut f = if default_allow {
            SeccompFilter::allow_all()
        } else {
            SeccompFilter::deny_all()
        };
        for (id, allow) in overrides {
            let class = SyscallClass::from_id(id).unwrap();
            f = if allow { f.allow(class) } else { f.deny(class) };
        }
        let mut denials = 0;
        for id in calls {
            let class = SyscallClass::from_id(id).unwrap();
            let permitted = f.permits(class);
            prop_assert_eq!(f.check(class), permitted);
            if !permitted {
                denials += 1;
            }
        }
        prop_assert_eq!(f.violations().len(), denials);
    }
}
