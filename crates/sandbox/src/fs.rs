//! A chroot-like in-memory filesystem with quotas.
//!
//! Each container gets its own [`MemFs`]: functions can only ever name
//! paths inside it (the chroot property is structural — there is no parent
//! to escape to), and total bytes and file counts are capped. Paths are
//! normalized so `..` components cannot climb out.

use std::collections::BTreeMap;

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No such file.
    NotFound(String),
    /// Writing would exceed the byte quota.
    QuotaExceeded {
        /// Bytes requested beyond the current usage.
        requested: u64,
        /// The byte quota.
        quota: u64,
    },
    /// Creating would exceed the file-count quota.
    TooManyFiles(usize),
    /// The path is empty or otherwise invalid.
    BadPath(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::QuotaExceeded { requested, quota } => {
                write!(f, "write of {requested} bytes exceeds quota {quota}")
            }
            FsError::TooManyFiles(n) => write!(f, "file count quota {n} reached"),
            FsError::BadPath(p) => write!(f, "invalid path: {p:?}"),
        }
    }
}

impl std::error::Error for FsError {}

/// A quota-enforcing in-memory filesystem.
#[derive(Debug, Clone)]
pub struct MemFs {
    files: BTreeMap<String, Vec<u8>>,
    byte_quota: u64,
    file_quota: usize,
    bytes_used: u64,
}

/// Normalize a path: strip leading slashes, resolve `.`/`..` without ever
/// climbing above the root.
fn normalize(path: &str) -> Result<String, FsError> {
    let mut parts: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                // Attempting to climb above the chroot silently clamps to
                // the root, exactly like a real chroot.
                parts.pop();
            }
            other => parts.push(other),
        }
    }
    if parts.is_empty() {
        return Err(FsError::BadPath(path.to_string()));
    }
    Ok(parts.join("/"))
}

impl MemFs {
    /// A filesystem with the given quotas.
    pub fn new(byte_quota: u64, file_quota: usize) -> MemFs {
        MemFs {
            files: BTreeMap::new(),
            byte_quota,
            file_quota,
            bytes_used: 0,
        }
    }

    /// Bytes currently stored.
    pub fn bytes_used(&self) -> u64 {
        self.bytes_used
    }

    /// The byte quota.
    pub fn byte_quota(&self) -> u64 {
        self.byte_quota
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Write (create or replace) a file.
    pub fn write(&mut self, path: &str, data: &[u8]) -> Result<(), FsError> {
        let path = normalize(path)?;
        let old = self.files.get(&path).map(|f| f.len() as u64).unwrap_or(0);
        if !self.files.contains_key(&path) && self.files.len() >= self.file_quota {
            return Err(FsError::TooManyFiles(self.file_quota));
        }
        let new_total = self.bytes_used - old + data.len() as u64;
        if new_total > self.byte_quota {
            return Err(FsError::QuotaExceeded {
                requested: data.len() as u64,
                quota: self.byte_quota,
            });
        }
        self.bytes_used = new_total;
        self.files.insert(path, data.to_vec());
        Ok(())
    }

    /// Append to a file (creating it if absent).
    pub fn append(&mut self, path: &str, data: &[u8]) -> Result<(), FsError> {
        let path = normalize(path)?;
        if !self.files.contains_key(&path) && self.files.len() >= self.file_quota {
            return Err(FsError::TooManyFiles(self.file_quota));
        }
        if self.bytes_used + data.len() as u64 > self.byte_quota {
            return Err(FsError::QuotaExceeded {
                requested: data.len() as u64,
                quota: self.byte_quota,
            });
        }
        self.bytes_used += data.len() as u64;
        self.files.entry(path).or_default().extend_from_slice(data);
        Ok(())
    }

    /// Read a file.
    pub fn read(&self, path: &str) -> Result<&[u8], FsError> {
        let path = normalize(path)?;
        self.files
            .get(&path)
            .map(|v| v.as_slice())
            .ok_or(FsError::NotFound(path))
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        normalize(path)
            .map(|p| self.files.contains_key(&p))
            .unwrap_or(false)
    }

    /// Delete a file.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        let path = normalize(path)?;
        match self.files.remove(&path) {
            Some(data) => {
                self.bytes_used -= data.len() as u64;
                Ok(())
            }
            None => Err(FsError::NotFound(path)),
        }
    }

    /// List all paths (sorted).
    pub fn list(&self) -> Vec<&str> {
        self.files.keys().map(|s| s.as_str()).collect()
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.files.clear();
        self.bytes_used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut fs = MemFs::new(1024, 16);
        fs.write("/data/file.bin", b"hello").unwrap();
        assert_eq!(fs.read("data/file.bin").unwrap(), b"hello");
        assert_eq!(fs.bytes_used(), 5);
        assert_eq!(fs.file_count(), 1);
    }

    #[test]
    fn dotdot_cannot_escape_chroot() {
        let mut fs = MemFs::new(1024, 16);
        fs.write("../../etc/passwd", b"root").unwrap();
        // The write landed inside the chroot, not outside.
        assert_eq!(fs.read("etc/passwd").unwrap(), b"root");
        assert_eq!(fs.list(), vec!["etc/passwd"]);
        // A path that resolves to the root itself is invalid.
        assert!(matches!(fs.write("../..", b"x"), Err(FsError::BadPath(_))));
    }

    #[test]
    fn byte_quota_enforced_and_freed_on_unlink() {
        let mut fs = MemFs::new(10, 16);
        fs.write("a", b"12345").unwrap();
        assert!(matches!(
            fs.write("b", b"123456"),
            Err(FsError::QuotaExceeded { .. })
        ));
        fs.unlink("a").unwrap();
        fs.write("b", b"1234567890").unwrap();
        assert_eq!(fs.bytes_used(), 10);
    }

    #[test]
    fn overwrite_reuses_quota() {
        let mut fs = MemFs::new(10, 16);
        fs.write("a", b"1234567890").unwrap();
        // Replacing with a smaller file must succeed.
        fs.write("a", b"123").unwrap();
        assert_eq!(fs.bytes_used(), 3);
    }

    #[test]
    fn file_count_quota() {
        let mut fs = MemFs::new(1024, 2);
        fs.write("a", b"1").unwrap();
        fs.write("b", b"2").unwrap();
        assert!(matches!(fs.write("c", b"3"), Err(FsError::TooManyFiles(2))));
        // Overwriting an existing file is fine.
        fs.write("a", b"new").unwrap();
    }

    #[test]
    fn append_accumulates() {
        let mut fs = MemFs::new(100, 4);
        fs.append("log", b"one ").unwrap();
        fs.append("log", b"two").unwrap();
        assert_eq!(fs.read("log").unwrap(), b"one two");
        assert_eq!(fs.bytes_used(), 7);
    }

    #[test]
    fn missing_file_errors() {
        let mut fs = MemFs::new(100, 4);
        assert!(matches!(fs.read("nope"), Err(FsError::NotFound(_))));
        assert!(matches!(fs.unlink("nope"), Err(FsError::NotFound(_))));
        assert!(!fs.exists("nope"));
    }

    #[test]
    fn clear_resets_usage() {
        let mut fs = MemFs::new(100, 4);
        fs.write("a", b"data").unwrap();
        fs.clear();
        assert_eq!(fs.bytes_used(), 0);
        assert_eq!(fs.file_count(), 0);
    }

    #[test]
    fn normalization_is_consistent() {
        let mut fs = MemFs::new(100, 4);
        fs.write("/a/./b/../c", b"x").unwrap();
        assert!(fs.exists("a/c"));
        assert_eq!(fs.read("a/c").unwrap(), b"x");
    }
}
