//! cgroup-style resource accounting with hard limits.
//!
//! Each container charges memory, CPU time, disk and network bytes against
//! its own [`CGroup`]; the Bento server additionally charges the same usage
//! against one *aggregate* group so that all functions together can be held
//! under a machine-wide cap, keeping the co-resident Tor relay responsive
//! (§5.3, §6.2 of the paper).

/// Hard limits for one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum resident memory, bytes.
    pub memory: u64,
    /// Maximum cumulative CPU time, milliseconds.
    pub cpu_ms: u64,
    /// Maximum disk bytes written (cumulative).
    pub disk: u64,
    /// Maximum network bytes sent+received (cumulative).
    pub network: u64,
}

impl ResourceLimits {
    /// The paper's nominal per-function container: 128 MiB of memory and
    /// generous cumulative budgets (the network budget must accommodate a
    /// long-lived function — e.g. a Browser serving a thousand padded page
    /// loads — while still bounding a deliberate flooder; operators tune it
    /// with `BentoServer::set_function_network_budget`).
    pub fn default_function() -> ResourceLimits {
        ResourceLimits {
            memory: 128 << 20,
            cpu_ms: 600_000,
            disk: 256 << 20,
            network: 1 << 34,
        }
    }

    /// An aggregate cap for all functions on one Bento box.
    pub fn default_aggregate() -> ResourceLimits {
        ResourceLimits {
            memory: 1 << 30,
            cpu_ms: 3_600_000,
            disk: 1 << 30,
            network: 1 << 36,
        }
    }

    /// Effectively unlimited.
    pub fn unlimited() -> ResourceLimits {
        ResourceLimits {
            memory: u64::MAX,
            cpu_ms: u64::MAX,
            disk: u64::MAX,
            network: u64::MAX,
        }
    }
}

/// Current usage of one group.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Resident memory, bytes.
    pub memory: u64,
    /// Cumulative CPU milliseconds.
    pub cpu_ms: u64,
    /// Cumulative disk bytes written.
    pub disk: u64,
    /// Cumulative network bytes.
    pub network: u64,
    /// High-water mark of resident memory.
    pub memory_peak: u64,
}

/// Which resource a charge exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceError {
    /// Memory limit hit (the container would be OOM-killed).
    OutOfMemory,
    /// CPU budget exhausted.
    CpuExceeded,
    /// Disk budget exhausted.
    DiskExceeded,
    /// Network budget exhausted.
    NetworkExceeded,
}

impl std::fmt::Display for ResourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceError::OutOfMemory => write!(f, "memory limit exceeded (OOM)"),
            ResourceError::CpuExceeded => write!(f, "CPU budget exhausted"),
            ResourceError::DiskExceeded => write!(f, "disk budget exhausted"),
            ResourceError::NetworkExceeded => write!(f, "network budget exhausted"),
        }
    }
}

impl std::error::Error for ResourceError {}

/// One accounting group.
#[derive(Debug, Clone)]
pub struct CGroup {
    limits: ResourceLimits,
    usage: ResourceUsage,
}

impl CGroup {
    /// A group with the given limits.
    pub fn new(limits: ResourceLimits) -> CGroup {
        CGroup {
            limits,
            usage: ResourceUsage::default(),
        }
    }

    /// Current usage.
    pub fn usage(&self) -> ResourceUsage {
        self.usage
    }

    /// The limits.
    pub fn limits(&self) -> ResourceLimits {
        self.limits
    }

    /// Charge `bytes` of additional resident memory.
    pub fn alloc_memory(&mut self, bytes: u64) -> Result<(), ResourceError> {
        let new = self.usage.memory.saturating_add(bytes);
        if new > self.limits.memory {
            return Err(ResourceError::OutOfMemory);
        }
        self.usage.memory = new;
        self.usage.memory_peak = self.usage.memory_peak.max(new);
        Ok(())
    }

    /// Release resident memory.
    pub fn free_memory(&mut self, bytes: u64) {
        self.usage.memory = self.usage.memory.saturating_sub(bytes);
    }

    /// Charge CPU time.
    pub fn charge_cpu(&mut self, ms: u64) -> Result<(), ResourceError> {
        let new = self.usage.cpu_ms.saturating_add(ms);
        if new > self.limits.cpu_ms {
            return Err(ResourceError::CpuExceeded);
        }
        self.usage.cpu_ms = new;
        Ok(())
    }

    /// Charge disk bytes.
    pub fn charge_disk(&mut self, bytes: u64) -> Result<(), ResourceError> {
        let new = self.usage.disk.saturating_add(bytes);
        if new > self.limits.disk {
            return Err(ResourceError::DiskExceeded);
        }
        self.usage.disk = new;
        Ok(())
    }

    /// Charge network bytes.
    pub fn charge_network(&mut self, bytes: u64) -> Result<(), ResourceError> {
        let new = self.usage.network.saturating_add(bytes);
        if new > self.limits.network {
            return Err(ResourceError::NetworkExceeded);
        }
        self.usage.network = new;
        Ok(())
    }

    /// Release all resident memory (container teardown); cumulative
    /// counters are preserved for reporting.
    pub fn release_all_memory(&mut self) {
        self.usage.memory = 0;
    }
}

/// Charge the same amount against a container group *and* its aggregate
/// parent; the charge fails (and is rolled back) if either refuses.
pub fn charge_both<F>(child: &mut CGroup, parent: &mut CGroup, f: F) -> Result<(), ResourceError>
where
    F: Fn(&mut CGroup) -> Result<(), ResourceError>,
{
    f(child)?;
    match f(parent) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Roll back is the caller's concern for memory; cumulative
            // counters cannot meaningfully roll back, so we simply report.
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_alloc_free_and_peak() {
        let mut g = CGroup::new(ResourceLimits {
            memory: 100,
            ..ResourceLimits::unlimited()
        });
        g.alloc_memory(60).unwrap();
        g.alloc_memory(40).unwrap();
        assert_eq!(g.usage().memory, 100);
        assert_eq!(g.alloc_memory(1), Err(ResourceError::OutOfMemory));
        g.free_memory(50);
        assert_eq!(g.usage().memory, 50);
        g.alloc_memory(10).unwrap();
        assert_eq!(g.usage().memory_peak, 100);
    }

    #[test]
    fn cpu_budget_is_cumulative() {
        let mut g = CGroup::new(ResourceLimits {
            cpu_ms: 100,
            ..ResourceLimits::unlimited()
        });
        for _ in 0..10 {
            g.charge_cpu(10).unwrap();
        }
        assert_eq!(g.charge_cpu(1), Err(ResourceError::CpuExceeded));
    }

    #[test]
    fn disk_and_network_budgets() {
        let mut g = CGroup::new(ResourceLimits {
            disk: 10,
            network: 20,
            ..ResourceLimits::unlimited()
        });
        g.charge_disk(10).unwrap();
        assert_eq!(g.charge_disk(1), Err(ResourceError::DiskExceeded));
        g.charge_network(20).unwrap();
        assert_eq!(g.charge_network(1), Err(ResourceError::NetworkExceeded));
    }

    #[test]
    fn aggregate_cap_binds_even_when_child_would_allow() {
        // §6.2: many functions each within their own limits must still not
        // starve the machine.
        let mut parent = CGroup::new(ResourceLimits {
            memory: 150,
            ..ResourceLimits::unlimited()
        });
        let mut a = CGroup::new(ResourceLimits {
            memory: 100,
            ..ResourceLimits::unlimited()
        });
        let mut b = CGroup::new(ResourceLimits {
            memory: 100,
            ..ResourceLimits::unlimited()
        });
        charge_both(&mut a, &mut parent, |g| g.alloc_memory(100)).unwrap();
        let r = charge_both(&mut b, &mut parent, |g| g.alloc_memory(100));
        assert_eq!(r, Err(ResourceError::OutOfMemory));
    }

    #[test]
    fn saturating_charges_do_not_wrap() {
        let mut g = CGroup::new(ResourceLimits::unlimited());
        g.charge_cpu(u64::MAX).unwrap();
        g.charge_cpu(u64::MAX).unwrap(); // saturates, still within u64::MAX
        assert_eq!(g.usage().cpu_ms, u64::MAX);
    }

    #[test]
    fn release_all_memory_keeps_cumulative_counters() {
        let mut g = CGroup::new(ResourceLimits::unlimited());
        g.alloc_memory(100).unwrap();
        g.charge_cpu(5).unwrap();
        g.release_all_memory();
        assert_eq!(g.usage().memory, 0);
        assert_eq!(g.usage().cpu_ms, 5);
        assert_eq!(g.usage().memory_peak, 100);
    }
}
