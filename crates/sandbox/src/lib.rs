//! # sandbox — simulated OS-level isolation for Bento functions
//!
//! The Bento paper (§5.3) isolates each client function in a container:
//! Linux cgroups and namespaces bound resource use, a chrooted filesystem
//! confines file access, seccomp filters restrict system calls, and
//! iptables rules derived from the relay's exit policy restrict network
//! access. This crate reproduces those decision points as a library:
//!
//! * [`fs::MemFs`] — a quota-enforcing, chroot-like in-memory filesystem.
//! * [`cgroup::CGroup`] — memory/CPU/disk/bandwidth accounting with hard
//!   limits and OOM-style failures, plus hierarchical aggregation so the
//!   Bento server can cap *total* function usage (§6.2's defense against
//!   function-flooding).
//! * [`seccomp::SeccompFilter`] — an allow/deny syscall filter with a
//!   violation log.
//! * [`netrules::NetRules`] — iptables-style first-match network rules.
//! * [`container::Container`] — ties the above together behind a mediated
//!   syscall surface; every side effect a function can have passes through
//!   [`container::Container::syscall`].
//!
//! Everything is a *real* policy evaluation — the same checks a kernel
//! would make — with simulated costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cgroup;
pub mod container;
pub mod fs;
pub mod netrules;
pub mod seccomp;

pub use cgroup::{CGroup, ResourceError, ResourceLimits, ResourceUsage};
pub use container::{Container, ContainerError, ContainerState, Syscall, SyscallOutcome};
pub use fs::{FsError, MemFs};
pub use netrules::{NetRule, NetRules};
pub use seccomp::{SeccompFilter, SyscallClass};
