//! seccomp-style syscall filtering.
//!
//! The paper lets Bento operators "apply system call filters in the form of
//! seccomp policies to disallow a function's use of specific system calls,
//! such as fork and execve" (§5.3). [`SeccompFilter`] is that policy: a
//! default action plus per-class overrides, with a violation log the
//! operator can inspect.

use std::collections::BTreeMap;

/// Classes of system calls a function can attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SyscallClass {
    /// Open a file in the container filesystem.
    Open,
    /// Read file contents.
    Read,
    /// Write/append file contents.
    Write,
    /// Delete a file.
    Unlink,
    /// Open an outbound network connection.
    Connect,
    /// Listen for inbound connections.
    Listen,
    /// Spawn a process.
    Fork,
    /// Execute a program image.
    Exec,
    /// Read the clock.
    GetTime,
    /// Read entropy.
    GetRandom,
    /// Invoke the Stem control-port firewall (Tor control).
    Stem,
}

impl SyscallClass {
    /// Every class, for exhaustive policies.
    pub const ALL: [SyscallClass; 11] = [
        SyscallClass::Open,
        SyscallClass::Read,
        SyscallClass::Write,
        SyscallClass::Unlink,
        SyscallClass::Connect,
        SyscallClass::Listen,
        SyscallClass::Fork,
        SyscallClass::Exec,
        SyscallClass::GetTime,
        SyscallClass::GetRandom,
        SyscallClass::Stem,
    ];

    /// Stable name (manifests, policy documents).
    pub fn name(self) -> &'static str {
        match self {
            SyscallClass::Open => "open",
            SyscallClass::Read => "read",
            SyscallClass::Write => "write",
            SyscallClass::Unlink => "unlink",
            SyscallClass::Connect => "connect",
            SyscallClass::Listen => "listen",
            SyscallClass::Fork => "fork",
            SyscallClass::Exec => "exec",
            SyscallClass::GetTime => "gettime",
            SyscallClass::GetRandom => "getrandom",
            SyscallClass::Stem => "stem",
        }
    }

    /// Parse a stable name.
    pub fn from_name(s: &str) -> Option<SyscallClass> {
        SyscallClass::ALL.iter().copied().find(|c| c.name() == s)
    }

    /// Stable wire id.
    pub fn id(self) -> u8 {
        match self {
            SyscallClass::Open => 0,
            SyscallClass::Read => 1,
            SyscallClass::Write => 2,
            SyscallClass::Unlink => 3,
            SyscallClass::Connect => 4,
            SyscallClass::Listen => 5,
            SyscallClass::Fork => 6,
            SyscallClass::Exec => 7,
            SyscallClass::GetTime => 8,
            SyscallClass::GetRandom => 9,
            SyscallClass::Stem => 10,
        }
    }

    /// Parse a stable wire id.
    pub fn from_id(id: u8) -> Option<SyscallClass> {
        SyscallClass::ALL.iter().copied().find(|c| c.id() == id)
    }
}

/// A seccomp-style filter: default action plus overrides.
#[derive(Debug, Clone)]
pub struct SeccompFilter {
    default_allow: bool,
    overrides: BTreeMap<SyscallClass, bool>,
    violations: Vec<SyscallClass>,
}

impl SeccompFilter {
    /// Allow everything by default.
    pub fn allow_all() -> SeccompFilter {
        SeccompFilter {
            default_allow: true,
            overrides: BTreeMap::new(),
            violations: Vec::new(),
        }
    }

    /// Deny everything by default.
    pub fn deny_all() -> SeccompFilter {
        SeccompFilter {
            default_allow: false,
            overrides: BTreeMap::new(),
            violations: Vec::new(),
        }
    }

    /// The paper's recommended function baseline: no process spawning, no
    /// listening sockets; everything else mediated elsewhere.
    pub fn function_baseline() -> SeccompFilter {
        SeccompFilter::allow_all()
            .deny(SyscallClass::Fork)
            .deny(SyscallClass::Exec)
    }

    /// Add an allow override.
    pub fn allow(mut self, class: SyscallClass) -> SeccompFilter {
        self.overrides.insert(class, true);
        self
    }

    /// Add a deny override.
    pub fn deny(mut self, class: SyscallClass) -> SeccompFilter {
        self.overrides.insert(class, false);
        self
    }

    /// Whether `class` would be permitted (without logging).
    pub fn permits(&self, class: SyscallClass) -> bool {
        *self.overrides.get(&class).unwrap_or(&self.default_allow)
    }

    /// Check `class`, logging a violation if denied.
    pub fn check(&mut self, class: SyscallClass) -> bool {
        let ok = self.permits(class);
        if !ok {
            self.violations.push(class);
        }
        ok
    }

    /// Denied attempts so far, in order.
    pub fn violations(&self) -> &[SyscallClass] {
        &self.violations
    }

    /// The set of allowed classes (for policy negotiation).
    pub fn allowed_classes(&self) -> Vec<SyscallClass> {
        SyscallClass::ALL
            .iter()
            .copied()
            .filter(|c| self.permits(*c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allow_with_denies() {
        let mut f = SeccompFilter::function_baseline();
        assert!(f.check(SyscallClass::Read));
        assert!(f.check(SyscallClass::Connect));
        assert!(!f.check(SyscallClass::Fork));
        assert!(!f.check(SyscallClass::Exec));
        assert_eq!(f.violations(), &[SyscallClass::Fork, SyscallClass::Exec]);
    }

    #[test]
    fn default_deny_with_allows() {
        let mut f = SeccompFilter::deny_all()
            .allow(SyscallClass::Read)
            .allow(SyscallClass::GetTime);
        assert!(f.check(SyscallClass::Read));
        assert!(f.check(SyscallClass::GetTime));
        assert!(!f.check(SyscallClass::Write));
        assert!(!f.check(SyscallClass::Stem));
    }

    #[test]
    fn names_and_ids_roundtrip() {
        for c in SyscallClass::ALL {
            assert_eq!(SyscallClass::from_name(c.name()), Some(c));
            assert_eq!(SyscallClass::from_id(c.id()), Some(c));
        }
        assert_eq!(SyscallClass::from_name("bogus"), None);
        assert_eq!(SyscallClass::from_id(200), None);
    }

    #[test]
    fn allowed_classes_reflect_policy() {
        let f = SeccompFilter::deny_all().allow(SyscallClass::Read);
        assert_eq!(f.allowed_classes(), vec![SyscallClass::Read]);
        let g = SeccompFilter::allow_all();
        assert_eq!(g.allowed_classes().len(), SyscallClass::ALL.len());
    }

    #[test]
    fn permits_does_not_log() {
        let mut f = SeccompFilter::deny_all();
        assert!(!f.permits(SyscallClass::Read));
        assert!(f.violations().is_empty());
        f.check(SyscallClass::Read);
        assert_eq!(f.violations().len(), 1);
    }
}
