//! iptables-style network rules.
//!
//! "To ensure that functions cannot violate a Tor relay's exit node
//! policies, the Bento server converts the exit node policies into
//! analogous iptable rules, and applies these rules to each container"
//! (§5.3). [`NetRules`] is the container-side rule chain: ordered,
//! first-match-wins, default drop.

static T_NET_ALLOWED: telemetry::Counter = telemetry::Counter::new("sandbox.net_allowed");
static T_NET_DENIED: telemetry::Counter = telemetry::Counter::new("sandbox.net_denied");

/// One rule: accept or drop traffic to a host/port pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetRule {
    /// Accept (true) or drop (false).
    pub accept: bool,
    /// Destination host (`None` = any).
    pub host: Option<u32>,
    /// Inclusive destination port range.
    pub ports: (u16, u16),
}

impl NetRule {
    /// Accept everything.
    pub fn accept_any() -> NetRule {
        NetRule {
            accept: true,
            host: None,
            ports: (0, u16::MAX),
        }
    }

    fn matches(&self, host: u32, port: u16) -> bool {
        self.host.map(|h| h == host).unwrap_or(true) && port >= self.ports.0 && port <= self.ports.1
    }
}

/// An ordered rule chain with drop counters.
#[derive(Debug, Clone, Default)]
pub struct NetRules {
    rules: Vec<NetRule>,
    /// Connections dropped by policy.
    pub dropped: u64,
    /// Connections accepted.
    pub accepted: u64,
}

impl NetRules {
    /// Empty chain (drops everything).
    pub fn deny_all() -> NetRules {
        NetRules::default()
    }

    /// A chain from explicit rules.
    pub fn from_rules(rules: Vec<NetRule>) -> NetRules {
        NetRules {
            rules,
            dropped: 0,
            accepted: 0,
        }
    }

    /// Append a rule.
    pub fn push(&mut self, rule: NetRule) {
        self.rules.push(rule);
    }

    /// Evaluate without counting.
    pub fn allows(&self, host: u32, port: u16) -> bool {
        for r in &self.rules {
            if r.matches(host, port) {
                return r.accept;
            }
        }
        false
    }

    /// Evaluate a connection attempt, updating counters.
    pub fn check(&mut self, host: u32, port: u16) -> bool {
        let ok = self.allows(host, port);
        if ok {
            self.accepted += 1;
            T_NET_ALLOWED.inc();
        } else {
            self.dropped += 1;
            T_NET_DENIED.inc();
        }
        ok
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chain_drops() {
        let mut r = NetRules::deny_all();
        assert!(!r.check(1, 80));
        assert_eq!(r.dropped, 1);
        assert_eq!(r.accepted, 0);
    }

    #[test]
    fn first_match_wins() {
        let mut r = NetRules::from_rules(vec![
            NetRule {
                accept: false,
                host: Some(9),
                ports: (0, u16::MAX),
            },
            NetRule {
                accept: true,
                host: None,
                ports: (80, 443),
            },
        ]);
        assert!(!r.check(9, 80), "host 9 is blocked before the web rule");
        assert!(r.check(10, 80));
        assert!(r.check(10, 443));
        assert!(!r.check(10, 8080));
        assert_eq!(r.accepted, 2);
        assert_eq!(r.dropped, 2);
    }

    #[test]
    fn accept_any_matches_everything() {
        let mut r = NetRules::from_rules(vec![NetRule::accept_any()]);
        assert!(r.check(0, 0));
        assert!(r.check(u32::MAX, u16::MAX));
    }

    #[test]
    fn port_range_boundaries() {
        let r = NetRules::from_rules(vec![NetRule {
            accept: true,
            host: None,
            ports: (100, 200),
        }]);
        assert!(!r.allows(1, 99));
        assert!(r.allows(1, 100));
        assert!(r.allows(1, 200));
        assert!(!r.allows(1, 201));
    }
}
