//! The container: a namespace tying together the chroot filesystem, the
//! cgroup, the seccomp filter and the network rules behind one mediated
//! syscall surface.
//!
//! Every side effect a function can have on its host goes through
//! [`Container::syscall`] — which is exactly the paper's claim: "Bento does
//! not seek to limit what a third-party program can do within a container,
//! but rather what side-effects it can have on the system itself" (§6.2).

use crate::cgroup::{CGroup, ResourceError, ResourceLimits};
use crate::fs::{FsError, MemFs};
use crate::netrules::NetRules;
use crate::seccomp::{SeccompFilter, SyscallClass};

/// Container lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerState {
    /// Accepting syscalls.
    Running,
    /// Terminated; the reason is recorded.
    Terminated(String),
}

/// A mediated system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// Write a file.
    Write {
        /// Path inside the chroot.
        path: String,
        /// Contents.
        data: Vec<u8>,
    },
    /// Append to a file.
    Append {
        /// Path inside the chroot.
        path: String,
        /// Contents.
        data: Vec<u8>,
    },
    /// Read a file.
    Read {
        /// Path inside the chroot.
        path: String,
    },
    /// Delete a file.
    Unlink {
        /// Path inside the chroot.
        path: String,
    },
    /// Request an outbound connection.
    Connect {
        /// Destination host id.
        host: u32,
        /// Destination port.
        port: u16,
    },
    /// Request a listening socket.
    Listen {
        /// Port to listen on.
        port: u16,
    },
    /// Spawn a process.
    Fork,
    /// Execute an image.
    Exec {
        /// Program name.
        image: String,
    },
    /// Allocate memory.
    Alloc {
        /// Bytes.
        bytes: u64,
    },
    /// Free memory.
    Free {
        /// Bytes.
        bytes: u64,
    },
    /// Burn CPU.
    Cpu {
        /// Milliseconds.
        ms: u64,
    },
}

/// Result of a mediated syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallOutcome {
    /// Success with no payload.
    Ok,
    /// Success with file contents.
    Data(Vec<u8>),
    /// Permission to proceed with a connect/listen (the host performs the
    /// actual network operation).
    Permitted,
}

/// Why a syscall failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// The seccomp filter denied the class.
    SeccompDenied(SyscallClass),
    /// The network rules dropped the destination.
    NetDenied {
        /// Destination host.
        host: u32,
        /// Destination port.
        port: u16,
    },
    /// Filesystem error.
    Fs(FsError),
    /// Resource limit hit; the container is terminated for OOM.
    Resource(ResourceError),
    /// The container is no longer running.
    NotRunning,
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::SeccompDenied(c) => write!(f, "seccomp denied {}", c.name()),
            ContainerError::NetDenied { host, port } => {
                write!(f, "network policy denied {host}:{port}")
            }
            ContainerError::Fs(e) => write!(f, "fs: {e}"),
            ContainerError::Resource(e) => write!(f, "resource: {e}"),
            ContainerError::NotRunning => write!(f, "container not running"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// One function's container.
pub struct Container {
    /// Namespace id (unique per server).
    pub id: u64,
    state: ContainerState,
    fs: MemFs,
    cgroup: CGroup,
    seccomp: SeccompFilter,
    net: NetRules,
}

impl Container {
    /// Create a container with the given isolation configuration.
    pub fn new(
        id: u64,
        limits: ResourceLimits,
        seccomp: SeccompFilter,
        net: NetRules,
        fs_quota_bytes: u64,
        fs_quota_files: usize,
    ) -> Container {
        Container {
            id,
            state: ContainerState::Running,
            fs: MemFs::new(fs_quota_bytes, fs_quota_files),
            cgroup: CGroup::new(limits),
            seccomp,
            net,
        }
    }

    /// Current state.
    pub fn state(&self) -> &ContainerState {
        &self.state
    }

    /// Whether the container accepts syscalls.
    pub fn is_running(&self) -> bool {
        self.state == ContainerState::Running
    }

    /// Terminate with a reason; resident memory is released.
    pub fn terminate(&mut self, reason: &str) {
        if self.is_running() {
            self.state = ContainerState::Terminated(reason.to_string());
            self.cgroup.release_all_memory();
        }
    }

    /// The cgroup (inspection / host-side charging of network bytes).
    pub fn cgroup_mut(&mut self) -> &mut CGroup {
        &mut self.cgroup
    }

    /// The cgroup, read-only.
    pub fn cgroup(&self) -> &CGroup {
        &self.cgroup
    }

    /// The filesystem, read-only (operator inspection — for FS Protect
    /// containers this only ever shows ciphertext).
    pub fn fs(&self) -> &MemFs {
        &self.fs
    }

    /// Seccomp violations recorded so far.
    pub fn violations(&self) -> &[SyscallClass] {
        self.seccomp.violations()
    }

    fn class_of(call: &Syscall) -> SyscallClass {
        match call {
            Syscall::Write { .. } | Syscall::Append { .. } => SyscallClass::Write,
            Syscall::Read { .. } => SyscallClass::Read,
            Syscall::Unlink { .. } => SyscallClass::Unlink,
            Syscall::Connect { .. } => SyscallClass::Connect,
            Syscall::Listen { .. } => SyscallClass::Listen,
            Syscall::Fork => SyscallClass::Fork,
            Syscall::Exec { .. } => SyscallClass::Exec,
            // Memory/CPU charges are not seccomp-gated; everything may
            // allocate (subject to the cgroup).
            Syscall::Alloc { .. } | Syscall::Free { .. } | Syscall::Cpu { .. } => {
                SyscallClass::GetTime
            }
        }
    }

    /// Gate a syscall class without performing an operation — used by
    /// runtimes that mediate the operation themselves (e.g. FS Protect
    /// inside a conclave) but still honor the container's filter.
    pub fn check_class(&mut self, class: SyscallClass) -> Result<(), ContainerError> {
        if !self.is_running() {
            return Err(ContainerError::NotRunning);
        }
        if !self.seccomp.check(class) {
            return Err(ContainerError::SeccompDenied(class));
        }
        Ok(())
    }

    /// Charge disk usage and kill the container on overrun (public for
    /// mediating runtimes; see [`Container::check_class`]).
    pub fn charge_disk(&mut self, bytes: u64) -> Result<(), ContainerError> {
        self.cgroup
            .charge_disk(bytes)
            .map_err(|e| self.resource_kill(e))
    }

    /// Charge CPU time and kill the container on overrun.
    pub fn charge_cpu(&mut self, ms: u64) -> Result<(), ContainerError> {
        self.cgroup
            .charge_cpu(ms)
            .map_err(|e| self.resource_kill(e))
    }

    /// Execute a mediated syscall.
    pub fn syscall(&mut self, call: Syscall) -> Result<SyscallOutcome, ContainerError> {
        if !self.is_running() {
            return Err(ContainerError::NotRunning);
        }
        // Seccomp gate (resource charges are exempt; see class_of).
        let class = Self::class_of(&call);
        if !matches!(
            call,
            Syscall::Alloc { .. } | Syscall::Free { .. } | Syscall::Cpu { .. }
        ) && !self.seccomp.check(class)
        {
            return Err(ContainerError::SeccompDenied(class));
        }
        match call {
            Syscall::Write { path, data } => {
                self.cgroup
                    .charge_disk(data.len() as u64)
                    .map_err(|e| self.resource_kill(e))?;
                self.fs.write(&path, &data).map_err(ContainerError::Fs)?;
                Ok(SyscallOutcome::Ok)
            }
            Syscall::Append { path, data } => {
                self.cgroup
                    .charge_disk(data.len() as u64)
                    .map_err(|e| self.resource_kill(e))?;
                self.fs.append(&path, &data).map_err(ContainerError::Fs)?;
                Ok(SyscallOutcome::Ok)
            }
            Syscall::Read { path } => {
                let data = self.fs.read(&path).map_err(ContainerError::Fs)?.to_vec();
                Ok(SyscallOutcome::Data(data))
            }
            Syscall::Unlink { path } => {
                self.fs.unlink(&path).map_err(ContainerError::Fs)?;
                Ok(SyscallOutcome::Ok)
            }
            Syscall::Connect { host, port } => {
                if !self.net.check(host, port) {
                    return Err(ContainerError::NetDenied { host, port });
                }
                Ok(SyscallOutcome::Permitted)
            }
            Syscall::Listen { .. } => Ok(SyscallOutcome::Permitted),
            Syscall::Fork | Syscall::Exec { .. } => Ok(SyscallOutcome::Ok),
            Syscall::Alloc { bytes } => {
                self.cgroup
                    .alloc_memory(bytes)
                    .map_err(|e| self.resource_kill(e))?;
                Ok(SyscallOutcome::Ok)
            }
            Syscall::Free { bytes } => {
                self.cgroup.free_memory(bytes);
                Ok(SyscallOutcome::Ok)
            }
            Syscall::Cpu { ms } => {
                self.cgroup
                    .charge_cpu(ms)
                    .map_err(|e| self.resource_kill(e))?;
                Ok(SyscallOutcome::Ok)
            }
        }
    }

    /// A resource failure kills the container, like the OOM killer.
    fn resource_kill(&mut self, e: ResourceError) -> ContainerError {
        self.state = ContainerState::Terminated(format!("resource limit: {e}"));
        self.cgroup.release_all_memory();
        ContainerError::Resource(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netrules::NetRule;

    fn container() -> Container {
        Container::new(
            1,
            ResourceLimits {
                memory: 1000,
                cpu_ms: 100,
                disk: 100,
                network: 1000,
            },
            SeccompFilter::function_baseline(),
            NetRules::from_rules(vec![NetRule {
                accept: true,
                host: None,
                ports: (80, 443),
            }]),
            64,
            4,
        )
    }

    #[test]
    fn file_syscalls_work_within_quota() {
        let mut c = container();
        c.syscall(Syscall::Write {
            path: "out.txt".into(),
            data: b"result".to_vec(),
        })
        .unwrap();
        let got = c
            .syscall(Syscall::Read {
                path: "out.txt".into(),
            })
            .unwrap();
        assert_eq!(got, SyscallOutcome::Data(b"result".to_vec()));
        c.syscall(Syscall::Unlink {
            path: "out.txt".into(),
        })
        .unwrap();
    }

    #[test]
    fn fork_and_exec_denied_by_baseline() {
        let mut c = container();
        assert_eq!(
            c.syscall(Syscall::Fork),
            Err(ContainerError::SeccompDenied(SyscallClass::Fork))
        );
        assert_eq!(
            c.syscall(Syscall::Exec { image: "sh".into() }),
            Err(ContainerError::SeccompDenied(SyscallClass::Exec))
        );
        assert_eq!(c.violations().len(), 2);
        // The container keeps running — a denied syscall is an error, not
        // a crash.
        assert!(c.is_running());
    }

    #[test]
    fn connect_respects_net_rules() {
        let mut c = container();
        assert_eq!(
            c.syscall(Syscall::Connect { host: 7, port: 80 }),
            Ok(SyscallOutcome::Permitted)
        );
        assert_eq!(
            c.syscall(Syscall::Connect { host: 7, port: 22 }),
            Err(ContainerError::NetDenied { host: 7, port: 22 })
        );
    }

    #[test]
    fn oom_terminates_container() {
        let mut c = container();
        c.syscall(Syscall::Alloc { bytes: 900 }).unwrap();
        let r = c.syscall(Syscall::Alloc { bytes: 200 });
        assert_eq!(r, Err(ContainerError::Resource(ResourceError::OutOfMemory)));
        assert!(!c.is_running());
        assert_eq!(
            c.syscall(Syscall::Cpu { ms: 1 }),
            Err(ContainerError::NotRunning)
        );
        // Memory was released on kill.
        assert_eq!(c.cgroup().usage().memory, 0);
    }

    #[test]
    fn cpu_budget_kills() {
        let mut c = container();
        c.syscall(Syscall::Cpu { ms: 100 }).unwrap();
        assert!(matches!(
            c.syscall(Syscall::Cpu { ms: 1 }),
            Err(ContainerError::Resource(ResourceError::CpuExceeded))
        ));
        assert!(!c.is_running());
    }

    #[test]
    fn disk_quota_via_cgroup_and_fs() {
        let mut c = container();
        // fs quota (64B) is tighter than the cgroup disk budget (100B).
        let r = c.syscall(Syscall::Write {
            path: "big".into(),
            data: vec![0u8; 65],
        });
        assert!(matches!(
            r,
            Err(ContainerError::Fs(FsError::QuotaExceeded { .. }))
        ));
    }

    #[test]
    fn terminate_is_idempotent_and_blocks_syscalls() {
        let mut c = container();
        c.terminate("shutdown token presented");
        c.terminate("again");
        assert_eq!(
            c.state(),
            &ContainerState::Terminated("shutdown token presented".into())
        );
        assert_eq!(
            c.syscall(Syscall::Read { path: "x".into() }),
            Err(ContainerError::NotRunning)
        );
    }

    #[test]
    fn alloc_free_cycle() {
        let mut c = container();
        c.syscall(Syscall::Alloc { bytes: 500 }).unwrap();
        c.syscall(Syscall::Free { bytes: 400 }).unwrap();
        c.syscall(Syscall::Alloc { bytes: 800 }).unwrap();
        assert_eq!(c.cgroup().usage().memory, 900);
        assert_eq!(c.cgroup().usage().memory_peak, 900);
    }
}
