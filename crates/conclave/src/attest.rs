//! Remote attestation: quotes, the (simulated) Intel Attestation Service,
//! and verification reports.
//!
//! The trust chain mirrors SGX EPID attestation as the paper uses it
//! (§5.4): the *platform* MACs a quote over (measurement, TCB version,
//! report data) with a key provisioned by the attestation service; the
//! service verifies the MAC, checks the TCB against known vulnerabilities,
//! and signs a verification report that anyone holding the service's public
//! key can check. Both of the paper's verification flows are supported:
//! the client submits the quote itself, or the server staples a
//! pre-fetched report (the OCSP-stapling analog, which hides the client
//! from the attestation service).

use crate::enclave::Enclave;
use onion_crypto::hashsig::{MerkleSigner, MerkleVerifyKey, Signature};
use onion_crypto::hmac::{ct_eq, hmac_sha256};
use onion_crypto::sha256::sha256;
use std::collections::BTreeMap;

/// Attestation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestationError {
    /// The quote's platform is not provisioned with this service.
    UnknownPlatform,
    /// The quote MAC is invalid (forged or corrupted).
    BadQuoteMac,
    /// The platform's TCB is below the service's minimum (unpatched).
    TcbOutOfDate {
        /// TCB in the quote.
        got: u32,
        /// Minimum acceptable.
        min: u32,
    },
    /// The report signature failed to verify.
    BadReportSignature,
    /// The report does not cover this quote.
    QuoteMismatch,
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestationError::UnknownPlatform => write!(f, "unknown platform"),
            AttestationError::BadQuoteMac => write!(f, "quote MAC invalid"),
            AttestationError::TcbOutOfDate { got, min } => {
                write!(f, "TCB {got} below minimum {min}")
            }
            AttestationError::BadReportSignature => write!(f, "report signature invalid"),
            AttestationError::QuoteMismatch => write!(f, "report does not match quote"),
        }
    }
}

impl std::error::Error for AttestationError {}

/// A quote: the platform's claim that an enclave with `measurement` runs on
/// hardware at `tcb_version`, binding 32 bytes of `report_data`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Platform identity.
    pub platform_id: u64,
    /// MRENCLAVE analog.
    pub measurement: [u8; 32],
    /// Platform TCB version.
    pub tcb_version: u32,
    /// Caller-chosen binding data (e.g. a channel key hash).
    pub report_data: [u8; 32],
    /// MAC under the platform's provisioned key.
    pub mac: [u8; 32],
}

impl Quote {
    fn mac_input(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(8 + 32 + 4 + 32);
        v.extend_from_slice(&self.platform_id.to_be_bytes());
        v.extend_from_slice(&self.measurement);
        v.extend_from_slice(&self.tcb_version.to_be_bytes());
        v.extend_from_slice(&self.report_data);
        v
    }

    /// Hash identifying this quote (what reports sign over).
    pub fn digest(&self) -> [u8; 32] {
        let mut v = self.mac_input();
        v.extend_from_slice(&self.mac);
        sha256(&v)
    }
}

/// A platform (machine with a TEE): holds the provisioned attestation key.
/// Stands in for CPU fuses + the quoting enclave.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Platform identity registered with the attestation service.
    pub id: u64,
    key: [u8; 32],
    /// Current TCB version (increases with microcode patches).
    pub tcb_version: u32,
}

impl Platform {
    /// A platform with the given provisioning key.
    pub fn new(id: u64, key: [u8; 32], tcb_version: u32) -> Platform {
        Platform {
            id,
            key,
            tcb_version,
        }
    }

    /// The platform's sealing secret — derived from the provisioned key and
    /// never leaving the machine (the EGETKEY analog). Feed it to
    /// [`crate::sealed::seal_data`] so sealed blobs survive reboots of the
    /// same platform but are useless anywhere else.
    pub fn sealing_secret(&self) -> [u8; 32] {
        hmac_sha256(&self.key, b"sealing-secret")
    }

    /// Produce a quote for an enclave running on this platform.
    pub fn quote(&self, enclave: &Enclave, report_data: [u8; 32]) -> Quote {
        let mut q = Quote {
            platform_id: self.id,
            measurement: enclave.measurement,
            tcb_version: self.tcb_version,
            report_data,
            mac: [0; 32],
        };
        q.mac = hmac_sha256(&self.key, &q.mac_input());
        q
    }
}

/// A signed verification report from the attestation service.
#[derive(Debug, Clone)]
pub struct IasReport {
    /// Digest of the quote this report covers.
    pub quote_digest: [u8; 32],
    /// Whether the TCB met the service's minimum.
    pub tcb_ok: bool,
    /// Service signature over (quote_digest, tcb_ok).
    pub signature: Signature,
}

impl IasReport {
    fn signed_body(quote_digest: &[u8; 32], tcb_ok: bool) -> Vec<u8> {
        let mut v = Vec::with_capacity(33);
        v.extend_from_slice(quote_digest);
        v.push(tcb_ok as u8);
        v
    }

    /// Verify this report against the service's public key and the quote it
    /// claims to cover. This is the *client-side* check in both §5.4 flows.
    pub fn verify(
        &self,
        service_key: &MerkleVerifyKey,
        quote: &Quote,
    ) -> Result<(), AttestationError> {
        if self.quote_digest != quote.digest() {
            return Err(AttestationError::QuoteMismatch);
        }
        let body = Self::signed_body(&self.quote_digest, self.tcb_ok);
        if !service_key.verify(&body, &self.signature) {
            return Err(AttestationError::BadReportSignature);
        }
        if !self.tcb_ok {
            return Err(AttestationError::TcbOutOfDate { got: 0, min: 0 });
        }
        Ok(())
    }
}

/// The simulated Intel Attestation Service.
pub struct Ias {
    signer: MerkleSigner,
    platforms: BTreeMap<u64, [u8; 32]>,
    min_tcb: u32,
}

impl Ias {
    /// A service with a signing seed and a minimum acceptable TCB.
    pub fn new(seed: [u8; 32], min_tcb: u32) -> Ias {
        Ias {
            signer: MerkleSigner::generate(seed, 6),
            platforms: BTreeMap::new(),
            min_tcb,
        }
    }

    /// The public key relying parties pin.
    pub fn verify_key(&self) -> MerkleVerifyKey {
        self.signer.verify_key()
    }

    /// Provision a platform (returns the key it will quote with).
    pub fn provision_platform(&mut self, id: u64, rng: &mut impl rand::Rng) -> Platform {
        let mut key = [0u8; 32];
        rng.fill(&mut key);
        self.platforms.insert(id, key);
        Platform::new(id, key, self.min_tcb)
    }

    /// Raise the minimum TCB (a vulnerability was published; §5.4's "check
    /// the current TCB version ... to see if it has been patched").
    pub fn set_min_tcb(&mut self, min: u32) {
        self.min_tcb = min;
    }

    /// Verify a quote and issue a signed report.
    pub fn verify_quote(&mut self, quote: &Quote) -> Result<IasReport, AttestationError> {
        let key = self
            .platforms
            .get(&quote.platform_id)
            .ok_or(AttestationError::UnknownPlatform)?;
        let expect = hmac_sha256(key, &quote.mac_input());
        if !ct_eq(&expect, &quote.mac) {
            return Err(AttestationError::BadQuoteMac);
        }
        let tcb_ok = quote.tcb_version >= self.min_tcb;
        let digest = quote.digest();
        let body = IasReport::signed_body(&digest, tcb_ok);
        let signature = self.signer.sign(&body).expect("IAS signer exhausted");
        Ok(IasReport {
            quote_digest: digest,
            tcb_ok,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (Ias, Platform, Enclave) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut ias = Ias::new([1u8; 32], 3);
        let platform = ias.provision_platform(42, &mut rng);
        let enclave = Enclave::create(1, b"bento conclave image", 20 << 20, platform.tcb_version);
        (ias, platform, enclave)
    }

    #[test]
    fn quote_verifies_end_to_end() {
        let (mut ias, platform, enclave) = setup();
        let quote = platform.quote(&enclave, [9u8; 32]);
        let report = ias.verify_quote(&quote).unwrap();
        assert!(report.tcb_ok);
        report.verify(&ias.verify_key(), &quote).unwrap();
    }

    #[test]
    fn forged_quote_rejected() {
        let (mut ias, platform, enclave) = setup();
        let mut quote = platform.quote(&enclave, [9u8; 32]);
        quote.measurement[0] ^= 1; // claim a different image
        assert!(matches!(
            ias.verify_quote(&quote),
            Err(AttestationError::BadQuoteMac)
        ));
    }

    #[test]
    fn unknown_platform_rejected() {
        let (mut ias, platform, enclave) = setup();
        let mut quote = platform.quote(&enclave, [0u8; 32]);
        quote.platform_id = 999;
        assert!(matches!(
            ias.verify_quote(&quote),
            Err(AttestationError::UnknownPlatform)
        ));
    }

    #[test]
    fn stale_tcb_flagged_and_rejected_by_client() {
        let (mut ias, platform, enclave) = setup();
        let quote = platform.quote(&enclave, [0u8; 32]);
        // A vulnerability is published; IAS raises the bar beyond this
        // platform's patch level.
        ias.set_min_tcb(platform.tcb_version + 1);
        let report = ias.verify_quote(&quote).unwrap();
        assert!(!report.tcb_ok);
        assert!(matches!(
            report.verify(&ias.verify_key(), &quote),
            Err(AttestationError::TcbOutOfDate { .. })
        ));
    }

    #[test]
    fn report_bound_to_specific_quote() {
        let (mut ias, platform, enclave) = setup();
        let q1 = platform.quote(&enclave, [1u8; 32]);
        let q2 = platform.quote(&enclave, [2u8; 32]);
        let report1 = ias.verify_quote(&q1).unwrap();
        assert_eq!(
            report1.verify(&ias.verify_key(), &q2),
            Err(AttestationError::QuoteMismatch)
        );
    }

    #[test]
    fn report_signature_tamper_rejected() {
        let (mut ias, platform, enclave) = setup();
        let quote = platform.quote(&enclave, [0u8; 32]);
        let mut report = ias.verify_quote(&quote).unwrap();
        report.tcb_ok = true; // no-op here, but tamper the signature:
        report.signature.wots[0][0] ^= 1;
        assert_eq!(
            report.verify(&ias.verify_key(), &quote),
            Err(AttestationError::BadReportSignature)
        );
    }

    #[test]
    fn wrong_ias_key_rejected() {
        let (mut ias, platform, enclave) = setup();
        let quote = platform.quote(&enclave, [0u8; 32]);
        let report = ias.verify_quote(&quote).unwrap();
        let other = Ias::new([2u8; 32], 0).verify_key();
        assert_eq!(
            report.verify(&other, &quote),
            Err(AttestationError::BadReportSignature)
        );
    }
}
