//! Enclaves: measured code containers with transition costs.

use onion_crypto::sha256::sha256;

/// Enclave lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveState {
    /// Created and measured, ready to execute.
    Ready,
    /// Destroyed.
    Destroyed,
}

/// A measured enclave instance.
#[derive(Debug, Clone)]
pub struct Enclave {
    /// Unique id on this machine.
    pub id: u64,
    /// SHA-256 of the enclave image (MRENCLAVE analog).
    pub measurement: [u8; 32],
    /// Memory footprint in bytes (counted against the EPC).
    pub memory_bytes: u64,
    /// TCB (microcode/SDK) version of the platform it runs on.
    pub tcb_version: u32,
    state: EnclaveState,
    /// Number of enclave transitions (ECALL/OCALL pairs) performed.
    pub transitions: u64,
}

/// Cost of one enclave transition in nanoseconds (~8k cycles; in line with
/// published SGX ECALL/OCALL microbenchmarks the conclaves paper cites).
pub const TRANSITION_NS: u64 = 3_500;

impl Enclave {
    /// Create an enclave by measuring `image`.
    pub fn create(id: u64, image: &[u8], memory_bytes: u64, tcb_version: u32) -> Enclave {
        Enclave {
            id,
            measurement: sha256(image),
            memory_bytes,
            tcb_version,
            state: EnclaveState::Ready,
            transitions: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> EnclaveState {
        self.state
    }

    /// Record one transition into and out of the enclave; returns its cost
    /// in nanoseconds.
    pub fn transition(&mut self) -> u64 {
        self.transitions += 1;
        TRANSITION_NS
    }

    /// Destroy the enclave (its memory is scrubbed by hardware).
    pub fn destroy(&mut self) {
        self.state = EnclaveState::Destroyed;
    }

    /// Whether this enclave runs the exact image `image`.
    pub fn matches_image(&self, image: &[u8]) -> bool {
        self.measurement == sha256(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_binds_to_image() {
        let e = Enclave::create(1, b"bento server v1 + python runtime", 20 << 20, 5);
        assert!(e.matches_image(b"bento server v1 + python runtime"));
        assert!(!e.matches_image(b"bento server v1 + python runtime (backdoored)"));
    }

    #[test]
    fn identical_images_have_identical_measurements() {
        let a = Enclave::create(1, b"image", 1, 1);
        let b = Enclave::create(2, b"image", 1, 1);
        assert_eq!(a.measurement, b.measurement);
    }

    #[test]
    fn transitions_accumulate_cost() {
        let mut e = Enclave::create(1, b"x", 1, 1);
        let mut total = 0;
        for _ in 0..10 {
            total += e.transition();
        }
        assert_eq!(e.transitions, 10);
        assert_eq!(total, 10 * TRANSITION_NS);
    }

    #[test]
    fn destroy_changes_state() {
        let mut e = Enclave::create(1, b"x", 1, 1);
        assert_eq!(e.state(), EnclaveState::Ready);
        e.destroy();
        assert_eq!(e.state(), EnclaveState::Destroyed);
    }
}
