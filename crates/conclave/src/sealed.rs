//! Sealed storage: data encrypted under a key derived from the platform
//! secret and the enclave measurement, so only the same code on the same
//! machine can recover it.

use onion_crypto::aead::{open, seal, AeadError, AeadKey};
use onion_crypto::hmac::hkdf;

static T_SEAL_BYTES: telemetry::Counter = telemetry::Counter::new("conclave.sealed_bytes");
static T_UNSEAL_BYTES: telemetry::Counter = telemetry::Counter::new("conclave.unsealed_bytes");
static T_UNSEAL_FAILURES: telemetry::Counter = telemetry::Counter::new("conclave.unseal_failures");

/// Sealing failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// Decryption failed: wrong platform, wrong measurement, or tampering.
    Unsealable,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sealed blob cannot be opened on this platform/enclave")
    }
}

impl std::error::Error for SealError {}

fn sealing_key(platform_secret: &[u8; 32], measurement: &[u8; 32]) -> AeadKey {
    let okm = hkdf(b"sgx-seal", platform_secret, measurement, 32);
    let mut master = [0u8; 32];
    master.copy_from_slice(&okm);
    AeadKey::from_master(&master)
}

/// Seal `data` to (platform, measurement).
pub fn seal_data(platform_secret: &[u8; 32], measurement: &[u8; 32], data: &[u8]) -> Vec<u8> {
    T_SEAL_BYTES.add(data.len() as u64);
    let key = sealing_key(platform_secret, measurement);
    seal(&key, &[0u8; 12], b"sealed", data)
}

/// Unseal a blob sealed by [`seal_data`] with the same identity.
pub fn unseal_data(
    platform_secret: &[u8; 32],
    measurement: &[u8; 32],
    blob: &[u8],
) -> Result<Vec<u8>, SealError> {
    let key = sealing_key(platform_secret, measurement);
    open(&key, &[0u8; 12], b"sealed", blob)
        .map(|data| {
            T_UNSEAL_BYTES.add(data.len() as u64);
            data
        })
        .map_err(|_: AeadError| {
            T_UNSEAL_FAILURES.inc();
            SealError::Unsealable
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_roundtrip() {
        let blob = seal_data(&[1; 32], &[2; 32], b"key material");
        assert_ne!(&blob[..12], b"key material");
        assert_eq!(
            unseal_data(&[1; 32], &[2; 32], &blob).unwrap(),
            b"key material"
        );
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let blob = seal_data(&[1; 32], &[2; 32], b"secret");
        assert_eq!(
            unseal_data(&[9; 32], &[2; 32], &blob),
            Err(SealError::Unsealable)
        );
    }

    #[test]
    fn different_measurement_cannot_unseal() {
        // A modified enclave image must not read the original's seals.
        let blob = seal_data(&[1; 32], &[2; 32], b"secret");
        assert_eq!(
            unseal_data(&[1; 32], &[3; 32], &blob),
            Err(SealError::Unsealable)
        );
    }

    #[test]
    fn tampered_blob_rejected() {
        let mut blob = seal_data(&[1; 32], &[2; 32], b"secret");
        blob[0] ^= 1;
        assert_eq!(
            unseal_data(&[1; 32], &[2; 32], &blob),
            Err(SealError::Unsealable)
        );
    }
}
