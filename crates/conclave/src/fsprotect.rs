//! FS Protect: the encrypted, integrity-protected filesystem inside the
//! conclave (§5.4).
//!
//! "FS Protect generates an ephemeral encryption key when the filesystem is
//! launched in an enclave; the container ensures that the enclaved
//! filesystem is the only writable filesystem available to the function,
//! and therefore that all filesystem writes are encrypted." The ephemeral
//! key never leaves the enclave, so the operator only ever sees ciphertext
//! — which is also the paper's plausible-deniability argument (§6.2).

use onion_crypto::aead::{open_in_place, seal_in_place, AeadKey, TAG_LEN};
use onion_crypto::sha256::sha256;
use std::collections::BTreeMap;

/// The enclaved filesystem.
pub struct FsProtect {
    /// Ephemeral key, generated at launch; dropped with the enclave.
    key: AeadKey,
    /// path-hash -> (nonce counter at write time, ciphertext).
    store: BTreeMap<[u8; 32], (u64, Vec<u8>)>,
    nonce_counter: u64,
    /// Plaintext bytes stored (for capacity accounting).
    plain_bytes: u64,
}

impl FsProtect {
    /// Launch with a fresh ephemeral key.
    pub fn launch(rng: &mut impl rand::Rng) -> FsProtect {
        FsProtect {
            key: AeadKey::random(rng),
            store: BTreeMap::new(),
            nonce_counter: 1,
            plain_bytes: 0,
        }
    }

    fn nonce(counter: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[4..].copy_from_slice(&counter.to_be_bytes());
        n
    }

    /// Write a file; contents are encrypted and the path is hashed, so the
    /// operator view leaks neither names nor contents.
    pub fn write(&mut self, path: &str, data: &[u8]) {
        let id = sha256(path.as_bytes());
        if let Some((_, old)) = self.store.get(&id) {
            // Ciphertext length = plaintext length + tag.
            self.plain_bytes -= (old.len() - 32) as u64;
        }
        let counter = self.nonce_counter;
        self.nonce_counter += 1;
        let mut ct = Vec::with_capacity(data.len() + TAG_LEN);
        ct.extend_from_slice(data);
        seal_in_place(&self.key, &Self::nonce(counter), &id, &mut ct);
        self.plain_bytes += data.len() as u64;
        self.store.insert(id, (counter, ct));
    }

    /// Read a file back (inside the enclave).
    pub fn read(&self, path: &str) -> Option<Vec<u8>> {
        let id = sha256(path.as_bytes());
        let (counter, ct) = self.store.get(&id)?;
        let mut buf = ct.clone();
        open_in_place(&self.key, &Self::nonce(*counter), &id, &mut buf).ok()?;
        Some(buf)
    }

    /// Delete a file.
    pub fn unlink(&mut self, path: &str) -> bool {
        let id = sha256(path.as_bytes());
        match self.store.remove(&id) {
            Some((_, ct)) => {
                self.plain_bytes -= (ct.len() - 32) as u64;
                true
            }
            None => false,
        }
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.store.contains_key(&sha256(path.as_bytes()))
    }

    /// Plaintext bytes stored.
    pub fn bytes_used(&self) -> u64 {
        self.plain_bytes
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.store.len()
    }

    /// What the *operator* can see: opaque ids and ciphertext. Used by the
    /// abusive-content tests to prove the operator learns nothing.
    pub fn operator_view(&self) -> Vec<([u8; 32], &[u8])> {
        self.store
            .iter()
            .map(|(id, (_, ct))| (*id, ct.as_slice()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn fs() -> FsProtect {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        FsProtect::launch(&mut rng)
    }

    #[test]
    fn write_read_roundtrip() {
        let mut f = fs();
        f.write("function.py", b"def browser(url): ...");
        assert_eq!(f.read("function.py").unwrap(), b"def browser(url): ...");
        assert_eq!(f.bytes_used(), 21);
        assert_eq!(f.file_count(), 1);
    }

    #[test]
    fn operator_sees_only_ciphertext() {
        let mut f = fs();
        let secret = b"the onion address is xyz.onion";
        f.write("notes.txt", secret);
        for (id, ct) in f.operator_view() {
            assert_ne!(&id[..], b"notes.txt".as_slice());
            // The plaintext must not appear anywhere in the ciphertext.
            assert!(!ct.windows(secret.len()).any(|w| w == secret.as_slice()));
        }
    }

    #[test]
    fn overwrite_replaces_and_reaccounts() {
        let mut f = fs();
        f.write("a", b"0123456789");
        f.write("a", b"xyz");
        assert_eq!(f.read("a").unwrap(), b"xyz");
        assert_eq!(f.bytes_used(), 3);
        assert_eq!(f.file_count(), 1);
    }

    #[test]
    fn unlink_removes() {
        let mut f = fs();
        f.write("a", b"data");
        assert!(f.unlink("a"));
        assert!(!f.unlink("a"));
        assert!(f.read("a").is_none());
        assert_eq!(f.bytes_used(), 0);
    }

    #[test]
    fn keys_are_ephemeral_across_launches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut f1 = FsProtect::launch(&mut rng);
        let mut f2 = FsProtect::launch(&mut rng);
        f1.write("a", b"same plaintext");
        f2.write("a", b"same plaintext");
        let v1 = f1.operator_view()[0].1.to_vec();
        let v2 = f2.operator_view()[0].1.to_vec();
        assert_ne!(v1, v2, "different launches encrypt differently");
    }

    #[test]
    fn rewrites_use_fresh_nonces() {
        let mut f = fs();
        f.write("a", b"same plaintext");
        let v1 = f.operator_view()[0].1.to_vec();
        f.write("a", b"same plaintext");
        let v2 = f.operator_view()[0].1.to_vec();
        assert_ne!(v1, v2, "nonce reuse would leak plaintext equality");
    }
}
