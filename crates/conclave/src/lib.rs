//! # conclave — simulated trusted execution (SGX-like enclaves, "containers
//! of enclaves")
//!
//! Bento protects functions *from* the middleboxes they run on with
//! conclaves (Herwig et al.): legacy applications inside interconnected SGX
//! enclaves, with an encrypted filesystem and remote attestation. No SGX
//! hardware is available here, so this crate models the parts of the TEE
//! the paper's design and evaluation actually depend on:
//!
//! * [`epc`] — the Enclave Page Cache: 128 MiB of protected memory of which
//!   ~93 MiB is usable by applications (§7.3), with paging cost accounting
//!   when demand exceeds it.
//! * [`enclave`] — enclaves with code measurement, TCB versioning, and
//!   per-call transition (swap-in/out) costs.
//! * [`attest`] — quotes MAC'd by a platform key, a simulated Intel
//!   Attestation Service that signs verification reports, and both of the
//!   paper's §5.4 verification flows (client-submitted and OCSP-style
//!   stapling).
//! * [`sealed`] — sealed storage bound to (platform, measurement).
//! * [`fsprotect`] — FS Protect: the encrypted, integrity-protected
//!   filesystem with an ephemeral in-enclave key; the operator only ever
//!   sees ciphertext (plausible deniability, §6.2).
//! * [`channel`] — the attested secure channel a Bento client uploads its
//!   function over: ephemeral DH bound to the quote's report data.
//!
//! The crypto is real ([`onion_crypto`]); what is simulated is the
//! *hardware root of trust* — a platform key standing in for CPU fuses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod channel;
pub mod enclave;
pub mod epc;
pub mod fsprotect;
pub mod sealed;

pub use attest::{AttestationError, Ias, IasReport, Platform, Quote};
pub use channel::{AttestedChannel, ChannelError};
pub use enclave::{Enclave, EnclaveState};
pub use epc::{Epc, PagingStats, EPC_TOTAL_BYTES, EPC_USABLE_BYTES};
pub use fsprotect::FsProtect;
pub use sealed::{seal_data, unseal_data, SealError};
