//! The Enclave Page Cache: the scarce protected-memory pool the paper's
//! scalability analysis (§7.3) revolves around.
//!
//! "SGX provides a limited amount of protected memory (128MB), with only
//! 93MB of this usable by applications, meaning that we are constrained in
//! the number of functions that can be running concurrently on a node. ...
//! SGX has support for paging; as we do not expect all functions loaded on
//! a node to always be running, enclaves could be paged out if they are not
//! currently being invoked."
//!
//! [`Epc`] tracks per-enclave residency at 4 KiB page granularity and
//! evicts least-recently-used enclaves when demand exceeds the usable pool,
//! accounting the paging work.

use std::collections::BTreeMap;

static T_PAGES_IN: telemetry::Counter = telemetry::Counter::new("epc.pages_in");
static T_PAGES_OUT: telemetry::Counter = telemetry::Counter::new("epc.pages_out");
static T_EVICTIONS: telemetry::Counter = telemetry::Counter::new("epc.evictions");
static T_RESIDENT: telemetry::Gauge = telemetry::Gauge::new("epc.resident_bytes");

/// Total EPC size (bytes).
pub const EPC_TOTAL_BYTES: u64 = 128 << 20;
/// EPC usable by applications after SGX metadata (bytes) — the paper's 93 MB.
pub const EPC_USABLE_BYTES: u64 = 93 << 20;
/// Page size.
pub const PAGE: u64 = 4096;

/// Cumulative paging work.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagingStats {
    /// Pages evicted (encrypted and written out).
    pub pages_out: u64,
    /// Pages loaded back (read and decrypted).
    pub pages_in: u64,
    /// Number of eviction events (an enclave being victimized).
    pub evictions: u64,
}

impl PagingStats {
    /// Approximate time cost of the recorded paging, in microseconds
    /// (~7 µs per 4 KiB page crossing the EPC boundary, in line with
    /// published SGX paging measurements).
    pub fn cost_micros(&self) -> u64 {
        (self.pages_out + self.pages_in) * 7
    }
}

#[derive(Debug)]
struct Residency {
    resident_bytes: u64,
    total_bytes: u64,
    last_use: u64,
}

/// The EPC of one machine.
#[derive(Debug)]
pub struct Epc {
    usable: u64,
    enclaves: BTreeMap<u64, Residency>,
    clock: u64,
    stats: PagingStats,
}

impl Default for Epc {
    fn default() -> Self {
        Epc::new(EPC_USABLE_BYTES)
    }
}

impl Epc {
    /// An EPC with the given usable capacity.
    pub fn new(usable: u64) -> Epc {
        Epc {
            usable,
            enclaves: BTreeMap::new(),
            clock: 0,
            stats: PagingStats::default(),
        }
    }

    /// Usable capacity in bytes.
    pub fn usable(&self) -> u64 {
        self.usable
    }

    /// Bytes currently resident across all enclaves.
    pub fn resident(&self) -> u64 {
        self.enclaves.values().map(|r| r.resident_bytes).sum()
    }

    /// Paging statistics so far.
    pub fn stats(&self) -> PagingStats {
        self.stats
    }

    /// Committed (resident + paged) bytes of one enclave.
    pub fn enclave_bytes(&self, id: u64) -> u64 {
        self.enclaves.get(&id).map(|r| r.total_bytes).unwrap_or(0)
    }

    /// Register an enclave with a memory footprint. Fails if the footprint
    /// alone exceeds the whole usable EPC (it could never run).
    pub fn register(&mut self, id: u64, bytes: u64) -> bool {
        if bytes > self.usable {
            return false;
        }
        self.enclaves.insert(
            id,
            Residency {
                resident_bytes: 0,
                total_bytes: round_pages(bytes),
                last_use: self.clock,
            },
        );
        true
    }

    /// Remove an enclave, freeing its EPC.
    pub fn unregister(&mut self, id: u64) {
        self.enclaves.remove(&id);
    }

    /// Touch an enclave (it is about to execute): make it fully resident,
    /// evicting LRU enclaves as needed. Returns the paging work this
    /// required, or `None` if the enclave is unknown.
    pub fn touch(&mut self, id: u64) -> Option<PagingStats> {
        self.clock += 1;
        let clock = self.clock;
        let (needed, already) = {
            let r = self.enclaves.get_mut(&id)?;
            r.last_use = clock;
            (r.total_bytes, r.resident_bytes)
        };
        let mut delta = PagingStats::default();
        if already >= needed {
            return Some(delta);
        }
        let to_load = needed - already;
        // Evict LRU enclaves until there is room.
        let mut free = self.usable.saturating_sub(self.resident());
        while free < to_load {
            let victim = self
                .enclaves
                .iter()
                .filter(|(vid, r)| **vid != id && r.resident_bytes > 0)
                .min_by_key(|(_, r)| r.last_use)
                .map(|(vid, _)| *vid);
            let Some(victim) = victim else {
                // Nothing left to evict: cannot make the enclave resident.
                return None;
            };
            let r = self.enclaves.get_mut(&victim).expect("victim exists");
            let evicted = r.resident_bytes;
            r.resident_bytes = 0;
            free += evicted;
            delta.pages_out += evicted / PAGE;
            delta.evictions += 1;
        }
        let r = self.enclaves.get_mut(&id).expect("checked above");
        r.resident_bytes = needed;
        delta.pages_in += to_load / PAGE;
        self.stats.pages_out += delta.pages_out;
        self.stats.pages_in += delta.pages_in;
        self.stats.evictions += delta.evictions;
        T_PAGES_IN.add(delta.pages_in);
        T_PAGES_OUT.add(delta.pages_out);
        T_EVICTIONS.add(delta.evictions);
        T_RESIDENT.set(self.resident());
        Some(delta)
    }

    /// How many enclaves of `bytes` each fit fully resident at once.
    pub fn capacity_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return u64::MAX;
        }
        self.usable / round_pages(bytes)
    }
}

fn round_pages(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE) * PAGE
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn enclaves_fit_until_capacity() {
        let mut epc = Epc::new(93 * MB);
        for id in 0..4 {
            assert!(epc.register(id, 20 * MB));
            let d = epc.touch(id).unwrap();
            assert_eq!(d.pages_out, 0, "no eviction while space remains");
        }
        assert_eq!(epc.resident(), 80 * MB);
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut epc = Epc::new(93 * MB);
        for id in 0..4 {
            epc.register(id, 25 * MB);
            epc.touch(id).unwrap();
        }
        // 4 * 25 = 100 > 93: enclave 0 (LRU) was evicted during touch(3).
        let d_total = epc.stats();
        assert!(d_total.evictions >= 1);
        // Touching 0 again pages it back in, evicting someone else.
        let d = epc.touch(0).unwrap();
        assert!(d.pages_in > 0);
        assert!(d.pages_out > 0);
    }

    #[test]
    fn touch_is_free_when_resident() {
        let mut epc = Epc::new(93 * MB);
        epc.register(1, 10 * MB);
        let first = epc.touch(1).unwrap();
        assert_eq!(first.pages_in, (10 * MB) / PAGE);
        let second = epc.touch(1).unwrap();
        assert_eq!(second, PagingStats::default());
    }

    #[test]
    fn oversized_enclave_rejected() {
        let mut epc = Epc::new(93 * MB);
        assert!(!epc.register(1, 94 * MB));
        assert!(epc.register(2, 93 * MB));
    }

    #[test]
    fn capacity_matches_paper_numbers() {
        // Bento server + Browser ≈ 16–20 MB, plus ~7.3 MB conclave overhead
        // → ~23–27 MB per function; 93 MB fits 3–4 fully resident.
        let epc = Epc::default();
        assert_eq!(epc.usable(), 93 * MB);
        let per_function = 20 * MB + (73 * MB) / 10;
        let fit = epc.capacity_for(per_function);
        assert!((3..=4).contains(&fit), "fit = {fit}");
    }

    #[test]
    fn unregister_frees_space() {
        let mut epc = Epc::new(50 * MB);
        epc.register(1, 40 * MB);
        epc.touch(1).unwrap();
        epc.unregister(1);
        assert_eq!(epc.resident(), 0);
        epc.register(2, 45 * MB);
        let d = epc.touch(2).unwrap();
        assert_eq!(d.pages_out, 0);
    }

    #[test]
    fn paging_cost_model() {
        let s = PagingStats {
            pages_in: 100,
            pages_out: 100,
            evictions: 1,
        };
        assert_eq!(s.cost_micros(), 1400);
    }
}
