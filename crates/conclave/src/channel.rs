//! The attested secure channel: how a Bento client uploads its function so
//! that only the attested conclave — not the operator — can read it (§5.4).
//!
//! One round trip: the client sends a nonce; the conclave responds with an
//! ephemeral DH key, a quote whose report data binds that key and the
//! nonce, and a *stapled* attestation-service report (the OCSP-stapling
//! flow, so the attestation service never observes the client). The client
//! verifies report → quote → binding → expected measurement, then both
//! sides derive AEAD keys for the upload.

use crate::attest::{AttestationError, Ias, IasReport, Platform, Quote};
use crate::enclave::Enclave;
use onion_crypto::aead::{open_in_place, seal_in_place, AeadKey, TAG_LEN};
use onion_crypto::hashsig::Signature;
use onion_crypto::hmac::hkdf;
use onion_crypto::sha256::sha256;
use onion_crypto::x25519::{PublicKey, StaticSecret};

/// Channel failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// Malformed hello message.
    Malformed,
    /// Attestation failed.
    Attestation(AttestationError),
    /// The quote's report data does not bind this channel.
    BindingMismatch,
    /// The enclave is not running the image the client expects.
    WrongMeasurement,
    /// A sealed message failed to authenticate or arrived out of order.
    BadMessage,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Malformed => write!(f, "malformed channel message"),
            ChannelError::Attestation(e) => write!(f, "attestation: {e}"),
            ChannelError::BindingMismatch => write!(f, "quote does not bind this channel"),
            ChannelError::WrongMeasurement => write!(f, "unexpected enclave measurement"),
            ChannelError::BadMessage => write!(f, "message authentication failed"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// An established channel endpoint.
pub struct AttestedChannel {
    key: AeadKey,
    send_counter: u64,
    recv_counter: u64,
    /// True on the client side (affects nonce directionality).
    is_client: bool,
}

/// Client state between hello and finish.
pub struct ClientHello {
    nonce: [u8; 32],
    eph: StaticSecret,
}

fn derive_key(shared: &[u8; 32], transcript: &[u8]) -> AeadKey {
    let okm = hkdf(b"attested-channel", shared, transcript, 32);
    let mut master = [0u8; 32];
    master.copy_from_slice(&okm);
    AeadKey::from_master(&master)
}

fn dir_nonce(counter: u64, from_client: bool) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[0] = from_client as u8;
    n[4..].copy_from_slice(&counter.to_be_bytes());
    n
}

impl AttestedChannel {
    /// Server step (non-stapled variant): respond with the quote alone; the
    /// client submits it to the attestation service itself — the paper's
    /// first §5.4 flow ("the server generates an attestation report and
    /// returns the report to the client, who could then present the report
    /// to IAS for verification"), which avoids the server ever contacting
    /// IAS at container-spawn time.
    pub fn server_respond_unstapled(
        rng: &mut impl rand::Rng,
        enclave: &Enclave,
        platform: &Platform,
        client_hello: &[u8],
    ) -> Result<(Vec<u8>, AttestedChannel), ChannelError> {
        if client_hello.len() != 64 {
            return Err(ChannelError::Malformed);
        }
        let mut client_pub = [0u8; 32];
        client_pub.copy_from_slice(&client_hello[32..]);
        let eph = StaticSecret::random(rng);
        let eph_pub = eph.public_key();
        let mut binding = Vec::with_capacity(96);
        binding.extend_from_slice(eph_pub.as_bytes());
        binding.extend_from_slice(client_hello);
        let report_data = sha256(&binding);
        let quote = platform.quote(enclave, report_data);
        // Serialize: eph_pub | quote (no report).
        let mut msg = Vec::new();
        msg.extend_from_slice(eph_pub.as_bytes());
        msg.extend_from_slice(&quote.platform_id.to_be_bytes());
        msg.extend_from_slice(&quote.measurement);
        msg.extend_from_slice(&quote.tcb_version.to_be_bytes());
        msg.extend_from_slice(&quote.report_data);
        msg.extend_from_slice(&quote.mac);
        let shared = eph.diffie_hellman(&PublicKey(client_pub));
        let mut transcript = client_hello.to_vec();
        transcript.extend_from_slice(eph_pub.as_bytes());
        let key = derive_key(&shared, &transcript);
        Ok((
            msg,
            AttestedChannel {
                key,
                send_counter: 0,
                recv_counter: 0,
                is_client: false,
            },
        ))
    }

    /// Client step 2 (non-stapled variant): parse the quote, submit it to
    /// the attestation service directly, verify, and derive the channel.
    /// This can be done "at any time before a client loads the function,
    /// preventing any correlation between client and function load" (§5.4).
    pub fn client_finish_with_ias(
        state: &ClientHello,
        server_hello: &[u8],
        ias: &mut Ias,
        expected_measurement: &[u8; 32],
    ) -> Result<AttestedChannel, ChannelError> {
        // 32 eph | 8 pid | 32 meas | 4 tcb | 32 rd | 32 mac
        if server_hello.len() != 32 + 8 + 32 + 4 + 32 + 32 {
            return Err(ChannelError::Malformed);
        }
        let mut pos = 0usize;
        let mut take = |n: usize| {
            let s = &server_hello[pos..pos + n];
            pos += n;
            s
        };
        let mut eph_pub = [0u8; 32];
        eph_pub.copy_from_slice(take(32));
        let platform_id = u64::from_be_bytes(take(8).try_into().expect("len"));
        let mut measurement = [0u8; 32];
        measurement.copy_from_slice(take(32));
        let tcb_version = u32::from_be_bytes(take(4).try_into().expect("len"));
        let mut report_data = [0u8; 32];
        report_data.copy_from_slice(take(32));
        let mut mac = [0u8; 32];
        mac.copy_from_slice(take(32));
        let quote = Quote {
            platform_id,
            measurement,
            tcb_version,
            report_data,
            mac,
        };
        // The client presents the quote to the attestation service itself.
        let report = ias
            .verify_quote(&quote)
            .map_err(ChannelError::Attestation)?;
        report
            .verify(&ias.verify_key(), &quote)
            .map_err(ChannelError::Attestation)?;
        let mut binding = Vec::with_capacity(96);
        binding.extend_from_slice(&eph_pub);
        binding.extend_from_slice(&state.nonce);
        binding.extend_from_slice(state.eph.public_key().as_bytes());
        if sha256(&binding) != report_data {
            return Err(ChannelError::BindingMismatch);
        }
        if &measurement != expected_measurement {
            return Err(ChannelError::WrongMeasurement);
        }
        let shared = state.eph.diffie_hellman(&PublicKey(eph_pub));
        let mut transcript = Vec::with_capacity(96);
        transcript.extend_from_slice(&state.nonce);
        transcript.extend_from_slice(state.eph.public_key().as_bytes());
        transcript.extend_from_slice(&eph_pub);
        let key = derive_key(&shared, &transcript);
        Ok(AttestedChannel {
            key,
            send_counter: 0,
            recv_counter: 0,
            is_client: true,
        })
    }

    /// Client step 1: produce the hello message (nonce ‖ eph key).
    pub fn client_hello(rng: &mut impl rand::Rng) -> (ClientHello, Vec<u8>) {
        let mut nonce = [0u8; 32];
        rng.fill(&mut nonce);
        let eph = StaticSecret::random(rng);
        let mut msg = Vec::with_capacity(64);
        msg.extend_from_slice(&nonce);
        msg.extend_from_slice(eph.public_key().as_bytes());
        (ClientHello { nonce, eph }, msg)
    }

    /// Server step: attest and respond. The conclave quotes over a digest
    /// binding its ephemeral key and the client's hello, fetches (staples)
    /// the IAS report, and derives its channel endpoint.
    pub fn server_respond(
        rng: &mut impl rand::Rng,
        enclave: &Enclave,
        platform: &Platform,
        ias: &mut Ias,
        client_hello: &[u8],
    ) -> Result<(Vec<u8>, AttestedChannel), ChannelError> {
        if client_hello.len() != 64 {
            return Err(ChannelError::Malformed);
        }
        let mut client_pub = [0u8; 32];
        client_pub.copy_from_slice(&client_hello[32..]);
        let eph = StaticSecret::random(rng);
        let eph_pub = eph.public_key();
        // Bind the DH key and the entire client hello into the quote.
        let mut binding = Vec::with_capacity(96);
        binding.extend_from_slice(eph_pub.as_bytes());
        binding.extend_from_slice(client_hello);
        let report_data = sha256(&binding);
        let quote = platform.quote(enclave, report_data);
        let report = ias
            .verify_quote(&quote)
            .map_err(ChannelError::Attestation)?;
        // Serialize: eph_pub | quote | report.
        let mut msg = Vec::new();
        msg.extend_from_slice(eph_pub.as_bytes());
        msg.extend_from_slice(&quote.platform_id.to_be_bytes());
        msg.extend_from_slice(&quote.measurement);
        msg.extend_from_slice(&quote.tcb_version.to_be_bytes());
        msg.extend_from_slice(&quote.report_data);
        msg.extend_from_slice(&quote.mac);
        msg.extend_from_slice(&report.quote_digest);
        msg.push(report.tcb_ok as u8);
        let sig = report.signature.to_bytes();
        msg.extend_from_slice(&(sig.len() as u32).to_be_bytes());
        msg.extend_from_slice(&sig);

        let shared = eph.diffie_hellman(&PublicKey(client_pub));
        let mut transcript = client_hello.to_vec();
        transcript.extend_from_slice(eph_pub.as_bytes());
        let key = derive_key(&shared, &transcript);
        Ok((
            msg,
            AttestedChannel {
                key,
                send_counter: 0,
                recv_counter: 0,
                is_client: false,
            },
        ))
    }

    /// Client step 2: verify the stapled report and derive the channel.
    /// `expected_measurement` pins the conclave image (Bento execution
    /// environment, not the individual function — §5.4).
    pub fn client_finish(
        state: &ClientHello,
        server_hello: &[u8],
        ias_key: &onion_crypto::hashsig::MerkleVerifyKey,
        expected_measurement: &[u8; 32],
    ) -> Result<AttestedChannel, ChannelError> {
        // 32 eph | 8 pid | 32 meas | 4 tcb | 32 rd | 32 mac | 32 digest |
        // 1 ok | 4 siglen | sig
        if server_hello.len() < 32 + 8 + 32 + 4 + 32 + 32 + 32 + 1 + 4 {
            return Err(ChannelError::Malformed);
        }
        let mut pos = 0usize;
        let mut take = |n: usize| {
            let s = &server_hello[pos..pos + n];
            pos += n;
            s
        };
        let mut eph_pub = [0u8; 32];
        eph_pub.copy_from_slice(take(32));
        let platform_id = u64::from_be_bytes(take(8).try_into().expect("len"));
        let mut measurement = [0u8; 32];
        measurement.copy_from_slice(take(32));
        let tcb_version = u32::from_be_bytes(take(4).try_into().expect("len"));
        let mut report_data = [0u8; 32];
        report_data.copy_from_slice(take(32));
        let mut mac = [0u8; 32];
        mac.copy_from_slice(take(32));
        let mut quote_digest = [0u8; 32];
        quote_digest.copy_from_slice(take(32));
        let tcb_ok = take(1)[0] != 0;
        let sig_len = u32::from_be_bytes(take(4).try_into().expect("len")) as usize;
        if server_hello.len() != 32 + 8 + 32 + 4 + 32 + 32 + 32 + 1 + 4 + sig_len {
            return Err(ChannelError::Malformed);
        }
        let signature = Signature::from_bytes(take(sig_len)).ok_or(ChannelError::Malformed)?;

        let quote = Quote {
            platform_id,
            measurement,
            tcb_version,
            report_data,
            mac,
        };
        let report = IasReport {
            quote_digest,
            tcb_ok,
            signature,
        };
        report
            .verify(ias_key, &quote)
            .map_err(ChannelError::Attestation)?;
        // Check the channel binding.
        let mut binding = Vec::with_capacity(96);
        binding.extend_from_slice(&eph_pub);
        binding.extend_from_slice(&state.nonce);
        binding.extend_from_slice(state.eph.public_key().as_bytes());
        if sha256(&binding) != report_data {
            return Err(ChannelError::BindingMismatch);
        }
        if &measurement != expected_measurement {
            return Err(ChannelError::WrongMeasurement);
        }
        let shared = state.eph.diffie_hellman(&PublicKey(eph_pub));
        let mut transcript = Vec::with_capacity(96);
        transcript.extend_from_slice(&state.nonce);
        transcript.extend_from_slice(state.eph.public_key().as_bytes());
        transcript.extend_from_slice(&eph_pub);
        let key = derive_key(&shared, &transcript);
        Ok(AttestedChannel {
            key,
            send_counter: 0,
            recv_counter: 0,
            is_client: true,
        })
    }

    /// Encrypt a message in place (nonce = direction ‖ counter: in-order
    /// delivery is enforced). `buf` grows by the tag length.
    pub fn seal_msg_in_place(&mut self, buf: &mut Vec<u8>) {
        let nonce = dir_nonce(self.send_counter, self.is_client);
        self.send_counter += 1;
        seal_in_place(&self.key, &nonce, b"", buf);
    }

    /// Encrypt a message, allocating the output buffer.
    pub fn seal_msg(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(plaintext.len() + TAG_LEN);
        buf.extend_from_slice(plaintext);
        self.seal_msg_in_place(&mut buf);
        buf
    }

    /// Decrypt the next message from the peer in place. On success `buf`
    /// shrinks to the plaintext; on failure it is untouched and the receive
    /// counter does not advance.
    pub fn open_msg_in_place(&mut self, buf: &mut Vec<u8>) -> Result<(), ChannelError> {
        let nonce = dir_nonce(self.recv_counter, !self.is_client);
        open_in_place(&self.key, &nonce, b"", buf).map_err(|_| ChannelError::BadMessage)?;
        self.recv_counter += 1;
        Ok(())
    }

    /// Decrypt the next message from the peer.
    pub fn open_msg(&mut self, sealed: &[u8]) -> Result<Vec<u8>, ChannelError> {
        let mut buf = sealed.to_vec();
        self.open_msg_in_place(&mut buf)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct Setup {
        rng: rand::rngs::StdRng,
        ias: Ias,
        platform: Platform,
        enclave: Enclave,
    }

    fn setup() -> Setup {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut ias = Ias::new([7u8; 32], 2);
        let platform = ias.provision_platform(1, &mut rng);
        let enclave = Enclave::create(1, b"bento conclave", 20 << 20, platform.tcb_version);
        Setup {
            rng,
            ias,
            platform,
            enclave,
        }
    }

    #[test]
    fn channel_establishes_and_carries_messages() {
        let mut s = setup();
        let (state, hello) = AttestedChannel::client_hello(&mut s.rng);
        let (reply, mut server) = AttestedChannel::server_respond(
            &mut s.rng,
            &s.enclave,
            &s.platform,
            &mut s.ias,
            &hello,
        )
        .unwrap();
        let mut client = AttestedChannel::client_finish(
            &state,
            &reply,
            &s.ias.verify_key(),
            &s.enclave.measurement,
        )
        .unwrap();
        // Client uploads the function; only the enclave can read it.
        let upload = client.seal_msg(b"def browser(url, padding): ...");
        assert_eq!(
            server.open_msg(&upload).unwrap(),
            b"def browser(url, padding): ..."
        );
        // And the reverse direction.
        let resp = server.seal_msg(b"invocation-token");
        assert_eq!(client.open_msg(&resp).unwrap(), b"invocation-token");
    }

    #[test]
    fn wrong_measurement_rejected() {
        let mut s = setup();
        let (state, hello) = AttestedChannel::client_hello(&mut s.rng);
        let (reply, _) = AttestedChannel::server_respond(
            &mut s.rng,
            &s.enclave,
            &s.platform,
            &mut s.ias,
            &hello,
        )
        .unwrap();
        let wrong = sha256(b"a different image");
        assert_eq!(
            AttestedChannel::client_finish(&state, &reply, &s.ias.verify_key(), &wrong)
                .err()
                .unwrap(),
            ChannelError::WrongMeasurement
        );
    }

    #[test]
    fn substituted_dh_key_breaks_binding() {
        let mut s = setup();
        let (state, hello) = AttestedChannel::client_hello(&mut s.rng);
        let (mut reply, _) = AttestedChannel::server_respond(
            &mut s.rng,
            &s.enclave,
            &s.platform,
            &mut s.ias,
            &hello,
        )
        .unwrap();
        // An operator-in-the-middle swaps the DH key to its own.
        let mallory = StaticSecret::random(&mut s.rng);
        reply[..32].copy_from_slice(mallory.public_key().as_bytes());
        let r = AttestedChannel::client_finish(
            &state,
            &reply,
            &s.ias.verify_key(),
            &s.enclave.measurement,
        );
        assert_eq!(r.err().unwrap(), ChannelError::BindingMismatch);
    }

    #[test]
    fn replayed_hello_yields_distinct_keys() {
        let mut s = setup();
        let (state, hello) = AttestedChannel::client_hello(&mut s.rng);
        let (r1, mut srv1) = AttestedChannel::server_respond(
            &mut s.rng,
            &s.enclave,
            &s.platform,
            &mut s.ias,
            &hello,
        )
        .unwrap();
        let (_r2, mut srv2) = AttestedChannel::server_respond(
            &mut s.rng,
            &s.enclave,
            &s.platform,
            &mut s.ias,
            &hello,
        )
        .unwrap();
        let mut client = AttestedChannel::client_finish(
            &state,
            &r1,
            &s.ias.verify_key(),
            &s.enclave.measurement,
        )
        .unwrap();
        let m = client.seal_msg(b"for server 1 only");
        assert!(srv1.open_msg(&m).is_ok());
        let m2 = client.seal_msg(b"again");
        assert!(srv2.open_msg(&m2).is_err(), "different session keys");
    }

    #[test]
    fn out_of_order_messages_rejected() {
        let mut s = setup();
        let (state, hello) = AttestedChannel::client_hello(&mut s.rng);
        let (reply, mut server) = AttestedChannel::server_respond(
            &mut s.rng,
            &s.enclave,
            &s.platform,
            &mut s.ias,
            &hello,
        )
        .unwrap();
        let mut client = AttestedChannel::client_finish(
            &state,
            &reply,
            &s.ias.verify_key(),
            &s.enclave.measurement,
        )
        .unwrap();
        let m1 = client.seal_msg(b"first");
        let m2 = client.seal_msg(b"second");
        // Replaying/reordering fails.
        assert!(server.open_msg(&m2).is_err());
        assert!(server.open_msg(&m1).is_ok());
        assert!(server.open_msg(&m1).is_err(), "replay rejected");
        assert!(server.open_msg(&m2).is_ok());
    }

    #[test]
    fn stale_tcb_platform_rejected_by_client() {
        let mut s = setup();
        s.ias.set_min_tcb(s.platform.tcb_version + 1);
        let (state, hello) = AttestedChannel::client_hello(&mut s.rng);
        let (reply, _) = AttestedChannel::server_respond(
            &mut s.rng,
            &s.enclave,
            &s.platform,
            &mut s.ias,
            &hello,
        )
        .unwrap();
        let r = AttestedChannel::client_finish(
            &state,
            &reply,
            &s.ias.verify_key(),
            &s.enclave.measurement,
        );
        assert!(matches!(
            r,
            Err(ChannelError::Attestation(
                AttestationError::TcbOutOfDate { .. }
            ))
        ));
    }

    #[test]
    fn malformed_messages_rejected() {
        let mut s = setup();
        assert!(matches!(
            AttestedChannel::server_respond(
                &mut s.rng,
                &s.enclave,
                &s.platform,
                &mut s.ias,
                b"short"
            ),
            Err(ChannelError::Malformed)
        ));
        let (state, _hello) = AttestedChannel::client_hello(&mut s.rng);
        assert!(matches!(
            AttestedChannel::client_finish(
                &state,
                b"short",
                &s.ias.verify_key(),
                &s.enclave.measurement
            ),
            Err(ChannelError::Malformed)
        ));
    }
}

#[cfg(test)]
mod unstapled_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn unstapled_flow_establishes_channel() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut ias = Ias::new([4u8; 32], 2);
        let platform = ias.provision_platform(2, &mut rng);
        let enclave = Enclave::create(2, b"image", 1 << 20, platform.tcb_version);
        let (state, hello) = AttestedChannel::client_hello(&mut rng);
        let (reply, mut server) =
            AttestedChannel::server_respond_unstapled(&mut rng, &enclave, &platform, &hello)
                .unwrap();
        let mut client =
            AttestedChannel::client_finish_with_ias(&state, &reply, &mut ias, &enclave.measurement)
                .unwrap();
        let m = client.seal_msg(b"function source");
        assert_eq!(server.open_msg(&m).unwrap(), b"function source");
    }

    #[test]
    fn unstapled_rejects_unknown_platform_and_wrong_image() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut ias = Ias::new([4u8; 32], 2);
        let platform = ias.provision_platform(3, &mut rng);
        let enclave = Enclave::create(3, b"image", 1 << 20, platform.tcb_version);
        // A rogue platform IAS never provisioned.
        let rogue = Platform::new(99, [9u8; 32], 5);
        let (state, hello) = AttestedChannel::client_hello(&mut rng);
        let (reply, _) =
            AttestedChannel::server_respond_unstapled(&mut rng, &enclave, &rogue, &hello).unwrap();
        assert!(matches!(
            AttestedChannel::client_finish_with_ias(&state, &reply, &mut ias, &enclave.measurement),
            Err(ChannelError::Attestation(AttestationError::UnknownPlatform))
        ));
        // Honest platform but unexpected image.
        let (state, hello) = AttestedChannel::client_hello(&mut rng);
        let (reply, _) =
            AttestedChannel::server_respond_unstapled(&mut rng, &enclave, &platform, &hello)
                .unwrap();
        let wrong = sha256(b"different image");
        assert!(matches!(
            AttestedChannel::client_finish_with_ias(&state, &reply, &mut ias, &wrong),
            Err(ChannelError::WrongMeasurement)
        ));
    }
}
