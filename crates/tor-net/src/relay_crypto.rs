//! Layered onion encryption for relay cells — Tor's scheme, with ChaCha20
//! in place of AES-CTR and SHA-256 in place of SHA-1.
//!
//! Each hop of a circuit holds a [`LayerCrypto`]: a pair of stream ciphers
//! (one per direction, positions advancing across cells) and a pair of
//! *running digests*. When an endpoint addresses a relay cell to a hop, it
//! feeds the cell (digest field zeroed) into that hop's running digest and
//! writes the first four digest bytes into the cell, then encrypts. A hop
//! receiving a cell strips one cipher layer and checks `recognized == 0`
//! and the digest against its own running digest — a match means "this cell
//! is for me"; anything else is forwarded another hop.

use crate::cell::PAYLOAD_LEN;
use onion_crypto::chacha20::ChaCha20;
use onion_crypto::ntor::CircuitKeys;
use onion_crypto::sha256::Sha256;

/// Keystream bytes prefetched per refill when batch mode is on: eight
/// 1024-byte wide-pair groups, so every refill runs entirely in the 8-lane
/// interleaved fast path of [`ChaCha20::apply`] (16 cells' worth).
const PREFETCH_BYTES: usize = 8192;

/// A cell-granularity stream cipher: a [`ChaCha20`] plus an optional
/// prefetched keystream window.
///
/// With prefetch off this is a plain pass-through to [`ChaCha20::apply`].
/// With prefetch on, keystream is generated [`PREFETCH_BYTES`] at a time
/// into a contiguous buffer (one all-wide-lane pass) and cells XOR against
/// that window — amortizing the per-509-byte tail overhead of the direct
/// path. Because ChaCha20 keystream depends only on stream position, the
/// two modes are byte-identical at any interleaving, and prefetch can be
/// switched on mid-stream (the next refill continues from the cipher's
/// current position).
struct CellCipher {
    cipher: ChaCha20,
    buf: Vec<u8>,
    pos: usize,
    prefetch: bool,
}

impl CellCipher {
    fn new(key: &[u8; 32], nonce: &[u8; 12]) -> CellCipher {
        CellCipher {
            cipher: ChaCha20::new(key, nonce),
            buf: Vec::new(),
            pos: 0,
            prefetch: false,
        }
    }

    fn enable_prefetch(&mut self) {
        self.prefetch = true;
    }

    /// XOR the keystream into `data`, drawing from the prefetched window
    /// when batch mode is on.
    fn apply(&mut self, data: &mut [u8]) {
        if !self.prefetch {
            self.cipher.apply(data);
            return;
        }
        let mut data = data;
        while !data.is_empty() {
            if self.pos == self.buf.len() {
                if self.buf.len() < PREFETCH_BYTES {
                    self.buf.resize(PREFETCH_BYTES, 0);
                }
                self.cipher.keystream_into(&mut self.buf);
                self.pos = 0;
            }
            let take = (self.buf.len() - self.pos).min(data.len());
            for (byte, ks) in data[..take]
                .iter_mut()
                .zip(self.buf[self.pos..self.pos + take].iter())
            {
                *byte ^= ks;
            }
            self.pos += take;
            data = &mut data[take..];
        }
    }
}

/// One hop's cryptographic state, from the perspective of one endpoint.
pub struct LayerCrypto {
    send_cipher: CellCipher,
    recv_cipher: CellCipher,
    send_digest: Sha256,
    recv_digest: Sha256,
}

fn seeded_digest(seed: &[u8; 32]) -> Sha256 {
    let mut d = Sha256::new();
    d.update(seed);
    d
}

impl LayerCrypto {
    /// The circuit originator's view of a hop: sends with the forward keys,
    /// receives with the backward keys.
    pub fn client_side(keys: &CircuitKeys) -> LayerCrypto {
        LayerCrypto {
            send_cipher: CellCipher::new(&keys.kf, &keys.nf),
            recv_cipher: CellCipher::new(&keys.kb, &keys.nb),
            send_digest: seeded_digest(&keys.df),
            recv_digest: seeded_digest(&keys.db),
        }
    }

    /// The relay's (or rendezvous-service's) view: sends with the backward
    /// keys, receives with the forward keys.
    pub fn relay_side(keys: &CircuitKeys) -> LayerCrypto {
        LayerCrypto {
            send_cipher: CellCipher::new(&keys.kb, &keys.nb),
            recv_cipher: CellCipher::new(&keys.kf, &keys.nf),
            send_digest: seeded_digest(&keys.db),
            recv_digest: seeded_digest(&keys.df),
        }
    }

    /// Switch both directions to batched keystream prefetch. Safe at any
    /// point in a cell stream — output stays byte-identical to the direct
    /// path; only the amortization of keystream generation changes.
    pub fn enable_batch(&mut self) {
        self.send_cipher.enable_prefetch();
        self.recv_cipher.enable_prefetch();
    }

    /// True when [`LayerCrypto::enable_batch`] has been called.
    pub fn batch_enabled(&self) -> bool {
        self.recv_cipher.prefetch
    }

    /// Seal a payload addressed to this hop: compute and write the running
    /// digest, then apply this hop's send cipher.
    pub fn seal(&mut self, payload: &mut [u8; PAYLOAD_LEN]) {
        payload[1] = 0;
        payload[2] = 0; // recognized
                        // Absorb the payload with the digest field zeroed by feeding three
                        // slices — no zeroed copy of the cell is ever materialized.
        self.send_digest
            .update(&payload[..5])
            .update(&[0; 4])
            .update(&payload[9..]);
        let full = self.send_digest.clone_finalize();
        payload[5..9].copy_from_slice(&full[..4]);
        self.send_cipher.apply(payload);
    }

    /// Apply one layer of send-direction encryption without digesting
    /// (wrapping a cell addressed to a *later* hop).
    pub fn encrypt_layer(&mut self, payload: &mut [u8; PAYLOAD_LEN]) {
        self.send_cipher.apply(payload);
    }

    /// Strip one layer of receive-direction encryption and test whether the
    /// cell is addressed to this hop. On a match the running digest is
    /// committed; otherwise the payload is left decrypted-by-one-layer for
    /// forwarding (or further stripping by the caller).
    pub fn unseal(&mut self, payload: &mut [u8; PAYLOAD_LEN]) -> bool {
        self.recv_cipher.apply(payload);
        if payload[1] != 0 || payload[2] != 0 {
            return false;
        }
        // Digest the cell as three slices (digest field replaced by zeros)
        // against a single trial clone — no payload copy, and the check
        // itself peeks via `clone_finalize` rather than cloning the hasher.
        let mut trial = self.recv_digest.clone();
        trial
            .update(&payload[..5])
            .update(&[0; 4])
            .update(&payload[9..]);
        let full = trial.clone_finalize();
        if full[..4] != payload[5..9] {
            return false;
        }
        self.recv_digest = trial;
        true
    }

    /// Strip one receive-direction layer from a run of cells of this hop's
    /// circuit, in arrival order, writing each cell's recognition result to
    /// `recognized`. Running-digest commits chain exactly as a sequence of
    /// [`LayerCrypto::unseal`] calls would, so mixed outcomes within one run
    /// are legal and the output is byte-for-byte identical to the
    /// sequential path. With [`LayerCrypto::enable_batch`] on, the run's
    /// keystream is drawn from the prefetched wide-lane window.
    ///
    /// # Panics
    /// If `payloads` and `recognized` differ in length.
    pub fn unseal_batch(
        &mut self,
        payloads: &mut [&mut [u8; PAYLOAD_LEN]],
        recognized: &mut [bool],
    ) {
        assert_eq!(payloads.len(), recognized.len());
        for (payload, flag) in payloads.iter_mut().zip(recognized.iter_mut()) {
            *flag = self.unseal(payload);
        }
    }

    /// Seal a run of cells addressed to this hop, in send order — the
    /// batched counterpart of [`LayerCrypto::seal`], byte-identical to
    /// sealing each cell in sequence.
    pub fn seal_batch(&mut self, payloads: &mut [&mut [u8; PAYLOAD_LEN]]) {
        for payload in payloads.iter_mut() {
            self.seal(payload);
        }
    }

    /// Apply one send-direction encryption layer to a run of cells, in
    /// order — the batched counterpart of [`LayerCrypto::encrypt_layer`].
    pub fn encrypt_layer_batch(&mut self, payloads: &mut [&mut [u8; PAYLOAD_LEN]]) {
        for payload in payloads.iter_mut() {
            self.encrypt_layer(payload);
        }
    }
}

/// The originator's whole-circuit view: an ordered stack of hop layers.
///
/// ```
/// use tor_net::relay_crypto::{CircuitCrypto, LayerCrypto};
/// use tor_net::cell::{RelayCell, RelayCmd};
/// use onion_crypto::ntor::CircuitKeys;
/// # fn keys(t: u8) -> CircuitKeys { CircuitKeys { kf: [t;32], kb: [t^1;32], df: [t^2;32], db: [t^3;32], nf: [t;12], nb: [t^1;12] } }
/// let (mut client, mut relay) = (CircuitCrypto::new(), LayerCrypto::relay_side(&keys(7)));
/// client.push_hop(LayerCrypto::client_side(&keys(7)));
/// let mut payload = RelayCell::new(RelayCmd::Data, 1, b"hi".to_vec()).encode_payload();
/// client.seal_for_last(&mut payload);
/// assert!(relay.unseal(&mut payload)); // recognized at the addressed hop
/// ```
#[derive(Default)]
pub struct CircuitCrypto {
    hops: Vec<LayerCrypto>,
}

impl CircuitCrypto {
    /// Empty (no hops yet).
    pub fn new() -> CircuitCrypto {
        CircuitCrypto { hops: Vec::new() }
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True when no hops have been added.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Append a hop (after a successful CREATE/EXTEND or an e2e rendezvous
    /// handshake).
    pub fn push_hop(&mut self, layer: LayerCrypto) {
        self.hops.push(layer);
    }

    /// Seal `payload` for the hop at `hop_index`, wrapping it in every
    /// earlier hop's layer.
    ///
    /// # Panics
    /// If `hop_index` is out of range.
    pub fn seal_for_hop(&mut self, hop_index: usize, payload: &mut [u8; PAYLOAD_LEN]) {
        self.hops[hop_index].seal(payload);
        for i in (0..hop_index).rev() {
            self.hops[i].encrypt_layer(payload);
        }
    }

    /// Seal for the terminal hop.
    pub fn seal_for_last(&mut self, payload: &mut [u8; PAYLOAD_LEN]) {
        let last = self.hops.len() - 1;
        self.seal_for_hop(last, payload);
    }

    /// Strip layers of an inbound (backward) cell until some hop recognizes
    /// it. Returns the index of the recognizing hop, or `None` if no hop
    /// recognized the cell (protocol violation or tagging attack).
    pub fn unwrap_inbound(&mut self, payload: &mut [u8; PAYLOAD_LEN]) -> Option<usize> {
        for (i, hop) in self.hops.iter_mut().enumerate() {
            if hop.unseal(payload) {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{RelayCell, RelayCmd};
    use onion_crypto::ntor::CircuitKeys;

    fn test_keys(tag: u8) -> CircuitKeys {
        CircuitKeys {
            kf: [tag; 32],
            kb: [tag ^ 0xFF; 32],
            df: [tag.wrapping_add(1); 32],
            db: [tag.wrapping_add(2); 32],
            nf: [tag; 12],
            nb: [tag ^ 0xFF; 12],
        }
    }

    /// Builds a 3-hop circuit as (client stack, relay-side layers).
    fn three_hops() -> (CircuitCrypto, Vec<LayerCrypto>) {
        let mut client = CircuitCrypto::new();
        let mut relays = Vec::new();
        for tag in [1u8, 2, 3] {
            let keys = test_keys(tag);
            client.push_hop(LayerCrypto::client_side(&keys));
            relays.push(LayerCrypto::relay_side(&keys));
        }
        (client, relays)
    }

    #[test]
    fn forward_cell_recognized_only_at_target_hop() {
        let (mut client, mut relays) = three_hops();
        let rc = RelayCell::new(RelayCmd::Data, 5, b"to the exit".to_vec());
        let mut payload = rc.encode_payload();
        client.seal_for_hop(2, &mut payload);
        // Hop 0 (guard): strips a layer, does not recognize.
        assert!(!relays[0].unseal(&mut payload));
        // Hop 1 (middle): same.
        assert!(!relays[1].unseal(&mut payload));
        // Hop 2 (exit): recognizes and parses.
        assert!(relays[2].unseal(&mut payload));
        let parsed = RelayCell::parse_payload(&payload).unwrap();
        assert_eq!(parsed.cmd, RelayCmd::Data);
        assert_eq!(parsed.stream_id, 5);
        assert_eq!(parsed.data, b"to the exit");
    }

    #[test]
    fn forward_cell_to_middle_hop() {
        let (mut client, mut relays) = three_hops();
        let rc = RelayCell::new(RelayCmd::Sendme, 0, vec![]);
        let mut payload = rc.encode_payload();
        client.seal_for_hop(1, &mut payload);
        assert!(!relays[0].unseal(&mut payload));
        assert!(relays[1].unseal(&mut payload));
    }

    #[test]
    fn backward_cell_unwraps_at_origin() {
        let (mut client, mut relays) = three_hops();
        // Exit seals a reply; middle and guard each add a layer.
        let rc = RelayCell::new(RelayCmd::Data, 5, b"reply".to_vec());
        let mut payload = rc.encode_payload();
        relays[2].seal(&mut payload);
        relays[1].encrypt_layer(&mut payload);
        relays[0].encrypt_layer(&mut payload);
        let hop = client.unwrap_inbound(&mut payload);
        assert_eq!(hop, Some(2));
        let parsed = RelayCell::parse_payload(&payload).unwrap();
        assert_eq!(parsed.data, b"reply");
    }

    #[test]
    fn backward_cell_from_middle_hop() {
        let (mut client, mut relays) = three_hops();
        let rc = RelayCell::new(RelayCmd::Extended, 0, b"handshake".to_vec());
        let mut payload = rc.encode_payload();
        relays[1].seal(&mut payload);
        relays[0].encrypt_layer(&mut payload);
        assert_eq!(client.unwrap_inbound(&mut payload), Some(1));
    }

    #[test]
    fn digest_chains_across_many_cells() {
        let (mut client, mut relays) = three_hops();
        for i in 0..50u16 {
            let rc = RelayCell::new(RelayCmd::Data, i, vec![i as u8; (i as usize * 7) % 400]);
            let mut payload = rc.encode_payload();
            client.seal_for_hop(2, &mut payload);
            assert!(!relays[0].unseal(&mut payload));
            assert!(!relays[1].unseal(&mut payload));
            assert!(relays[2].unseal(&mut payload), "cell {i} unrecognized");
            assert_eq!(RelayCell::parse_payload(&payload).unwrap().stream_id, i);
        }
    }

    #[test]
    fn tampered_cell_is_not_recognized() {
        let (mut client, mut relays) = three_hops();
        let rc = RelayCell::new(RelayCmd::Data, 1, b"integrity".to_vec());
        let mut payload = rc.encode_payload();
        client.seal_for_hop(2, &mut payload);
        payload[100] ^= 0x01; // on-path tagging attempt
        assert!(!relays[0].unseal(&mut payload));
        assert!(!relays[1].unseal(&mut payload));
        assert!(
            !relays[2].unseal(&mut payload),
            "tampered cell must not verify"
        );
    }

    #[test]
    fn virtual_e2e_hop_composes() {
        // Simulate a rendezvous circuit: client has 3 relay hops + an e2e
        // hop whose counterpart is the hidden service.
        let (mut client, mut relays) = three_hops();
        let e2e = test_keys(9);
        client.push_hop(LayerCrypto::client_side(&e2e));
        let mut service = LayerCrypto::relay_side(&e2e);

        // Client → service.
        let rc = RelayCell::new(RelayCmd::Begin, 1, b"hs:443".to_vec());
        let mut payload = rc.encode_payload();
        client.seal_for_hop(3, &mut payload);
        assert!(!relays[0].unseal(&mut payload));
        assert!(!relays[1].unseal(&mut payload));
        assert!(!relays[2].unseal(&mut payload)); // RP strips, doesn't recognize
        assert!(service.unseal(&mut payload));
        assert_eq!(
            RelayCell::parse_payload(&payload).unwrap().cmd,
            RelayCmd::Begin
        );

        // Service → client: service seals, RP/middle/guard wrap.
        let rc = RelayCell::new(RelayCmd::Connected, 1, vec![]);
        let mut payload = rc.encode_payload();
        service.seal(&mut payload);
        relays[2].encrypt_layer(&mut payload);
        relays[1].encrypt_layer(&mut payload);
        relays[0].encrypt_layer(&mut payload);
        assert_eq!(client.unwrap_inbound(&mut payload), Some(3));
    }

    /// Batch mode (prefetched keystream) is byte-identical to the direct
    /// path across a long cell stream, including when enabled mid-stream.
    #[test]
    fn batch_mode_is_byte_identical() {
        let keys = test_keys(4);
        let mut plain = LayerCrypto::relay_side(&keys);
        let mut batched = LayerCrypto::relay_side(&keys);
        assert!(!batched.batch_enabled());
        let mut client_a = LayerCrypto::client_side(&keys);
        let mut client_b = LayerCrypto::client_side(&keys);
        for i in 0..80u16 {
            if i == 23 {
                batched.enable_batch(); // mid-stream switch must be seamless
                assert!(batched.batch_enabled());
            }
            let rc = RelayCell::new(RelayCmd::Data, i, vec![i as u8; (i as usize * 11) % 400]);
            let mut pa = rc.encode_payload();
            let mut pb = pa;
            client_a.seal(&mut pa);
            client_b.seal(&mut pb);
            assert_eq!(pa, pb, "cell {i}: client seal must not depend on mode");
            assert!(plain.unseal(&mut pa));
            assert!(batched.unseal(&mut pb));
            assert_eq!(pa, pb, "cell {i}: unseal output diverged");
            // Reply direction exercises the send cipher of both modes.
            let reply = RelayCell::new(RelayCmd::Data, i, vec![0x5A; 100]);
            let mut ra = reply.encode_payload();
            let mut rb = ra;
            plain.seal(&mut ra);
            batched.seal(&mut rb);
            assert_eq!(ra, rb, "cell {i}: seal output diverged");
        }
    }

    /// `unseal_batch` over a run equals per-cell `unseal`, including a
    /// digest-failure cell rejected at the same index with identical bytes.
    #[test]
    fn unseal_batch_matches_sequential() {
        let keys = test_keys(6);
        let mut client_a = LayerCrypto::client_side(&keys);
        let mut client_b = LayerCrypto::client_side(&keys);
        let mut seq = LayerCrypto::relay_side(&keys);
        let mut bat = LayerCrypto::relay_side(&keys);
        bat.enable_batch();
        for n in [1usize, 3, 8, 16, 17] {
            let mut run_a: Vec<[u8; PAYLOAD_LEN]> = Vec::new();
            let mut run_b: Vec<[u8; PAYLOAD_LEN]> = Vec::new();
            for i in 0..n {
                let rc = RelayCell::new(RelayCmd::Data, i as u16, vec![i as u8; 64]);
                let mut p = rc.encode_payload();
                client_a.seal(&mut p);
                run_a.push(p);
                let rc = RelayCell::new(RelayCmd::Data, i as u16, vec![i as u8; 64]);
                let mut p = rc.encode_payload();
                client_b.seal(&mut p);
                run_b.push(p);
            }
            // Corrupt the middle cell of each run identically.
            if n >= 3 {
                run_a[n / 2][200] ^= 1;
                run_b[n / 2][200] ^= 1;
            }
            let expect: Vec<bool> = run_a.iter_mut().map(|p| seq.unseal(p)).collect();
            let mut got = vec![false; n];
            let mut refs: Vec<&mut [u8; PAYLOAD_LEN]> = run_b.iter_mut().collect();
            bat.unseal_batch(&mut refs, &mut got);
            assert_eq!(got, expect, "run of {n}: recognition flags");
            assert_eq!(run_a, run_b, "run of {n}: payload bytes");
            if n >= 3 {
                assert!(!got[n / 2], "corrupted cell must be rejected");
            }
        }
    }

    /// `seal_batch` / `encrypt_layer_batch` equal their sequential forms.
    #[test]
    fn seal_batch_matches_sequential() {
        let keys = test_keys(8);
        let mut seq = LayerCrypto::relay_side(&keys);
        let mut bat = LayerCrypto::relay_side(&keys);
        bat.enable_batch();
        let make = |i: usize| {
            RelayCell::new(RelayCmd::Data, i as u16, vec![0xC3; 200 + i]).encode_payload()
        };
        let mut run_a: Vec<[u8; PAYLOAD_LEN]> = (0..9).map(make).collect();
        let mut run_b = run_a.clone();
        for p in run_a.iter_mut() {
            seq.seal(p);
        }
        let mut refs: Vec<&mut [u8; PAYLOAD_LEN]> = run_b.iter_mut().collect();
        bat.seal_batch(&mut refs);
        assert_eq!(run_a, run_b);

        let mut run_a: Vec<[u8; PAYLOAD_LEN]> = (0..5).map(make).collect();
        let mut run_b = run_a.clone();
        for p in run_a.iter_mut() {
            seq.encrypt_layer(p);
        }
        let mut refs: Vec<&mut [u8; PAYLOAD_LEN]> = run_b.iter_mut().collect();
        bat.encrypt_layer_batch(&mut refs);
        assert_eq!(run_a, run_b);
    }
}
