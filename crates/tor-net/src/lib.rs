//! # tor-net — a Tor overlay network on the `simnet` simulator
//!
//! This crate implements, from scratch, everything the Bento paper assumes
//! of the Tor substrate it runs on:
//!
//! * **Cells** ([`cell`]): fixed 514-byte link cells with the relay-cell
//!   sublayout (recognized / stream id / digest / length).
//! * **Layered onion crypto** ([`relay_crypto`]): per-hop ChaCha20 streams
//!   and running-SHA256 "recognized" digests, exactly Tor's scheme.
//! * **Relays** ([`relay`]): OR-port cell switching, circuit extension via
//!   the ntor handshake, exit streams with exit policies, directory
//!   service (authority and HSDir roles), introduction and rendezvous
//!   point roles, and local-stream events ([`relay::RelayEvent`]) that let
//!   a co-resident service (the Bento server) receive streams addressed to
//!   the relay itself — the paper's "exit policy allows connecting to the
//!   Bento server via localhost" deployment.
//! * **Clients** ([`client`]): the onion-proxy component — consensus
//!   bootstrap, weighted path selection, circuit construction, streams,
//!   circuit-level SENDME flow control, cover (DROP) cells, and the
//!   client side of rendezvous with an end-to-end virtual hop.
//! * **Hidden services** ([`hs`]): descriptor publication to HSDirs,
//!   introduction-point management, and rendezvous-side splicing — plus
//!   the hook the LoadBalancer function uses to hand an INTRODUCE2 to a
//!   replica instead of answering itself.
//! * **Directory** ([`dir`]): authority consensus (hash-signed), relay
//!   descriptor upload, HS descriptor storage on HSDir relays.
//!
//! Components are designed for *composition*: a host [`simnet::Node`] can
//! embed a [`relay::RelayCore`] and/or a [`client::TorClient`] and dispatch
//! callbacks to them, which is how the Bento crate builds a middlebox node
//! that is simultaneously a Tor relay, a Bento server, and an onion proxy
//! (Figure 3 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod client;
pub mod dir;
pub mod hs;
pub mod netbuild;
pub mod ports;
pub mod relay;
pub mod relay_crypto;
pub mod retry;
pub mod stream_frame;

pub use cell::{Cell, CellCmd, RelayCmd, CELL_LEN, MAX_RELAY_DATA};
pub use client::{CircuitHandle, StreamTarget, TorClient, TorEvent};
pub use dir::OnionAddr;
pub use dir::{Consensus, ExitPolicy, Fingerprint, RelayFlags, RelayInfo};
pub use hs::{HiddenServiceHost, HsEvent};
pub use netbuild::{NetworkBuilder, TestClientNode, TorNetwork, WebServerNode};
pub use relay::{LocalStream, RelayConfig, RelayCore, RelayEvent, RelayNode};
pub use retry::{Backoff, BackoffPolicy, FailureCache};
