//! Directory documents: relay descriptors, exit policies, the signed
//! consensus, and hidden-service descriptors, plus the directory protocol
//! messages exchanged on DIR streams/connections.
//!
//! The authority signs the consensus with a hash-based Merkle signature
//! ([`onion_crypto::hashsig`]); clients verify against a pinned authority
//! key, mirroring Tor's hardcoded directory-authority keys.

use onion_crypto::hashsig::{MerkleVerifyKey, Signature};
use onion_crypto::sha256::sha256;
use onion_crypto::x25519::PublicKey;
use simnet::wire::{Reader, WireError, Writer};
use simnet::NodeId;

/// A relay's identity fingerprint (20 bytes, hash of its identity key).
pub type Fingerprint = [u8; 20];

/// A hidden service's address: the hash of its identity (signing) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OnionAddr(pub [u8; 32]);

impl OnionAddr {
    /// Derive the onion address from a service's identity verify key.
    pub fn from_service_key(vk: &MerkleVerifyKey) -> OnionAddr {
        let mut input = Vec::with_capacity(33);
        input.extend_from_slice(&vk.root);
        input.push(vk.height);
        OnionAddr(sha256(&input))
    }

    /// Short printable form ("abcdef0123.onion").
    pub fn to_string_short(&self) -> String {
        let hex: String = self.0[..5].iter().map(|b| format!("{b:02x}")).collect();
        format!("{hex}.onion")
    }
}

/// Role/capability flags in the consensus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelayFlags(pub u16);

impl RelayFlags {
    /// Suitable as an entry guard.
    pub const GUARD: u16 = 1 << 0;
    /// Willing to be an exit (has a usable exit policy).
    pub const EXIT: u16 = 1 << 1;
    /// Stores hidden-service descriptors.
    pub const HSDIR: u16 = 1 << 2;
    /// Runs a Bento server (the paper's middlebox opt-in).
    pub const BENTO: u16 = 1 << 3;
    /// Directory authority.
    pub const AUTHORITY: u16 = 1 << 4;
    /// Fast/stable relay (eligible for any position).
    pub const FAST: u16 = 1 << 5;

    /// Does this flag set contain all bits of `mask`?
    pub fn has(self, mask: u16) -> bool {
        self.0 & mask == mask
    }

    /// Set `mask` bits.
    pub fn with(mut self, mask: u16) -> Self {
        self.0 |= mask;
        self
    }
}

/// One exit-policy rule: accept or reject a destination/port pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyRule {
    /// Accept (true) or reject (false).
    pub accept: bool,
    /// Destination host; `None` is a wildcard.
    pub host: Option<NodeId>,
    /// Inclusive port range.
    pub ports: (u16, u16),
}

impl PolicyRule {
    fn matches(&self, host: NodeId, port: u16) -> bool {
        self.host.map(|h| h == host).unwrap_or(true) && port >= self.ports.0 && port <= self.ports.1
    }
}

/// An ordered exit policy: first matching rule wins; default reject.
///
/// The Bento server converts this same policy into per-container network
/// rules (the paper's iptables translation, §5.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExitPolicy {
    /// Rules in priority order.
    pub rules: Vec<PolicyRule>,
}

impl ExitPolicy {
    /// Reject everything (a non-exit relay).
    pub fn reject_all() -> ExitPolicy {
        ExitPolicy { rules: Vec::new() }
    }

    /// Accept any destination on any port.
    pub fn accept_all() -> ExitPolicy {
        ExitPolicy {
            rules: vec![PolicyRule {
                accept: true,
                host: None,
                ports: (0, u16::MAX),
            }],
        }
    }

    /// Accept only web ports (80/443) anywhere — a typical exit.
    pub fn web_only() -> ExitPolicy {
        ExitPolicy {
            rules: vec![
                PolicyRule {
                    accept: true,
                    host: None,
                    ports: (80, 80),
                },
                PolicyRule {
                    accept: true,
                    host: None,
                    ports: (443, 443),
                },
            ],
        }
    }

    /// Append an accept rule for one host:port (e.g. localhost Bento).
    pub fn with_accept(mut self, host: NodeId, port: u16) -> Self {
        self.rules.push(PolicyRule {
            accept: true,
            host: Some(host),
            ports: (port, port),
        });
        self
    }

    /// Evaluate the policy.
    pub fn allows(&self, host: NodeId, port: u16) -> bool {
        for r in &self.rules {
            if r.matches(host, port) {
                return r.accept;
            }
        }
        false
    }

    fn encode_into(&self, w: &mut Writer) {
        w.varu64(self.rules.len() as u64);
        for r in &self.rules {
            w.bool(r.accept);
            match r.host {
                Some(h) => {
                    w.u8(1);
                    w.u32(h.0);
                }
                None => {
                    w.u8(0);
                }
            }
            w.u16(r.ports.0);
            w.u16(r.ports.1);
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<ExitPolicy, WireError> {
        let n = r.varu64()?;
        if n > 1024 {
            return Err(WireError::LengthTooLarge {
                what: "exit policy rules",
                announced: n,
                max: 1024,
            });
        }
        let mut rules = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let accept = r.bool()?;
            let host = match r.u8()? {
                0 => None,
                1 => Some(NodeId(r.u32()?)),
                v => {
                    return Err(WireError::BadDiscriminant {
                        what: "policy host",
                        value: v as u64,
                    })
                }
            };
            let ports = (r.u16()?, r.u16()?);
            rules.push(PolicyRule {
                accept,
                host,
                ports,
            });
        }
        Ok(ExitPolicy { rules })
    }
}

/// One relay's entry in the consensus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayInfo {
    /// Identity fingerprint.
    pub fingerprint: Fingerprint,
    /// Human-readable nickname.
    pub nickname: String,
    /// Simulated-network address.
    pub addr: NodeId,
    /// OR (cell) port.
    pub or_port: u16,
    /// Directory port.
    pub dir_port: u16,
    /// Long-term ntor onion key.
    pub onion_key: PublicKey,
    /// Role flags.
    pub flags: RelayFlags,
    /// Advertised bandwidth (bytes/s) for weighted path selection.
    pub bandwidth: u64,
    /// Exit policy.
    pub exit_policy: ExitPolicy,
    /// Bento server port, if this relay opts into running one.
    pub bento_port: Option<u16>,
}

impl RelayInfo {
    /// Upper bound on this entry's encoded size, for pre-sizing writers.
    fn encoded_size_hint(&self) -> usize {
        96 + self.nickname.len() + 10 * self.exit_policy.rules.len()
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_size_hint());
        self.encode_into(&mut w);
        w.into_bytes()
    }

    fn encode_into(&self, w: &mut Writer) {
        w.raw(&self.fingerprint);
        w.str(&self.nickname);
        w.u32(self.addr.0);
        w.u16(self.or_port);
        w.u16(self.dir_port);
        w.raw(self.onion_key.as_bytes());
        w.u16(self.flags.0);
        w.u64(self.bandwidth);
        self.exit_policy.encode_into(w);
        match self.bento_port {
            Some(p) => {
                w.u8(1);
                w.u16(p);
            }
            None => {
                w.u8(0);
            }
        }
    }

    /// Decode from bytes.
    pub fn decode(buf: &[u8]) -> Result<RelayInfo, WireError> {
        let mut r = Reader::new(buf);
        let info = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(info)
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<RelayInfo, WireError> {
        let fingerprint: Fingerprint = r.array("fingerprint")?;
        let nickname = r.str("nickname")?;
        let addr = NodeId(r.u32()?);
        let or_port = r.u16()?;
        let dir_port = r.u16()?;
        let onion_key = PublicKey(r.array("onion key")?);
        let flags = RelayFlags(r.u16()?);
        let bandwidth = r.u64()?;
        let exit_policy = ExitPolicy::decode_from(r)?;
        let bento_port = match r.u8()? {
            0 => None,
            1 => Some(r.u16()?),
            v => {
                return Err(WireError::BadDiscriminant {
                    what: "bento port flag",
                    value: v as u64,
                })
            }
        };
        Ok(RelayInfo {
            fingerprint,
            nickname,
            addr,
            or_port,
            dir_port,
            onion_key,
            flags,
            bandwidth,
            exit_policy,
            bento_port,
        })
    }
}

/// The network consensus: the relay list for an epoch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Consensus {
    /// Consensus epoch (monotonic).
    pub epoch: u64,
    /// All known relays.
    pub relays: Vec<RelayInfo>,
}

impl Consensus {
    /// Encode the unsigned body.
    pub fn encode(&self) -> Vec<u8> {
        // Size the buffer for the whole relay list up front: a consensus is
        // re-encoded per directory fetch, and growing it entry by entry is
        // the dominant allocation in the bootstrap phase.
        let hint: usize = 18
            + self
                .relays
                .iter()
                .map(RelayInfo::encoded_size_hint)
                .sum::<usize>();
        let mut w = Writer::with_capacity(hint);
        w.u64(self.epoch);
        w.varu64(self.relays.len() as u64);
        for rel in &self.relays {
            rel.encode_into(&mut w);
        }
        w.into_bytes()
    }

    /// Decode an unsigned body.
    pub fn decode(buf: &[u8]) -> Result<Consensus, WireError> {
        let mut r = Reader::new(buf);
        let epoch = r.u64()?;
        let n = r.varu64()?;
        if n > 100_000 {
            return Err(WireError::LengthTooLarge {
                what: "consensus relays",
                announced: n,
                max: 100_000,
            });
        }
        let mut relays = Vec::with_capacity(n as usize);
        for _ in 0..n {
            relays.push(RelayInfo::decode_from(&mut r)?);
        }
        r.finish()?;
        Ok(Consensus { epoch, relays })
    }

    /// Find a relay by fingerprint.
    pub fn relay(&self, fp: &Fingerprint) -> Option<&RelayInfo> {
        self.relays.iter().find(|r| &r.fingerprint == fp)
    }

    /// Relays whose flags include all bits of `mask`.
    pub fn with_flags(&self, mask: u16) -> Vec<&RelayInfo> {
        self.relays.iter().filter(|r| r.flags.has(mask)).collect()
    }

    /// Pick a relay weighted by advertised bandwidth among those matching
    /// `mask` and the extra predicate. `None` if no candidate.
    pub fn pick_weighted(
        &self,
        rng: &mut impl rand::Rng,
        mask: u16,
        extra: impl Fn(&RelayInfo) -> bool,
    ) -> Option<&RelayInfo> {
        let candidates: Vec<&RelayInfo> = self
            .relays
            .iter()
            .filter(|r| r.flags.has(mask) && extra(r))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let total: u64 = candidates.iter().map(|r| r.bandwidth.max(1)).sum();
        let mut target = rng.gen_range(0..total);
        for c in &candidates {
            let w = c.bandwidth.max(1);
            if target < w {
                return Some(c);
            }
            target -= w;
        }
        candidates.last().copied()
    }
}

/// A consensus with the authority's signature over its encoding.
#[derive(Debug, Clone)]
pub struct SignedConsensus {
    /// The encoded consensus body.
    pub body: Vec<u8>,
    /// Authority signature over `body`.
    pub signature: Signature,
}

impl SignedConsensus {
    /// Encode (body, signature).
    pub fn encode(&self) -> Vec<u8> {
        let sig = self.signature.to_bytes();
        let mut w = Writer::with_capacity(self.body.len() + sig.len() + 20);
        w.bytes(&self.body);
        w.bytes(&sig);
        w.into_bytes()
    }

    /// Decode; structural checks only (verify separately).
    pub fn decode(buf: &[u8]) -> Result<SignedConsensus, WireError> {
        let mut r = Reader::new(buf);
        let body = r.bytes_vec("consensus body")?;
        let sig_bytes = r.bytes_vec("consensus signature")?;
        r.finish()?;
        let signature = Signature::from_bytes(&sig_bytes).ok_or(WireError::BadDiscriminant {
            what: "signature",
            value: 0,
        })?;
        Ok(SignedConsensus { body, signature })
    }

    /// Verify against the pinned authority key and decode the body.
    pub fn verify(&self, authority: &MerkleVerifyKey) -> Option<Consensus> {
        if !authority.verify(&self.body, &self.signature) {
            return None;
        }
        Consensus::decode(&self.body).ok()
    }
}

/// A hidden-service descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsDescriptor {
    /// The service's identity verify key (its onion address preimage).
    pub service_key: MerkleVerifyKey,
    /// The service's encryption (x25519) key for INTRODUCE payloads.
    pub enc_key: PublicKey,
    /// Fingerprints of the current introduction points.
    pub intro_points: Vec<Fingerprint>,
    /// Revision counter.
    pub revision: u64,
}

impl HsDescriptor {
    /// The onion address this descriptor belongs to.
    pub fn onion_addr(&self) -> OnionAddr {
        OnionAddr::from_service_key(&self.service_key)
    }

    fn body_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(96 + 32 * self.intro_points.len());
        w.raw(&self.service_key.root);
        w.u8(self.service_key.height);
        w.raw(self.enc_key.as_bytes());
        w.varu64(self.intro_points.len() as u64);
        for ip in &self.intro_points {
            w.raw(ip);
        }
        w.u64(self.revision);
        w.into_bytes()
    }

    /// Sign and encode with the service's signer.
    pub fn encode_signed(
        &self,
        signer: &mut onion_crypto::hashsig::MerkleSigner,
    ) -> Option<Vec<u8>> {
        let body = self.body_bytes();
        let sig = signer.sign(&body)?.to_bytes();
        let mut w = Writer::with_capacity(body.len() + sig.len() + 20);
        w.bytes(&body);
        w.bytes(&sig);
        Some(w.into_bytes())
    }

    /// Decode and verify a signed descriptor; the signature must verify
    /// under the service key *inside* the descriptor (self-certifying: the
    /// onion address is the hash of that key).
    pub fn decode_verified(buf: &[u8]) -> Option<HsDescriptor> {
        let mut r = Reader::new(buf);
        let body = r.bytes_vec("hs desc body").ok()?;
        let sig_bytes = r.bytes_vec("hs desc sig").ok()?;
        r.finish().ok()?;
        let sig = Signature::from_bytes(&sig_bytes)?;
        let desc = Self::decode_body(&body)?;
        if !desc.service_key.verify(&body, &sig) {
            return None;
        }
        Some(desc)
    }

    fn decode_body(body: &[u8]) -> Option<HsDescriptor> {
        let mut r = Reader::new(body);
        let root: [u8; 32] = r.array("service key root").ok()?;
        let height = r.u8().ok()?;
        let service_key = MerkleVerifyKey { root, height };
        let enc_key = PublicKey(r.array("enc key").ok()?);
        let n = r.varu64().ok()?;
        if n > 32 {
            return None;
        }
        let mut intro_points = Vec::with_capacity(n as usize);
        for _ in 0..n {
            intro_points.push(r.array("intro fp").ok()?);
        }
        let revision = r.u64().ok()?;
        r.finish().ok()?;
        Some(HsDescriptor {
            service_key,
            enc_key,
            intro_points,
            revision,
        })
    }
}

/// Directory protocol messages (on DIR-port connections and DIR streams).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirMsg {
    /// Request the current consensus.
    FetchConsensus,
    /// The signed consensus.
    ConsensusResp(Vec<u8>),
    /// A relay uploading its descriptor to the authority.
    PublishDesc(Vec<u8>),
    /// Upload acknowledged.
    DescAck,
    /// A hidden service publishing its signed descriptor to an HSDir.
    PublishHsDesc(Vec<u8>),
    /// Request a hidden service descriptor by onion address.
    FetchHsDesc(OnionAddr),
    /// Descriptor response (`None` = not found).
    HsDescResp(Option<Vec<u8>>),
}

impl DirMsg {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        // Responses carry a whole consensus or descriptor; reserve for the
        // payload instead of growing through it.
        let hint = match self {
            DirMsg::ConsensusResp(b) | DirMsg::PublishDesc(b) | DirMsg::PublishHsDesc(b) => {
                b.len() + 10
            }
            DirMsg::HsDescResp(Some(b)) => b.len() + 11,
            _ => 40,
        };
        let mut w = Writer::with_capacity(hint);
        match self {
            DirMsg::FetchConsensus => {
                w.u8(1);
            }
            DirMsg::ConsensusResp(b) => {
                w.u8(2);
                w.bytes(b);
            }
            DirMsg::PublishDesc(b) => {
                w.u8(3);
                w.bytes(b);
            }
            DirMsg::DescAck => {
                w.u8(4);
            }
            DirMsg::PublishHsDesc(b) => {
                w.u8(5);
                w.bytes(b);
            }
            DirMsg::FetchHsDesc(addr) => {
                w.u8(6);
                w.raw(&addr.0);
            }
            DirMsg::HsDescResp(opt) => {
                w.u8(7);
                match opt {
                    Some(b) => {
                        w.u8(1);
                        w.bytes(b);
                    }
                    None => {
                        w.u8(0);
                    }
                }
            }
        }
        w.into_bytes()
    }

    /// Decode.
    pub fn decode(buf: &[u8]) -> Result<DirMsg, WireError> {
        let mut r = Reader::new(buf);
        let tag = r.u8()?;
        let msg = match tag {
            1 => DirMsg::FetchConsensus,
            2 => DirMsg::ConsensusResp(r.bytes_vec("consensus")?),
            3 => DirMsg::PublishDesc(r.bytes_vec("descriptor")?),
            4 => DirMsg::DescAck,
            5 => DirMsg::PublishHsDesc(r.bytes_vec("hs descriptor")?),
            6 => DirMsg::FetchHsDesc(OnionAddr(r.array("onion addr")?)),
            7 => match r.u8()? {
                0 => DirMsg::HsDescResp(None),
                1 => DirMsg::HsDescResp(Some(r.bytes_vec("hs descriptor")?)),
                v => {
                    return Err(WireError::BadDiscriminant {
                        what: "hs desc option",
                        value: v as u64,
                    })
                }
            },
            v => {
                return Err(WireError::BadDiscriminant {
                    what: "dir message",
                    value: v as u64,
                })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_crypto::hashsig::MerkleSigner;
    use rand::SeedableRng;

    fn sample_relay(i: u8) -> RelayInfo {
        RelayInfo {
            fingerprint: [i; 20],
            nickname: format!("relay{i}"),
            addr: NodeId(i as u32),
            or_port: 9001,
            dir_port: 9030,
            onion_key: PublicKey([i ^ 0x55; 32]),
            flags: RelayFlags::default().with(RelayFlags::GUARD | RelayFlags::FAST),
            bandwidth: 1000 * (i as u64 + 1),
            exit_policy: ExitPolicy::web_only(),
            bento_port: if i % 2 == 0 { Some(5005) } else { None },
        }
    }

    #[test]
    fn relay_info_roundtrip() {
        let r = sample_relay(3);
        let back = RelayInfo::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn consensus_roundtrip_and_queries() {
        let c = Consensus {
            epoch: 9,
            relays: (0..10).map(sample_relay).collect(),
        };
        let back = Consensus::decode(&c.encode()).unwrap();
        assert_eq!(back, c);
        assert!(back.relay(&[3u8; 20]).is_some());
        assert!(back.relay(&[99u8; 20]).is_none());
        assert_eq!(back.with_flags(RelayFlags::GUARD).len(), 10);
        assert_eq!(back.with_flags(RelayFlags::AUTHORITY).len(), 0);
    }

    #[test]
    fn signed_consensus_verifies_and_rejects_tamper() {
        let mut signer = MerkleSigner::generate([1u8; 32], 2);
        let vk = signer.verify_key();
        let c = Consensus {
            epoch: 1,
            relays: vec![sample_relay(1)],
        };
        let body = c.encode();
        let sc = SignedConsensus {
            signature: signer.sign(&body).unwrap(),
            body,
        };
        let wire = sc.encode();
        let back = SignedConsensus::decode(&wire).unwrap();
        assert_eq!(back.verify(&vk).unwrap(), c);

        // Tamper: flip a byte in the body.
        let mut tampered = back.clone();
        tampered.body[3] ^= 1;
        assert!(tampered.verify(&vk).is_none());

        // Wrong authority key.
        let other = MerkleSigner::generate([2u8; 32], 2).verify_key();
        assert!(back.verify(&other).is_none());
    }

    #[test]
    fn exit_policy_first_match_wins() {
        let p = ExitPolicy {
            rules: vec![
                PolicyRule {
                    accept: false,
                    host: Some(NodeId(5)),
                    ports: (0, u16::MAX),
                },
                PolicyRule {
                    accept: true,
                    host: None,
                    ports: (80, 80),
                },
            ],
        };
        assert!(!p.allows(NodeId(5), 80)); // rejected by the earlier rule
        assert!(p.allows(NodeId(6), 80));
        assert!(!p.allows(NodeId(6), 81)); // default reject
    }

    #[test]
    fn exit_policy_presets() {
        assert!(!ExitPolicy::reject_all().allows(NodeId(1), 80));
        assert!(ExitPolicy::accept_all().allows(NodeId(1), 12345));
        let web = ExitPolicy::web_only();
        assert!(web.allows(NodeId(1), 80));
        assert!(web.allows(NodeId(1), 443));
        assert!(!web.allows(NodeId(1), 22));
        let with_local = ExitPolicy::reject_all().with_accept(NodeId(7), 5005);
        assert!(with_local.allows(NodeId(7), 5005));
        assert!(!with_local.allows(NodeId(8), 5005));
    }

    #[test]
    fn weighted_pick_respects_flags_and_weights() {
        let mut c = Consensus {
            epoch: 1,
            relays: (0..4).map(sample_relay).collect(),
        };
        c.relays[0].flags = RelayFlags::default(); // no flags
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let r = c
                .pick_weighted(&mut rng, RelayFlags::GUARD, |_| true)
                .unwrap();
            seen.insert(r.fingerprint);
            assert!(r.flags.has(RelayFlags::GUARD));
        }
        assert_eq!(seen.len(), 3, "all eligible relays should appear");
        // Predicate exclusion works.
        assert!(c
            .pick_weighted(&mut rng, RelayFlags::GUARD, |r| r.addr != NodeId(1)
                && r.addr != NodeId(2)
                && r.addr != NodeId(3))
            .is_none());
    }

    #[test]
    fn hs_descriptor_sign_verify_roundtrip() {
        let mut signer = MerkleSigner::generate([9u8; 32], 3);
        let desc = HsDescriptor {
            service_key: signer.verify_key(),
            enc_key: PublicKey([4u8; 32]),
            intro_points: vec![[1u8; 20], [2u8; 20], [3u8; 20]],
            revision: 7,
        };
        let wire = desc.encode_signed(&mut signer).unwrap();
        let back = HsDescriptor::decode_verified(&wire).unwrap();
        assert_eq!(back, desc);
        assert_eq!(back.onion_addr(), desc.onion_addr());
    }

    #[test]
    fn hs_descriptor_forgery_rejected() {
        let mut signer = MerkleSigner::generate([9u8; 32], 3);
        let mut imposter = MerkleSigner::generate([10u8; 32], 3);
        let desc = HsDescriptor {
            service_key: signer.verify_key(),
            enc_key: PublicKey([4u8; 32]),
            intro_points: vec![[1u8; 20]],
            revision: 1,
        };
        // Signed by the wrong key: self-certification fails.
        let forged = HsDescriptor {
            service_key: signer.verify_key(), // claims the victim's identity
            ..desc.clone()
        }
        .encode_signed(&mut imposter)
        .unwrap();
        assert!(HsDescriptor::decode_verified(&forged).is_none());
        // Tampered intro list.
        let mut wire = desc.encode_signed(&mut signer).unwrap();
        let n = wire.len();
        wire[n / 2] ^= 1;
        assert!(HsDescriptor::decode_verified(&wire).is_none());
    }

    #[test]
    fn dir_msgs_roundtrip() {
        let msgs = vec![
            DirMsg::FetchConsensus,
            DirMsg::ConsensusResp(vec![1, 2, 3]),
            DirMsg::PublishDesc(vec![4; 100]),
            DirMsg::DescAck,
            DirMsg::PublishHsDesc(vec![5; 50]),
            DirMsg::FetchHsDesc(OnionAddr([6u8; 32])),
            DirMsg::HsDescResp(None),
            DirMsg::HsDescResp(Some(vec![7; 10])),
        ];
        for m in msgs {
            let back = DirMsg::decode(&m.encode()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn dir_msg_decode_rejects_garbage() {
        assert!(DirMsg::decode(&[]).is_err());
        assert!(DirMsg::decode(&[200]).is_err());
        assert!(DirMsg::decode(&[2, 0xFF]).is_err()); // truncated bytes field
        let mut ok = DirMsg::DescAck.encode();
        ok.push(0); // trailing byte
        assert!(DirMsg::decode(&ok).is_err());
    }

    #[test]
    fn onion_addr_is_key_binding() {
        let a = MerkleSigner::generate([1u8; 32], 2).verify_key();
        let b = MerkleSigner::generate([2u8; 32], 2).verify_key();
        assert_ne!(
            OnionAddr::from_service_key(&a),
            OnionAddr::from_service_key(&b)
        );
        let s = OnionAddr::from_service_key(&a).to_string_short();
        assert!(s.ends_with(".onion"));
    }
}
