//! Well-known ports in the simulated internet.

/// Tor onion-routing (link/cell) port.
pub const OR_PORT: u16 = 9001;
/// Directory protocol port (authorities and relay dir caches).
pub const DIR_PORT: u16 = 9030;
/// HTTP, the port destination web servers listen on.
pub const HTTP_PORT: u16 = 80;
/// HTTPS.
pub const HTTPS_PORT: u16 = 443;
/// The Bento server's port, reached via the co-resident relay's exit to
/// "localhost" (the relay's own address).
pub const BENTO_PORT: u16 = 5005;
/// The virtual port hidden services expose to rendezvous streams.
pub const HS_VIRTUAL_PORT: u16 = 443;
