//! Convenience builders: stand up a whole Tor network (authority, relays,
//! web servers, clients) in a few lines. Used by the integration tests, the
//! examples, and the benchmark harness.

use crate::client::{CircuitHandle, TorClient, TorEvent};
use crate::dir::{ExitPolicy, Fingerprint, RelayFlags};
use crate::hs::{HiddenServiceHost, HsEvent};
use crate::ports::BENTO_PORT;
use crate::relay::{RelayConfig, RelayNode};
use crate::stream_frame::{encode_frame, FrameAssembler};
use onion_crypto::hashsig::{MerkleSigner, MerkleVerifyKey};
use simnet::{ConnId, Ctx, Iface, Node, NodeId, SimConfig, SimDuration, Simulator};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A built network: the simulator plus everything needed to attach clients.
pub struct TorNetwork {
    /// The simulator (add more nodes before running).
    pub sim: Simulator,
    /// The directory authority's address.
    pub authority: NodeId,
    /// The pinned authority verification key clients need.
    pub authority_key: MerkleVerifyKey,
    /// (address, fingerprint) of every relay, authority first.
    pub relays: Vec<(NodeId, Fingerprint)>,
}

impl TorNetwork {
    /// Run the simulation long enough for descriptors to upload and the
    /// consensus to publish (relative to simulation start).
    pub fn settle(&mut self) {
        self.sim
            .run_until(simnet::SimTime::ZERO + SimDuration::from_millis(800));
    }

    /// Attach a fresh [`TestClientNode`] with a residential interface.
    pub fn add_client(&mut self, name: &str) -> NodeId {
        let client = TestClientNode::new(self.authority, self.authority_key);
        self.sim
            .add_node(name, Iface::residential(), Box::new(client))
    }

    /// Attach a [`WebServerNode`] serving the given pages.
    pub fn add_web_server(&mut self, name: &str, pages: Vec<(String, Vec<Vec<u8>>)>) -> NodeId {
        let server = WebServerNode::new(pages);
        self.sim
            .add_node(name, Iface::datacenter(), Box::new(server))
    }
}

/// Declarative network construction.
pub struct NetworkBuilder {
    seed: u64,
    n_middles: usize,
    n_exits: usize,
    n_hsdirs: usize,
    n_bento: usize,
    relay_iface: Iface,
    relay_bandwidth: u64,
    consensus_delay: SimDuration,
    batch: bool,
    shards: usize,
    shard_threads: usize,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        NetworkBuilder {
            seed: 7,
            n_middles: 6,
            n_exits: 3,
            n_hsdirs: 2,
            n_bento: 0,
            relay_iface: Iface::tor_relay(),
            relay_bandwidth: 2_000_000,
            consensus_delay: SimDuration::from_millis(500),
            batch: true,
            shards: 0,
            shard_threads: 0,
        }
    }
}

impl NetworkBuilder {
    /// Start from defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// RNG seed for the whole simulation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of middle/guard relays.
    pub fn middles(mut self, n: usize) -> Self {
        self.n_middles = n;
        self
    }

    /// Number of exit relays (web-only policy).
    pub fn exits(mut self, n: usize) -> Self {
        self.n_exits = n;
        self
    }

    /// Number of HSDir relays.
    pub fn hsdirs(mut self, n: usize) -> Self {
        self.n_hsdirs = n;
        self
    }

    /// Number of exits that also advertise a Bento server port.
    pub fn bento_boxes(mut self, n: usize) -> Self {
        self.n_bento = n;
        self
    }

    /// Access interface for every relay.
    pub fn relay_iface(mut self, iface: Iface) -> Self {
        self.relay_iface = iface;
        self
    }

    /// Advertised relay bandwidth (affects path weighting only).
    pub fn relay_bandwidth(mut self, bw: u64) -> Self {
        self.relay_bandwidth = bw;
        self
    }

    /// Toggle the batched relay data plane (on by default). The off arm is
    /// byte-identical and exists for A/B benchmarks and determinism checks.
    pub fn batch(mut self, on: bool) -> Self {
        self.batch = on;
        self
    }

    /// Run on the sharded conservative-PDES engine with `n` shards
    /// (0 = the default serial engine). Results are byte-identical across
    /// shard counts ≥ 1, but the sharded engine is a distinct baseline from
    /// serial — compare like with like.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Worker threads for the sharded engine (0 = one per core).
    pub fn shard_threads(mut self, n: usize) -> Self {
        self.shard_threads = n;
        self
    }

    /// Build the simulator, authority, and relays.
    pub fn build(self) -> TorNetwork {
        let mut sim = Simulator::new(SimConfig {
            seed: self.seed,
            shards: self.shards,
            shard_threads: self.shard_threads,
            ..SimConfig::default()
        });
        let signer = Arc::new(Mutex::new(MerkleSigner::generate(
            [0xA0; 32], 4, // 16 consensus signatures available
        )));
        let authority_key = signer.lock().expect("signer lock").verify_key();

        let mut relays = Vec::new();
        // The authority is itself a guard+hsdir relay.
        let mut auth_cfg = RelayConfig::middle("authority", [0xA1; 32]);
        auth_cfg.flags = RelayFlags::default()
            .with(RelayFlags::AUTHORITY | RelayFlags::GUARD | RelayFlags::FAST | RelayFlags::HSDIR);
        auth_cfg.bandwidth = self.relay_bandwidth;
        auth_cfg.authority_signer = Some(signer);
        auth_cfg.consensus_delay = self.consensus_delay;
        auth_cfg.batch = self.batch;
        let auth_node = RelayNode::new(auth_cfg);
        let auth_fp = auth_node.relay.fingerprint();
        let authority = sim.add_node("authority", self.relay_iface, Box::new(auth_node));
        relays.push((authority, auth_fp));

        let add_relay = |sim: &mut Simulator,
                         name: String,
                         seed_byte: u8,
                         flags: RelayFlags,
                         policy: ExitPolicy,
                         bento: bool| {
            let mut cfg = RelayConfig::middle(&name, [seed_byte; 32]);
            cfg.flags = flags;
            cfg.exit_policy = policy;
            cfg.bandwidth = self.relay_bandwidth;
            cfg.authority_addr = Some(authority);
            cfg.batch = self.batch;
            if bento {
                cfg.bento_port = Some(BENTO_PORT);
            }
            let node = RelayNode::new(cfg);
            let fp = node.relay.fingerprint();
            let addr = sim.add_node(&name, self.relay_iface, Box::new(node));
            (addr, fp)
        };

        let mut seed_byte = 1u8;
        for i in 0..self.n_middles {
            let flags = RelayFlags::default().with(RelayFlags::GUARD | RelayFlags::FAST);
            relays.push(add_relay(
                &mut sim,
                format!("middle{i}"),
                seed_byte,
                flags,
                ExitPolicy::reject_all(),
                false,
            ));
            seed_byte += 1;
        }
        for i in 0..self.n_exits {
            let bento = i < self.n_bento;
            let mut flags = RelayFlags::default().with(RelayFlags::EXIT | RelayFlags::FAST);
            if bento {
                flags = flags.with(RelayFlags::BENTO);
            }
            relays.push(add_relay(
                &mut sim,
                format!("exit{i}"),
                seed_byte,
                flags,
                ExitPolicy::web_only(),
                bento,
            ));
            seed_byte += 1;
        }
        for i in 0..self.n_hsdirs {
            let flags = RelayFlags::default().with(RelayFlags::HSDIR | RelayFlags::FAST);
            relays.push(add_relay(
                &mut sim,
                format!("hsdir{i}"),
                seed_byte,
                flags,
                ExitPolicy::reject_all(),
                false,
            ));
            seed_byte += 1;
        }

        TorNetwork {
            sim,
            authority,
            authority_key,
            relays,
        }
    }
}

/// A scriptable client host node for tests, examples and benches: wraps a
/// [`TorClient`] (and optionally a [`HiddenServiceHost`]), accumulates
/// events, and can auto-accept/echo incoming hidden-service streams.
pub struct TestClientNode {
    /// The onion proxy.
    pub tor: TorClient,
    /// Optional hidden-service host driven by `tor`.
    pub hs: Option<HiddenServiceHost>,
    /// Events not consumed by the service machinery, in arrival order.
    pub events: Vec<TorEvent>,
    /// Service events.
    pub hs_events: Vec<HsEvent>,
    /// Accept incoming streams automatically.
    pub auto_accept: bool,
    /// Echo data received on incoming streams back to the sender.
    pub echo: bool,
    /// Serve `serve_bytes` in response to any data on an incoming stream
    /// (checked before `echo`); used as a trivial hidden-service "file".
    pub serve_bytes: Option<usize>,
    /// Bootstrap automatically at simulation start.
    pub auto_bootstrap: bool,
    /// Start the hidden service as soon as the consensus arrives.
    pub auto_start_hs: bool,
}

impl TestClientNode {
    /// A plain client.
    pub fn new(authority: NodeId, authority_key: MerkleVerifyKey) -> TestClientNode {
        TestClientNode {
            tor: TorClient::new(authority, authority_key),
            hs: None,
            events: Vec::new(),
            hs_events: Vec::new(),
            auto_accept: true,
            echo: false,
            serve_bytes: None,
            auto_bootstrap: true,
            auto_start_hs: false,
        }
    }

    /// Attach a hidden service to this node.
    pub fn with_hs(mut self, hs: HiddenServiceHost) -> Self {
        self.hs = Some(hs);
        self.auto_start_hs = true;
        self
    }

    /// Route all pending tor events through the service machinery and into
    /// the event log, applying auto-accept/echo behavior.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let evs = self.tor.poll_events();
        for ev in evs {
            // Auto-start the hidden service on consensus.
            if matches!(ev, TorEvent::ConsensusReady) {
                if self.auto_start_hs {
                    if let Some(hs) = self.hs.as_mut() {
                        hs.start(ctx, &mut self.tor);
                    }
                }
                self.events.push(ev);
                continue;
            }
            let remaining = match self.hs.as_mut() {
                Some(hs) => hs.handle_event(ctx, &mut self.tor, ev),
                None => Some(ev),
            };
            let Some(ev) = remaining else { continue };
            match &ev {
                TorEvent::IncomingStream(circ, stream, _port) if self.auto_accept => {
                    self.tor.respond_incoming(ctx, *circ, *stream, true);
                }
                TorEvent::StreamData(circ, stream, data) => {
                    if let Some(n) = self.serve_bytes {
                        let _ = data;
                        let payload = vec![0xAB; n];
                        self.tor.send_stream(ctx, *circ, *stream, &payload);
                    } else if self.echo {
                        let d = data.clone();
                        self.tor.send_stream(ctx, *circ, *stream, &d);
                    }
                }
                _ => {}
            }
            self.events.push(ev);
        }
        if let Some(hs) = self.hs.as_mut() {
            self.hs_events.extend(hs.drain_events());
        }
        // Event handling may have produced more events (e.g. service start
        // building circuits completes instantly on loopback); drain once
        // more if needed.
        let more = self.tor.poll_events();
        for ev in more {
            let remaining = match self.hs.as_mut() {
                Some(hs) => hs.handle_event(ctx, &mut self.tor, ev),
                None => Some(ev),
            };
            if let Some(ev) = remaining {
                self.events.push(ev);
            }
        }
    }

    /// Take all accumulated (non-service) events.
    pub fn take_events(&mut self) -> Vec<TorEvent> {
        std::mem::take(&mut self.events)
    }

    /// Whether any event satisfies the predicate.
    pub fn has_event(&self, pred: impl Fn(&TorEvent) -> bool) -> bool {
        self.events.iter().any(pred)
    }

    /// Find the first ready circuit handle among logged events.
    pub fn first_ready_circuit(&self) -> Option<CircuitHandle> {
        self.events.iter().find_map(|e| match e {
            TorEvent::CircuitReady(h) => Some(*h),
            _ => None,
        })
    }

    /// Concatenated data received on (circ, stream).
    pub fn stream_bytes(&self, circ: CircuitHandle, stream: u16) -> Vec<u8> {
        let mut out = Vec::new();
        for e in &self.events {
            if let TorEvent::StreamData(c, s, d) = e {
                if *c == circ && *s == stream {
                    out.extend_from_slice(d);
                }
            }
        }
        out
    }

    /// Total bytes received on (circ, stream), without concatenating them.
    ///
    /// Progress polls (benches, long-transfer tests) want only the count;
    /// [`Self::stream_bytes`] rebuilds the whole buffer each call, which is
    /// quadratic when polled during a multi-MB fetch.
    pub fn stream_len(&self, circ: CircuitHandle, stream: u16) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                TorEvent::StreamData(c, s, d) if *c == circ && *s == stream => d.len(),
                _ => 0,
            })
            .sum()
    }

    /// Whether (circ, stream) has ended.
    pub fn stream_ended(&self, circ: CircuitHandle, stream: u16) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TorEvent::StreamEnded(c, s) if *c == circ && *s == stream))
    }
}

impl Node for TestClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.auto_bootstrap {
            self.tor.bootstrap(ctx);
        }
    }
    fn on_conn_established(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _peer: NodeId) {
        self.tor.handle_conn_established(ctx, conn);
        self.pump(ctx);
    }
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
        self.tor.handle_msg(ctx, conn, msg);
        self.pump(ctx);
    }
    fn on_conn_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        self.tor.handle_conn_closed(ctx, conn);
        self.pump(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        self.tor.handle_timer(ctx, tag);
        self.pump(ctx);
    }
    fn on_crash(&mut self) {
        // Volatile Tor state dies with the host; configuration (authority,
        // trust key, recovery knobs) persists like files on disk.
        self.tor.reset();
        self.events.clear();
        self.hs_events.clear();
    }
    // Default on_restart → on_start re-bootstraps when auto_bootstrap is on.
}

/// A simple framed web server: maps a requested path to one or more
/// response parts, each sent as its own frame (modeling HTML + assets).
pub struct WebServerNode {
    pages: BTreeMap<String, Vec<Vec<u8>>>,
    assemblers: BTreeMap<ConnId, FrameAssembler>,
    /// Total requests served.
    pub requests: u64,
}

impl WebServerNode {
    /// Serve the given (path, parts) pages.
    pub fn new(pages: Vec<(String, Vec<Vec<u8>>)>) -> WebServerNode {
        WebServerNode {
            pages: pages.into_iter().collect(),
            assemblers: BTreeMap::new(),
            requests: 0,
        }
    }
}

impl Node for WebServerNode {
    fn on_conn_open(&mut self, _ctx: &mut Ctx<'_>, conn: ConnId, _peer: NodeId, _port: u16) {
        self.assemblers.insert(conn, FrameAssembler::new());
    }
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
        let Some(asm) = self.assemblers.get_mut(&conn) else {
            return;
        };
        asm.push(&msg);
        let frames = asm.drain_frames();
        for frame in frames {
            let raw = String::from_utf8_lossy(&frame).to_string();
            self.requests += 1;
            // Range syntax: "path#start-end" serves bytes [start, end) of
            // the page's first part (used by the multipath function).
            let (path, range) = match raw.split_once('#') {
                Some((p, r)) => {
                    let range = r.split_once('-').and_then(|(a, b)| {
                        Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?))
                    });
                    (p.to_string(), range)
                }
                None => (raw, None),
            };
            match (self.pages.get(&path), range) {
                (Some(parts), None) => {
                    for part in parts.clone() {
                        ctx.send(conn, encode_frame(&part));
                    }
                }
                (Some(parts), Some((start, end))) => {
                    let body = &parts[0];
                    let start = start.min(body.len());
                    let end = end.clamp(start, body.len());
                    let slice = body[start..end].to_vec();
                    ctx.send(conn, encode_frame(&slice));
                }
                (None, _) => {
                    ctx.send(conn, encode_frame(b"404"));
                }
            }
        }
    }
    fn on_conn_closed(&mut self, _ctx: &mut Ctx<'_>, conn: ConnId) {
        self.assemblers.remove(&conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimDuration, SimTime, Simulator};

    /// Drive a WebServerNode directly over simnet and collect replies.
    struct Probe {
        server: NodeId,
        to_send: Vec<Vec<u8>>,
        asm: FrameAssembler,
        replies: Vec<Vec<u8>>,
    }
    impl simnet::Node for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let c = ctx.connect(self.server, 80);
            for f in self.to_send.drain(..) {
                ctx.send(c, encode_frame(&f));
            }
        }
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId, msg: Vec<u8>) {
            self.asm.push(&msg);
            self.replies.extend(self.asm.drain_frames());
        }
    }

    #[test]
    fn web_server_serves_pages_ranges_and_404() {
        let mut sim = Simulator::with_seed(1);
        let body: Vec<u8> = (0..1000u16).map(|i| (i % 256) as u8).collect();
        let server = sim.add_node(
            "web",
            simnet::Iface::ideal(),
            Box::new(WebServerNode::new(vec![(
                "/page".to_string(),
                vec![body.clone()],
            )])),
        );
        let probe = sim.add_node(
            "probe",
            simnet::Iface::ideal(),
            Box::new(Probe {
                server,
                to_send: vec![
                    b"/page".to_vec(),
                    b"/page#100-300".to_vec(),
                    b"/page#900-5000".to_vec(), // end clamped
                    b"/page#40-40".to_vec(),    // empty range
                    b"/missing".to_vec(),
                    b"/page#x-y".to_vec(), // malformed range -> 404-ish
                ],
                asm: FrameAssembler::new(),
                replies: Vec::new(),
            }),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        let p: &Probe = sim.node_ref(probe);
        assert_eq!(p.replies.len(), 6);
        assert_eq!(p.replies[0], body);
        assert_eq!(p.replies[1], body[100..300].to_vec());
        assert_eq!(p.replies[2], body[900..].to_vec());
        assert_eq!(p.replies[3], Vec::<u8>::new());
        assert_eq!(p.replies[4], b"404");
        // Malformed range falls back to the whole page (range = None).
        assert_eq!(p.replies[5], body);
    }
}
