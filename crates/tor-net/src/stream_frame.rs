//! Length-delimited framing on top of Tor streams.
//!
//! A Tor stream delivers an ordered byte sequence chopped into ≤498-byte
//! RELAY_DATA cells. Protocols that run *over* streams (the directory
//! protocol, the Bento protocol, HTTP-over-Tor in the examples) exchange
//! frames: a varint length prefix followed by the body — the framing
//! discipline recommended by the networking guides, implemented once here.

use simnet::wire::{Reader, Writer};

/// Maximum frame body accepted (64 MiB): bounds buffering on hostile input.
pub const MAX_FRAME: u64 = 64 * 1024 * 1024;

/// Prefix `body` with its varint length.
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(body.len() + 5);
    w.varu64(body.len() as u64);
    w.raw(body);
    w.into_bytes()
}

/// Incremental reassembler: feed stream bytes in, take complete frames out.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Set when the peer announced an oversized or malformed frame; the
    /// stream should be torn down.
    poisoned: bool,
}

impl FrameAssembler {
    /// New empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Absorb `data` from the stream.
    pub fn push(&mut self, data: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(data);
        }
    }

    /// True if the peer sent a frame the assembler refuses to buffer.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Bytes currently buffered (incomplete frame).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extract the next complete frame, if any.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        if self.poisoned {
            return None;
        }
        let mut r = Reader::new(&self.buf).with_max_field(MAX_FRAME);
        let len = match r.varu64() {
            Ok(l) => l,
            // Not enough bytes for the length prefix yet.
            Err(simnet::wire::WireError::Truncated { .. }) => return None,
            Err(_) => {
                self.poisoned = true;
                self.buf.clear();
                return None;
            }
        };
        if len > MAX_FRAME {
            self.poisoned = true;
            self.buf.clear();
            return None;
        }
        let header = self.buf.len() - r.remaining();
        let total = header + len as usize;
        if self.buf.len() < total {
            return None;
        }
        let frame = self.buf[header..total].to_vec();
        self.buf.drain(..total);
        Some(frame)
    }

    /// Drain every currently complete frame.
    pub fn drain_frames(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(f) = self.next_frame() {
            out.push(f);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_roundtrip() {
        let mut asm = FrameAssembler::new();
        asm.push(&encode_frame(b"hello"));
        assert_eq!(asm.next_frame().unwrap(), b"hello");
        assert!(asm.next_frame().is_none());
    }

    #[test]
    fn frames_split_across_arbitrary_boundaries() {
        let mut wire = Vec::new();
        let frames: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; i * 97 + 1]).collect();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        // Feed one byte at a time.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &wire {
            asm.push(std::slice::from_ref(b));
            got.extend(asm.drain_frames());
        }
        assert_eq!(got, frames);
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn empty_frame_is_legal() {
        let mut asm = FrameAssembler::new();
        asm.push(&encode_frame(b""));
        assert_eq!(asm.next_frame().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oversized_announcement_poisons() {
        let mut w = Writer::new();
        w.varu64(MAX_FRAME + 1);
        let mut asm = FrameAssembler::new();
        asm.push(&w.into_bytes());
        assert!(asm.next_frame().is_none());
        assert!(asm.is_poisoned());
        // Further pushes are ignored.
        asm.push(b"abc");
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn incomplete_frame_waits() {
        let wire = encode_frame(&[7u8; 100]);
        let mut asm = FrameAssembler::new();
        asm.push(&wire[..50]);
        assert!(asm.next_frame().is_none());
        asm.push(&wire[50..]);
        assert_eq!(asm.next_frame().unwrap(), vec![7u8; 100]);
    }
}
