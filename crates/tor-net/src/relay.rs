//! The onion router: cell switching, circuit extension, exit streams,
//! directory service, introduction/rendezvous roles, and local streams for a
//! co-resident service (the Bento server).
//!
//! [`RelayCore`] is a *component*: a host [`simnet::Node`] delegates its
//! callbacks here (see [`RelayNode`] for the standalone wrapper). This is
//! what lets the Bento crate build one host that is simultaneously a Tor
//! relay, a Bento server and an onion proxy, as in Figure 3 of the paper.

use crate::cell::{Cell, CellCmd, RelayCell, RelayCmd, CELL_LEN, MAX_RELAY_DATA, PAYLOAD_LEN};
use crate::dir::{
    Consensus, DirMsg, ExitPolicy, Fingerprint, OnionAddr, RelayFlags, RelayInfo, SignedConsensus,
};
use crate::ports::{DIR_PORT, OR_PORT};
use crate::relay_crypto::LayerCrypto;
use crate::stream_frame::{encode_frame, FrameAssembler};
use onion_crypto::hashsig::MerkleSigner;
use onion_crypto::ntor;
use onion_crypto::sha256::sha256;
use onion_crypto::x25519::StaticSecret;
use simnet::{ConnId, Ctx, Node, NodeId, SimDuration};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

// Data-plane telemetry. The per-cell hot path bumps plain [`RelayStats`]
// fields only; [`RelayCore::flush_telemetry`] (driven once per
// `Simulator::run_until` through `Node::flush_telemetry`) folds the deltas
// into these statics, so forwarding a cell never touches the registry.
static T_CELLS_IN: telemetry::Counter = telemetry::Counter::new("tor.cells_in");
static T_CELLS_OUT: telemetry::Counter = telemetry::Counter::new("tor.cells_out");
static T_CELLS_FWD: telemetry::Counter = telemetry::Counter::new("tor.cells_forwarded");
static T_CRYPTO_BYTES: telemetry::Counter = telemetry::Counter::new("tor.crypto_bytes");
static T_CIRCUITS: telemetry::Counter = telemetry::Counter::new("tor.circuits_built");
static T_EXIT_STREAMS: telemetry::Counter = telemetry::Counter::new("tor.exit_streams_opened");
/// Distribution of relay-cell run lengths the batched data plane processed
/// per delivery (full-telemetry runs only; merged at flush like the rest).
static T_BATCH_CELLS: telemetry::Histo = telemetry::Histo::new("relay.batch_cells");

/// Timer-tag namespace reserved by the relay component.
pub const RELAY_TAG_BASE: u64 = 0x0100_0000_0000_0000;
const TAG_BUILD_CONSENSUS: u64 = RELAY_TAG_BASE + 1;

/// Circuit-level flow-control window, in RELAY_DATA cells (Tor's 1000).
pub const CIRC_WINDOW: i32 = 1000;
/// A SENDME is sent for every this many delivered data cells (Tor's 100).
pub const SENDME_INCREMENT: i32 = 100;

/// Configuration of one relay.
#[derive(Clone)]
pub struct RelayConfig {
    /// Nickname for the consensus.
    pub nickname: String,
    /// Seed for deterministic identity/onion keys.
    pub identity_seed: [u8; 32],
    /// Role flags advertised in the consensus.
    pub flags: RelayFlags,
    /// Advertised bandwidth (bytes/s) for weighted selection.
    pub bandwidth: u64,
    /// Exit policy.
    pub exit_policy: ExitPolicy,
    /// Bento server port, if this relay hosts one.
    pub bento_port: Option<u16>,
    /// Directory authority to publish the descriptor to (None for the
    /// authority itself).
    pub authority_addr: Option<NodeId>,
    /// If this relay *is* the authority: its consensus signer. Shared with
    /// the test harness via `Arc<Mutex>` so `RelayNode` stays `Send` (the
    /// sharded engine moves nodes across worker threads).
    pub authority_signer: Option<std::sync::Arc<std::sync::Mutex<MerkleSigner>>>,
    /// How long after start the authority waits before building the
    /// consensus (letting descriptors arrive).
    pub consensus_delay: SimDuration,
    /// Batch the relay data plane: coalesced same-tick link deliveries are
    /// unsealed/encrypted as per-circuit runs with prefetched wide-lane
    /// keystream. Byte-identical to the sequential path; off is kept only
    /// as an A/B arm for benchmarks and determinism checks.
    pub batch: bool,
}

impl RelayConfig {
    /// A plain middle relay.
    pub fn middle(nickname: &str, seed: [u8; 32]) -> RelayConfig {
        RelayConfig {
            nickname: nickname.to_string(),
            identity_seed: seed,
            flags: RelayFlags::default().with(RelayFlags::GUARD | RelayFlags::FAST),
            bandwidth: 2_000_000,
            exit_policy: ExitPolicy::reject_all(),
            bento_port: None,
            authority_addr: None,
            authority_signer: None,
            consensus_delay: SimDuration::from_millis(500),
            batch: true,
        }
    }
}

/// A handle to a stream terminated at this relay for a co-resident local
/// service (the Bento server's "localhost" streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalStream(pub u64);

/// Events a relay surfaces to its host node.
#[derive(Debug)]
pub enum RelayEvent {
    /// A Tor stream addressed to this relay's local service port opened.
    LocalStreamOpened {
        /// Stream handle for subsequent sends.
        stream: LocalStream,
        /// The port the stream targeted.
        port: u16,
    },
    /// Data arrived on a local-service stream.
    LocalStreamData {
        /// Stream handle.
        stream: LocalStream,
        /// Raw stream bytes (cell-sized chunks).
        data: Vec<u8>,
    },
    /// A local-service stream closed.
    LocalStreamClosed {
        /// Stream handle.
        stream: LocalStream,
    },
}

enum StreamKind {
    /// Stream exits to an external destination connection.
    Exit,
    /// Stream terminates at this relay's directory service.
    Dir(FrameAssembler),
    /// Stream terminates at the co-resident local service.
    Local(u64),
}

struct ExitStream {
    kind: StreamKind,
    conn: Option<ConnId>,
    connected: bool,
    /// Data cells received before the outbound connection was ready.
    pending: Vec<Vec<u8>>,
}

struct RelayCircuit {
    prev: (ConnId, u32),
    next: Option<(ConnId, u32)>,
    crypto: LayerCrypto,
    /// Waiting for CREATED from the next hop (circ id allocated there).
    pending_extend: bool,
    streams: BTreeMap<u16, ExitStream>,
    /// Rendezvous splice partner (slot index).
    splice: Option<usize>,
    /// Set if this circuit registered as an introduction circuit.
    intro_service: Option<OnionAddr>,
    /// Set if this circuit registered a rendezvous cookie.
    rendezvous_cookie: Option<[u8; 20]>,
    /// Window for data cells we may send toward the origin.
    package_window: i32,
    /// Data cells delivered from the origin since the last SENDME we sent.
    delivered_since_sendme: i32,
    /// Data cells queued awaiting package window.
    queued_to_origin: VecDeque<RelayCell>,
    alive: bool,
}

impl RelayCircuit {
    fn new(prev: (ConnId, u32), crypto: LayerCrypto) -> RelayCircuit {
        RelayCircuit {
            prev,
            next: None,
            crypto,
            pending_extend: false,
            streams: BTreeMap::new(),
            splice: None,
            intro_service: None,
            rendezvous_cookie: None,
            package_window: CIRC_WINDOW,
            delivered_since_sendme: 0,
            queued_to_origin: VecDeque::new(),
            alive: true,
        }
    }
}

struct LinkState {
    peer: NodeId,
    established: bool,
    next_circ_id: u32,
    queued: Vec<Cell>,
}

/// Aggregate relay counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct RelayStats {
    /// Cells received on OR connections.
    pub cells_in: u64,
    /// Cells sent on OR connections.
    pub cells_out: u64,
    /// Cells switched through (forwarded between hops or spliced).
    pub cells_forwarded: u64,
    /// Relay-payload bytes run through per-hop layer crypto.
    pub crypto_bytes: u64,
    /// Circuits created through this relay.
    pub circuits: u64,
    /// Exit streams opened.
    pub exit_streams: u64,
}

/// The relay component.
pub struct RelayCore {
    cfg: RelayConfig,
    fingerprint: Fingerprint,
    onion_secret: StaticSecret,
    my_addr: Option<NodeId>,
    links: BTreeMap<ConnId, LinkState>,
    links_by_peer: BTreeMap<NodeId, ConnId>,
    dir_conns: BTreeSet<ConnId>,
    circuits: Vec<Option<RelayCircuit>>,
    circ_lookup: BTreeMap<(ConnId, u32), usize>,
    exit_conns: BTreeMap<ConnId, (usize, u16)>,
    /// Authority state: received descriptors and the signed consensus.
    received_descs: Vec<RelayInfo>,
    signed_consensus: Option<Vec<u8>>,
    /// HSDir storage.
    hs_descs: BTreeMap<OnionAddr, (u64, Vec<u8>)>,
    /// Intro-point registrations: onion addr -> circuit slot.
    intro_points: BTreeMap<OnionAddr, usize>,
    /// Rendezvous registrations: cookie -> circuit slot.
    rendezvous: BTreeMap<[u8; 20], usize>,
    /// Local-service streams: id -> (slot, stream id).
    local_streams: BTreeMap<u64, (usize, u16)>,
    next_local_stream: u64,
    events: VecDeque<RelayEvent>,
    stats: RelayStats,
    /// Stats already folded into the telemetry statics (see `flush_telemetry`).
    flushed: RelayStats,
    /// Relay-cell run lengths seen by the batched data plane, folded into
    /// [`T_BATCH_CELLS`] at flush time (full-telemetry runs only).
    batch_hist: telemetry::hist::LogHistogram,
}

impl RelayCore {
    /// Build a relay from its configuration. Keys are derived
    /// deterministically from the identity seed.
    pub fn new(cfg: RelayConfig) -> RelayCore {
        let onion_secret = StaticSecret::from_bytes(sha256(&cfg.identity_seed));
        let pk = onion_secret.public_key();
        let digest = sha256(pk.as_bytes());
        let mut fingerprint = [0u8; 20];
        fingerprint.copy_from_slice(&digest[..20]);
        RelayCore {
            cfg,
            fingerprint,
            onion_secret,
            my_addr: None,
            links: BTreeMap::new(),
            links_by_peer: BTreeMap::new(),
            dir_conns: BTreeSet::new(),
            circuits: Vec::new(),
            circ_lookup: BTreeMap::new(),
            exit_conns: BTreeMap::new(),
            received_descs: Vec::new(),
            signed_consensus: None,
            hs_descs: BTreeMap::new(),
            intro_points: BTreeMap::new(),
            rendezvous: BTreeMap::new(),
            local_streams: BTreeMap::new(),
            next_local_stream: 1,
            events: VecDeque::new(),
            stats: RelayStats::default(),
            flushed: RelayStats::default(),
            batch_hist: telemetry::hist::LogHistogram::new(),
        }
    }

    /// This relay's identity fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Drop all volatile state, as a host crash would. Identity keys are
    /// derived from the configured seed, so the reborn relay has the same
    /// fingerprint — it rejoins the network as the *same* relay, the way a
    /// real relay restarts from its keys on disk.
    pub fn reset(&mut self) {
        *self = RelayCore::new(self.cfg.clone());
    }

    /// Counters.
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    /// Fold the stats accumulated since the last flush into the process
    /// telemetry. The simulator drives this once per `run_until` (through
    /// `Node::flush_telemetry`), so the per-cell hot path never pays a
    /// registry access.
    pub fn flush_telemetry(&mut self) {
        fn delta(counter: &telemetry::Counter, now: u64, then: u64) {
            if now > then {
                counter.add(now - then);
            }
        }
        let (now, then) = (self.stats, self.flushed);
        delta(&T_CELLS_IN, now.cells_in, then.cells_in);
        delta(&T_CELLS_OUT, now.cells_out, then.cells_out);
        delta(&T_CELLS_FWD, now.cells_forwarded, then.cells_forwarded);
        delta(&T_CRYPTO_BYTES, now.crypto_bytes, then.crypto_bytes);
        delta(&T_CIRCUITS, now.circuits, then.circuits);
        delta(&T_EXIT_STREAMS, now.exit_streams, then.exit_streams);
        self.flushed = now;
        if !self.batch_hist.is_empty() {
            T_BATCH_CELLS.merge_from(&std::mem::take(&mut self.batch_hist));
        }
    }

    /// The descriptor this relay advertises.
    pub fn descriptor(&self, addr: NodeId) -> RelayInfo {
        RelayInfo {
            fingerprint: self.fingerprint,
            nickname: self.cfg.nickname.clone(),
            addr,
            or_port: OR_PORT,
            dir_port: DIR_PORT,
            onion_key: self.onion_secret.public_key(),
            flags: self.cfg.flags,
            bandwidth: self.cfg.bandwidth,
            exit_policy: self.cfg.exit_policy.clone(),
            bento_port: self.cfg.bento_port,
        }
    }

    /// Drain pending host events (local-service streams).
    pub fn drain_events(&mut self) -> Vec<RelayEvent> {
        self.events.drain(..).collect()
    }

    /// Whether the authority has published its consensus (authority only).
    pub fn consensus_ready(&self) -> bool {
        self.signed_consensus.is_some()
    }

    // ------------------------------------------------------------------
    // Host-delegated callbacks. Each returns true when the relay claimed
    // the event.
    // ------------------------------------------------------------------

    /// Delegate of [`Node::on_start`].
    pub fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.my_addr = Some(ctx.me());
        if self.cfg.authority_signer.is_some() {
            // We are the authority: include our own descriptor and schedule
            // consensus construction.
            let me = ctx.me();
            let desc = self.descriptor(me);
            self.received_descs.push(desc);
            ctx.set_timer(self.cfg.consensus_delay, TAG_BUILD_CONSENSUS);
        } else if let Some(auth) = self.cfg.authority_addr {
            // Publish our descriptor to the authority.
            let conn = ctx.connect(auth, DIR_PORT);
            let me = ctx.me();
            let desc = self.descriptor(me);
            ctx.send(conn, DirMsg::PublishDesc(desc.encode()).encode());
            ctx.close(conn);
        }
    }

    /// Delegate of [`Node::on_conn_open`]. Claims OR- and DIR-port conns.
    pub fn on_conn_open(
        &mut self,
        _ctx: &mut Ctx<'_>,
        conn: ConnId,
        peer: NodeId,
        port: u16,
    ) -> bool {
        match port {
            OR_PORT => {
                self.links.insert(
                    conn,
                    LinkState {
                        peer,
                        established: true,
                        next_circ_id: 2, // acceptor allocates even ids
                        queued: Vec::new(),
                    },
                );
                true
            }
            DIR_PORT => {
                self.dir_conns.insert(conn);
                true
            }
            _ => false,
        }
    }

    /// Delegate of [`Node::on_conn_established`]. Claims conns this relay
    /// opened (outbound OR links and exit streams).
    pub fn on_conn_established(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _peer: NodeId) -> bool {
        if let Some(link) = self.links.get_mut(&conn) {
            link.established = true;
            let queued = std::mem::take(&mut link.queued);
            for cell in queued {
                self.send_cell(ctx, conn, cell);
            }
            return true;
        }
        if let Some(&(slot, stream_id)) = self.exit_conns.get(&conn) {
            // Outbound exit connection ready: flush buffered data, confirm.
            let pending = {
                let Some(circ) = self.circuits[slot].as_mut() else {
                    return true;
                };
                let Some(stream) = circ.streams.get_mut(&stream_id) else {
                    return true;
                };
                stream.connected = true;
                std::mem::take(&mut stream.pending)
            };
            for chunk in pending {
                ctx.send(conn, chunk);
            }
            self.send_to_origin(
                ctx,
                slot,
                RelayCell::new(RelayCmd::Connected, stream_id, vec![]),
            );
            return true;
        }
        false
    }

    /// Delegate of [`Node::on_msg`].
    pub fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) -> bool {
        if self.links.contains_key(&conn) {
            match Cell::peek_cmd(&msg) {
                Some(CellCmd::Relay) => {
                    // The hot path: switched in place inside `msg`, which is
                    // either forwarded as-is or recycled.
                    self.stats.cells_in += 1;
                    self.handle_relay_wire(ctx, conn, msg);
                }
                Some(_) => {
                    if let Some(cell) = Cell::decode(&msg) {
                        self.stats.cells_in += 1;
                        ctx.recycle_buf(msg);
                        self.handle_cell(ctx, conn, cell);
                    }
                }
                None => {}
            }
            return true;
        }
        if self.dir_conns.contains(&conn) {
            if let Ok(dm) = DirMsg::decode(&msg) {
                ctx.recycle_buf(msg);
                if let Some(resp) = self.handle_dir_msg(dm) {
                    ctx.send(conn, resp.encode());
                }
            }
            return true;
        }
        if let Some(&(slot, stream_id)) = self.exit_conns.get(&conn) {
            // Data from an external destination: package into cells.
            for chunk in msg.chunks(MAX_RELAY_DATA) {
                self.send_data_to_origin(ctx, slot, stream_id, chunk);
            }
            ctx.recycle_buf(msg);
            return true;
        }
        false
    }

    /// Delegate of [`Node::on_msgs`]: the batched counterpart of
    /// [`RelayCore::on_msg`]. On a link connection with batching enabled,
    /// consecutive relay cells of one circuit are grouped into runs and
    /// unsealed/encrypted with the batch crypto APIs; every other message
    /// (and the whole batch, when batching is off) takes the per-message
    /// path at its original position, so behavior is identical either way.
    pub fn on_msgs(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msgs: Vec<Vec<u8>>) -> bool {
        if !self.cfg.batch || !self.links.contains_key(&conn) {
            let mut claimed = false;
            for msg in msgs {
                claimed |= self.on_msg(ctx, conn, msg);
            }
            return claimed;
        }
        let mut iter = msgs.into_iter().peekable();
        while let Some(msg) = iter.next() {
            let circ_id = match (Cell::peek_cmd(&msg), Cell::peek_circ_id(&msg)) {
                (Some(CellCmd::Relay), Some(id)) => id,
                _ => {
                    // Non-relay (or malformed) cell: the single-message path,
                    // at its position in the delivery order.
                    self.on_msg(ctx, conn, msg);
                    continue;
                }
            };
            // Gather the maximal run of consecutive relay cells on the same
            // circuit. Only non-relay cells (e.g. Destroy) can change circuit
            // routing state, and they break runs by construction, so the
            // whole run resolves to one (slot, direction).
            let mut run = vec![msg];
            while let Some(next) = iter.peek() {
                if Cell::peek_cmd(next) == Some(CellCmd::Relay)
                    && Cell::peek_circ_id(next) == Some(circ_id)
                {
                    run.push(iter.next().expect("peeked message vanished"));
                } else {
                    break;
                }
            }
            self.stats.cells_in += run.len() as u64;
            self.batch_hist.record(run.len() as u64);
            if run.len() == 1 {
                let msg = run.pop().expect("run of one");
                self.handle_relay_wire(ctx, conn, msg);
            } else {
                self.handle_relay_run(ctx, conn, circ_id, run);
            }
        }
        true
    }

    /// Delegate of [`Node::on_conn_closed`].
    pub fn on_conn_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) -> bool {
        if let Some(link) = self.links.remove(&conn) {
            self.links_by_peer.remove(&link.peer);
            // Tear down circuits using this link.
            let mut slots: Vec<usize> = self
                .circ_lookup
                .iter()
                .filter(|((c, _), _)| *c == conn)
                .map(|(_, &s)| s)
                .collect();
            // Sorted by slot so teardown order (which feeds events and the
            // RNG) is the circuit-allocation order, not the key order the
            // ordered map happens to yield. notify=true so the circuit's
            // *other* side hears a Destroy and can start recovering; the
            // send toward the dead link itself no-ops.
            slots.sort_unstable();
            for slot in slots {
                self.teardown_circuit(ctx, slot, true);
            }
            return true;
        }
        if self.dir_conns.remove(&conn) {
            return true;
        }
        if let Some((slot, stream_id)) = self.exit_conns.remove(&conn) {
            if let Some(Some(circ)) = self.circuits.get_mut(slot) {
                if circ.streams.remove(&stream_id).is_some() && circ.alive {
                    self.send_to_origin(
                        ctx,
                        slot,
                        RelayCell::new(RelayCmd::End, stream_id, vec![]),
                    );
                }
            }
            return true;
        }
        false
    }

    /// Delegate of [`Node::on_timer`]. Claims tags in the relay namespace.
    pub fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) -> bool {
        if tag == TAG_BUILD_CONSENSUS {
            self.build_consensus();
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // Local-service stream API (used by the Bento server host).
    // ------------------------------------------------------------------

    /// Send bytes on a local-service stream (they travel backward to the
    /// stream's anonymous opener).
    pub fn local_send(&mut self, ctx: &mut Ctx<'_>, stream: LocalStream, data: &[u8]) {
        let Some(&(slot, stream_id)) = self.local_streams.get(&stream.0) else {
            return;
        };
        for chunk in data.chunks(MAX_RELAY_DATA) {
            self.send_data_to_origin(ctx, slot, stream_id, chunk);
        }
    }

    /// Close a local-service stream.
    pub fn local_close(&mut self, ctx: &mut Ctx<'_>, stream: LocalStream) {
        if let Some((slot, stream_id)) = self.local_streams.remove(&stream.0) {
            if let Some(Some(circ)) = self.circuits.get_mut(slot) {
                if circ.streams.remove(&stream_id).is_some() && circ.alive {
                    self.send_to_origin(
                        ctx,
                        slot,
                        RelayCell::new(RelayCmd::End, stream_id, vec![]),
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn send_cell(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, cell: Cell) {
        if let Some(link) = self.links.get_mut(&conn) {
            if !link.established {
                link.queued.push(cell);
                return;
            }
        }
        self.stats.cells_out += 1;
        let mut wire = ctx.take_buf(CELL_LEN);
        cell.encode_into(&mut wire);
        ctx.send(conn, wire);
    }

    /// Send an already-encoded cell buffer without copying it. On the rare
    /// unestablished-link path the cell is decoded back into the link queue
    /// and the buffer recycled.
    fn send_wire(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, wire: Vec<u8>) {
        if let Some(link) = self.links.get_mut(&conn) {
            if !link.established {
                if let Some(cell) = Cell::decode(&wire) {
                    link.queued.push(cell);
                }
                ctx.recycle_buf(wire);
                return;
            }
        }
        self.stats.cells_out += 1;
        ctx.send(conn, wire);
    }

    fn handle_cell(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, cell: Cell) {
        match cell.cmd {
            CellCmd::Padding => {}
            CellCmd::Create => self.handle_create(ctx, conn, cell),
            CellCmd::Created => self.handle_created(ctx, conn, cell),
            // Relay cells never reach here: on_msg routes them to the
            // in-place wire path (handle_relay_wire).
            CellCmd::Relay => {}
            CellCmd::Destroy => {
                if let Some(&slot) = self.circ_lookup.get(&(conn, cell.circ_id)) {
                    self.teardown_circuit(ctx, slot, true);
                }
            }
        }
    }

    fn handle_create(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, cell: Cell) {
        let onionskin = &cell.payload[..ntor::ONIONSKIN_LEN];
        let result =
            ntor::server_respond(ctx.rng(), self.fingerprint, &self.onion_secret, onionskin);
        let Ok((reply, keys)) = result else {
            let destroy = Cell::new(cell.circ_id, CellCmd::Destroy);
            self.send_cell(ctx, conn, destroy);
            return;
        };
        let mut crypto = LayerCrypto::relay_side(&keys);
        if self.cfg.batch {
            crypto.enable_batch();
        }
        let slot = self.alloc_circuit(RelayCircuit::new((conn, cell.circ_id), crypto));
        self.circ_lookup.insert((conn, cell.circ_id), slot);
        self.stats.circuits += 1;
        let created = Cell::with_payload(cell.circ_id, CellCmd::Created, &reply);
        self.send_cell(ctx, conn, created);
    }

    fn handle_created(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, cell: Cell) {
        // A next-hop circuit we extended finished its handshake: relay the
        // reply backward as EXTENDED.
        let Some(&slot) = self.circ_lookup.get(&(conn, cell.circ_id)) else {
            return;
        };
        let is_pending = self.circuits[slot]
            .as_ref()
            .map(|c| c.pending_extend)
            .unwrap_or(false);
        if !is_pending {
            return;
        }
        if let Some(c) = self.circuits[slot].as_mut() {
            c.pending_extend = false;
        }
        let reply = cell.payload[..ntor::REPLY_LEN].to_vec();
        self.send_to_origin(ctx, slot, RelayCell::new(RelayCmd::Extended, 0, reply));
    }

    /// Relay-cell switching, performed directly on the encoded buffer the
    /// cell arrived in: this hop's layer is stripped (forward) or added
    /// (backward) in place, the circuit id is rewritten, and the *same*
    /// allocation is re-queued toward the next link — a relayed cell costs
    /// zero heap allocations per hop.
    fn handle_relay_wire(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, mut msg: Vec<u8>) {
        let Some(circ_id) = Cell::peek_circ_id(&msg) else {
            return;
        };
        let Some(&slot) = self.circ_lookup.get(&(conn, circ_id)) else {
            ctx.recycle_buf(msg);
            return;
        };
        let from_prev = match self.circuits[slot].as_ref() {
            Some(c) => c.prev == (conn, circ_id),
            None => {
                ctx.recycle_buf(msg);
                return;
            }
        };
        if from_prev {
            // Forward direction: strip our layer, maybe recognize.
            let recognized = {
                let c = self.circuits[slot].as_mut().expect("checked above");
                match Cell::wire_payload_mut(&mut msg) {
                    Some(payload) => {
                        self.stats.crypto_bytes += payload.len() as u64;
                        c.crypto.unseal(payload)
                    }
                    None => {
                        ctx.recycle_buf(msg);
                        return;
                    }
                }
            };
            if recognized {
                let rc = Cell::wire_payload(&msg).and_then(RelayCell::parse_payload);
                ctx.recycle_buf(msg);
                if let Some(rc) = rc {
                    self.handle_recognized(ctx, slot, rc);
                }
                return;
            }
            // Not for us: pass along in the buffer it arrived in.
            let next = self.circuits[slot].as_ref().and_then(|c| c.next);
            if let Some((nconn, ncirc)) = next {
                Cell::set_wire_circ_id(&mut msg, ncirc);
                self.stats.cells_forwarded += 1;
                self.send_wire(ctx, nconn, msg);
                return;
            }
            let splice = self.circuits[slot].as_ref().and_then(|c| c.splice);
            if let Some(other) = splice {
                self.stats.cells_forwarded += 1;
                self.send_spliced_wire(ctx, other, msg);
                return;
            }
            // Unrecognized cell at the end of an unspliced circuit — drop
            // (protocol violation or tagging attack).
            ctx.recycle_buf(msg);
        } else {
            // Backward direction: add our layer, pass toward the origin.
            let prev = {
                let Some(c) = self.circuits[slot].as_mut() else {
                    ctx.recycle_buf(msg);
                    return;
                };
                match Cell::wire_payload_mut(&mut msg) {
                    Some(payload) => {
                        self.stats.crypto_bytes += payload.len() as u64;
                        c.crypto.encrypt_layer(payload)
                    }
                    None => {
                        ctx.recycle_buf(msg);
                        return;
                    }
                }
                c.prev
            };
            Cell::set_wire_circ_id(&mut msg, prev.1);
            self.stats.cells_forwarded += 1;
            self.send_wire(ctx, prev.0, msg);
        }
    }

    /// Switch a run (≥ 2 cells) of relay cells sharing one circuit that
    /// arrived in one coalesced delivery. Phase 1 strips (forward) or adds
    /// (backward) this hop's layer across the whole run with the batch
    /// crypto APIs — one prefetched wide-lane keystream pass — and phase 2
    /// dispatches each cell in arrival order exactly as the sequential path
    /// would. The phases commute because per-cell dispatch never touches
    /// the run's receive-direction crypto or tears the circuit down, so
    /// wire order, telemetry and per-cell outcomes stay byte-identical.
    fn handle_relay_run(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: ConnId,
        circ_id: u32,
        mut run: Vec<Vec<u8>>,
    ) {
        let slot = match self.circ_lookup.get(&(conn, circ_id)) {
            Some(&slot) if self.circuits[slot].is_some() => slot,
            _ => {
                for msg in run {
                    ctx.recycle_buf(msg);
                }
                return;
            }
        };
        if run.iter().any(|m| m.len() != CELL_LEN) {
            // A malformed cell in the run must not consume keystream; the
            // sequential path per cell gets every edge case right.
            for msg in run {
                self.handle_relay_wire(ctx, conn, msg);
            }
            return;
        }
        let from_prev =
            self.circuits[slot].as_ref().expect("checked above").prev == (conn, circ_id);
        self.stats.crypto_bytes += (PAYLOAD_LEN * run.len()) as u64;
        if from_prev {
            // Forward direction: strip our layer across the run, then
            // dispatch per cell (recognized cells to the relay proper,
            // the rest onward in the buffers they arrived in).
            let recognized = {
                let c = self.circuits[slot].as_mut().expect("checked above");
                let mut payloads: Vec<&mut [u8; PAYLOAD_LEN]> = run
                    .iter_mut()
                    .map(|m| Cell::wire_payload_mut(m).expect("length checked"))
                    .collect();
                let mut flags = vec![false; payloads.len()];
                c.crypto.unseal_batch(&mut payloads, &mut flags);
                flags
            };
            for (mut msg, rec) in run.into_iter().zip(recognized) {
                if rec {
                    let rc = Cell::wire_payload(&msg).and_then(RelayCell::parse_payload);
                    ctx.recycle_buf(msg);
                    if let Some(rc) = rc {
                        self.handle_recognized(ctx, slot, rc);
                    }
                    continue;
                }
                // Routing state is re-read per cell: an earlier cell in the
                // run may have extended or spliced the circuit.
                let next = self.circuits[slot].as_ref().and_then(|c| c.next);
                if let Some((nconn, ncirc)) = next {
                    Cell::set_wire_circ_id(&mut msg, ncirc);
                    self.stats.cells_forwarded += 1;
                    self.send_wire(ctx, nconn, msg);
                    continue;
                }
                let splice = self.circuits[slot].as_ref().and_then(|c| c.splice);
                if let Some(other) = splice {
                    self.stats.cells_forwarded += 1;
                    self.send_spliced_wire(ctx, other, msg);
                    continue;
                }
                ctx.recycle_buf(msg);
            }
        } else {
            // Backward direction: add our layer across the run, forward
            // every cell toward the origin in order.
            let prev = {
                let c = self.circuits[slot].as_mut().expect("checked above");
                let mut payloads: Vec<&mut [u8; PAYLOAD_LEN]> = run
                    .iter_mut()
                    .map(|m| Cell::wire_payload_mut(m).expect("length checked"))
                    .collect();
                c.crypto.encrypt_layer_batch(&mut payloads);
                c.prev
            };
            for mut msg in run {
                Cell::set_wire_circ_id(&mut msg, prev.1);
                self.stats.cells_forwarded += 1;
                self.send_wire(ctx, prev.0, msg);
            }
        }
    }

    /// Inject an encoded relay cell into a spliced circuit, re-encrypting in
    /// place so it travels toward that circuit's originator.
    fn send_spliced_wire(&mut self, ctx: &mut Ctx<'_>, slot: usize, mut msg: Vec<u8>) {
        let prev = {
            let Some(c) = self.circuits[slot].as_mut() else {
                ctx.recycle_buf(msg);
                return;
            };
            if !c.alive {
                ctx.recycle_buf(msg);
                return;
            }
            match Cell::wire_payload_mut(&mut msg) {
                Some(payload) => {
                    self.stats.crypto_bytes += payload.len() as u64;
                    c.crypto.encrypt_layer(payload)
                }
                None => {
                    ctx.recycle_buf(msg);
                    return;
                }
            }
            c.prev
        };
        Cell::set_wire_circ_id(&mut msg, prev.1);
        self.send_wire(ctx, prev.0, msg);
    }

    /// Seal a relay cell as the terminal hop and send it toward the origin,
    /// honoring the package window for data cells.
    fn send_to_origin(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        let is_data = rc.cmd == RelayCmd::Data;
        {
            let Some(c) = self.circuits[slot].as_mut() else {
                return;
            };
            if !c.alive {
                return;
            }
            if is_data && c.package_window <= 0 {
                c.queued_to_origin.push_back(rc);
                return;
            }
            if is_data {
                c.package_window -= 1;
            }
        }
        let payload = rc.encode_payload();
        self.seal_and_send_to_origin(ctx, slot, payload);
    }

    /// Package borrowed stream bytes into a DATA cell toward the origin —
    /// the zero-copy path behind exit, local-service and dir responses. The
    /// bytes are only copied to the heap when the package window is closed
    /// and the cell must be queued.
    fn send_data_to_origin(
        &mut self,
        ctx: &mut Ctx<'_>,
        slot: usize,
        stream_id: u16,
        chunk: &[u8],
    ) {
        {
            let Some(c) = self.circuits[slot].as_mut() else {
                return;
            };
            if !c.alive {
                return;
            }
            if c.package_window <= 0 {
                c.queued_to_origin.push_back(RelayCell::new(
                    RelayCmd::Data,
                    stream_id,
                    chunk.to_vec(),
                ));
                return;
            }
            c.package_window -= 1;
        }
        let payload = RelayCell::encode_payload_from(RelayCmd::Data, stream_id, chunk);
        self.seal_and_send_to_origin(ctx, slot, payload);
    }

    fn seal_and_send_to_origin(
        &mut self,
        ctx: &mut Ctx<'_>,
        slot: usize,
        mut payload: [u8; PAYLOAD_LEN],
    ) {
        let prev = {
            let Some(c) = self.circuits[slot].as_mut() else {
                return;
            };
            c.crypto.seal(&mut payload);
            self.stats.crypto_bytes += PAYLOAD_LEN as u64;
            c.prev
        };
        // Encode straight into a pooled wire buffer: no intermediate
        // `Cell` value, no second 509-byte payload copy.
        let mut wire = ctx.take_buf(CELL_LEN);
        Cell::encode_parts_into(prev.1, CellCmd::Relay, &payload, &mut wire);
        self.send_wire(ctx, prev.0, wire);
    }

    fn flush_queued_to_origin(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        loop {
            let rc = {
                let Some(c) = self.circuits[slot].as_mut() else {
                    return;
                };
                if c.package_window <= 0 {
                    return;
                }
                match c.queued_to_origin.pop_front() {
                    Some(rc) => rc,
                    None => return,
                }
            };
            self.send_to_origin(ctx, slot, rc);
        }
    }

    /// A relay cell addressed to this hop.
    fn handle_recognized(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        match rc.cmd {
            RelayCmd::Extend => self.handle_extend(ctx, slot, rc),
            RelayCmd::Begin => self.handle_begin(ctx, slot, rc),
            RelayCmd::BeginDir => self.handle_begin_dir(ctx, slot, rc),
            RelayCmd::Data => self.handle_stream_data(ctx, slot, rc),
            RelayCmd::End => self.handle_stream_end(ctx, slot, rc),
            RelayCmd::Sendme => {
                if let Some(c) = self.circuits[slot].as_mut() {
                    c.package_window += SENDME_INCREMENT;
                }
                self.flush_queued_to_origin(ctx, slot);
            }
            RelayCmd::Drop => {
                // Long-range cover traffic: absorbed silently.
            }
            RelayCmd::EstablishIntro => self.handle_establish_intro(ctx, slot, rc),
            RelayCmd::Introduce1 => self.handle_introduce1(ctx, slot, rc),
            RelayCmd::EstablishRendezvous => self.handle_establish_rendezvous(ctx, slot, rc),
            RelayCmd::Rendezvous1 => self.handle_rendezvous1(ctx, slot, rc),
            // Cells only ever addressed to origins; ignore at a relay.
            RelayCmd::Extended
            | RelayCmd::Connected
            | RelayCmd::IntroEstablished
            | RelayCmd::Introduce2
            | RelayCmd::IntroduceAck
            | RelayCmd::RendezvousEstablished
            | RelayCmd::Rendezvous2 => {}
        }
    }

    fn handle_extend(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        // data = fingerprint(20) | addr(4) | or_port(2) | onionskin(84)
        if rc.data.len() != 20 + 4 + 2 + ntor::ONIONSKIN_LEN {
            return;
        }
        let addr = NodeId(u32::from_be_bytes([
            rc.data[20],
            rc.data[21],
            rc.data[22],
            rc.data[23],
        ]));
        let or_port = u16::from_be_bytes([rc.data[24], rc.data[25]]);
        let onionskin = &rc.data[26..];
        // Reuse an existing link or open one.
        let conn = match self.links_by_peer.get(&addr) {
            Some(&c) => c,
            None => {
                let c = ctx.connect(addr, or_port);
                self.links.insert(
                    c,
                    LinkState {
                        peer: addr,
                        established: false,
                        next_circ_id: 1, // initiator allocates odd ids
                        queued: Vec::new(),
                    },
                );
                self.links_by_peer.insert(addr, c);
                c
            }
        };
        let circ_id = {
            let link = self.links.get_mut(&conn).expect("link exists");
            let id = link.next_circ_id;
            link.next_circ_id += 2;
            id
        };
        if let Some(c) = self.circuits[slot].as_mut() {
            c.next = Some((conn, circ_id));
            c.pending_extend = true;
        }
        self.circ_lookup.insert((conn, circ_id), slot);
        let create = Cell::with_payload(circ_id, CellCmd::Create, onionskin);
        self.send_cell(ctx, conn, create);
    }

    fn handle_begin(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        // data = 0 | addr(4) | port(2): open an external connection.
        if rc.data.len() != 7 || rc.data[0] != 0 {
            self.send_to_origin(
                ctx,
                slot,
                RelayCell::new(RelayCmd::End, rc.stream_id, vec![]),
            );
            return;
        }
        let addr = NodeId(u32::from_be_bytes([
            rc.data[1], rc.data[2], rc.data[3], rc.data[4],
        ]));
        let port = u16::from_be_bytes([rc.data[5], rc.data[6]]);
        let me = self.my_addr.expect("relay started");
        // Local service port? Advertising a bento_port *is* the operator's
        // exit-policy opt-in for localhost (§5 of the paper).
        if Some(addr) == self.my_addr && Some(port) == self.cfg.bento_port {
            let id = self.next_local_stream;
            self.next_local_stream += 1;
            self.local_streams.insert(id, (slot, rc.stream_id));
            if let Some(c) = self.circuits[slot].as_mut() {
                c.streams.insert(
                    rc.stream_id,
                    ExitStream {
                        kind: StreamKind::Local(id),
                        conn: None,
                        connected: true,
                        pending: Vec::new(),
                    },
                );
            }
            self.events.push_back(RelayEvent::LocalStreamOpened {
                stream: LocalStream(id),
                port,
            });
            self.send_to_origin(
                ctx,
                slot,
                RelayCell::new(RelayCmd::Connected, rc.stream_id, vec![]),
            );
            return;
        }
        // Exit policy check (never exit back into ourselves otherwise).
        if addr == me || !self.cfg.exit_policy.allows(addr, port) {
            self.send_to_origin(
                ctx,
                slot,
                RelayCell::new(RelayCmd::End, rc.stream_id, vec![]),
            );
            return;
        }
        let conn = ctx.connect(addr, port);
        self.exit_conns.insert(conn, (slot, rc.stream_id));
        self.stats.exit_streams += 1;
        if let Some(c) = self.circuits[slot].as_mut() {
            c.streams.insert(
                rc.stream_id,
                ExitStream {
                    kind: StreamKind::Exit,
                    conn: Some(conn),
                    connected: false,
                    pending: Vec::new(),
                },
            );
        }
        // CONNECTED is sent from on_conn_established.
    }

    fn handle_begin_dir(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        if let Some(c) = self.circuits[slot].as_mut() {
            c.streams.insert(
                rc.stream_id,
                ExitStream {
                    kind: StreamKind::Dir(FrameAssembler::new()),
                    conn: None,
                    connected: true,
                    pending: Vec::new(),
                },
            );
        }
        self.send_to_origin(
            ctx,
            slot,
            RelayCell::new(RelayCmd::Connected, rc.stream_id, vec![]),
        );
    }

    fn handle_stream_data(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        // Count toward the deliver window and credit the sender as needed.
        let send_sendme = {
            let Some(c) = self.circuits[slot].as_mut() else {
                return;
            };
            c.delivered_since_sendme += 1;
            if c.delivered_since_sendme >= SENDME_INCREMENT {
                c.delivered_since_sendme -= SENDME_INCREMENT;
                true
            } else {
                false
            }
        };
        if send_sendme {
            self.send_to_origin(ctx, slot, RelayCell::new(RelayCmd::Sendme, 0, vec![]));
        }
        enum Action {
            ToExit(ConnId, Vec<u8>),
            ToDir(Vec<Vec<u8>>),
            ToLocal(u64, Vec<u8>),
            None,
        }
        let action = {
            let Some(c) = self.circuits[slot].as_mut() else {
                return;
            };
            match c.streams.get_mut(&rc.stream_id) {
                Some(stream) => match &mut stream.kind {
                    StreamKind::Exit => {
                        if stream.connected {
                            Action::ToExit(stream.conn.expect("connected exit"), rc.data)
                        } else {
                            stream.pending.push(rc.data);
                            Action::None
                        }
                    }
                    StreamKind::Dir(asm) => {
                        asm.push(&rc.data);
                        Action::ToDir(asm.drain_frames())
                    }
                    StreamKind::Local(id) => Action::ToLocal(*id, rc.data),
                },
                None => Action::None,
            }
        };
        match action {
            Action::ToExit(conn, data) => {
                ctx.send(conn, data);
            }
            Action::ToDir(frames) => {
                for frame in frames {
                    if let Ok(dm) = DirMsg::decode(&frame) {
                        if let Some(resp) = self.handle_dir_msg(dm) {
                            let framed = encode_frame(&resp.encode());
                            for chunk in framed.chunks(MAX_RELAY_DATA) {
                                self.send_data_to_origin(ctx, slot, rc.stream_id, chunk);
                            }
                        }
                    }
                }
            }
            Action::ToLocal(id, data) => {
                self.events.push_back(RelayEvent::LocalStreamData {
                    stream: LocalStream(id),
                    data,
                });
            }
            Action::None => {}
        }
    }

    fn handle_stream_end(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        let removed = {
            let Some(c) = self.circuits[slot].as_mut() else {
                return;
            };
            c.streams.remove(&rc.stream_id)
        };
        if let Some(stream) = removed {
            match stream.kind {
                StreamKind::Exit => {
                    if let Some(conn) = stream.conn {
                        self.exit_conns.remove(&conn);
                        ctx.close(conn);
                    }
                }
                StreamKind::Local(id) => {
                    self.local_streams.remove(&id);
                    self.events.push_back(RelayEvent::LocalStreamClosed {
                        stream: LocalStream(id),
                    });
                }
                StreamKind::Dir(_) => {}
            }
        }
    }

    fn handle_establish_intro(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        if rc.data.len() != 32 {
            return;
        }
        let mut addr = [0u8; 32];
        addr.copy_from_slice(&rc.data);
        let addr = OnionAddr(addr);
        self.intro_points.insert(addr, slot);
        if let Some(c) = self.circuits[slot].as_mut() {
            c.intro_service = Some(addr);
        }
        self.send_to_origin(
            ctx,
            slot,
            RelayCell::new(RelayCmd::IntroEstablished, 0, vec![]),
        );
    }

    fn handle_introduce1(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        if rc.data.len() < 32 {
            return;
        }
        let mut addr = [0u8; 32];
        addr.copy_from_slice(&rc.data[..32]);
        let addr = OnionAddr(addr);
        let Some(&service_slot) = self.intro_points.get(&addr) else {
            // Unknown service: NACK with a nonempty payload.
            self.send_to_origin(
                ctx,
                slot,
                RelayCell::new(RelayCmd::IntroduceAck, 0, vec![1]),
            );
            return;
        };
        // Forward the whole payload to the service as INTRODUCE2.
        self.send_to_origin(
            ctx,
            service_slot,
            RelayCell::new(RelayCmd::Introduce2, 0, rc.data.clone()),
        );
        self.send_to_origin(ctx, slot, RelayCell::new(RelayCmd::IntroduceAck, 0, vec![]));
    }

    fn handle_establish_rendezvous(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        if rc.data.len() != 20 {
            return;
        }
        let mut cookie = [0u8; 20];
        cookie.copy_from_slice(&rc.data);
        self.rendezvous.insert(cookie, slot);
        if let Some(c) = self.circuits[slot].as_mut() {
            c.rendezvous_cookie = Some(cookie);
        }
        self.send_to_origin(
            ctx,
            slot,
            RelayCell::new(RelayCmd::RendezvousEstablished, 0, vec![]),
        );
    }

    fn handle_rendezvous1(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        if rc.data.len() < 20 {
            return;
        }
        let mut cookie = [0u8; 20];
        cookie.copy_from_slice(&rc.data[..20]);
        let Some(client_slot) = self.rendezvous.remove(&cookie) else {
            return;
        };
        // Splice the two circuits.
        if let Some(c) = self.circuits[client_slot].as_mut() {
            c.splice = Some(slot);
        }
        if let Some(c) = self.circuits[slot].as_mut() {
            c.splice = Some(client_slot);
        }
        // Deliver the handshake reply to the waiting client.
        self.send_to_origin(
            ctx,
            client_slot,
            RelayCell::new(RelayCmd::Rendezvous2, 0, rc.data[20..].to_vec()),
        );
    }

    fn handle_dir_msg(&mut self, dm: DirMsg) -> Option<DirMsg> {
        match dm {
            DirMsg::FetchConsensus => Some(DirMsg::ConsensusResp(
                self.signed_consensus.clone().unwrap_or_default(),
            )),
            DirMsg::PublishDesc(bytes) => {
                if self.cfg.authority_signer.is_some() {
                    if let Ok(info) = RelayInfo::decode(&bytes) {
                        self.received_descs
                            .retain(|d| d.fingerprint != info.fingerprint);
                        self.received_descs.push(info);
                    }
                }
                Some(DirMsg::DescAck)
            }
            DirMsg::PublishHsDesc(bytes) => {
                if let Some(desc) = crate::dir::HsDescriptor::decode_verified(&bytes) {
                    let addr = desc.onion_addr();
                    let newer = self
                        .hs_descs
                        .get(&addr)
                        .map(|(rev, _)| desc.revision > *rev)
                        .unwrap_or(true);
                    if newer {
                        self.hs_descs.insert(addr, (desc.revision, bytes));
                    }
                }
                Some(DirMsg::DescAck)
            }
            DirMsg::FetchHsDesc(addr) => Some(DirMsg::HsDescResp(
                self.hs_descs.get(&addr).map(|(_, b)| b.clone()),
            )),
            // Responses arriving at a relay are ignored.
            DirMsg::ConsensusResp(_) | DirMsg::DescAck | DirMsg::HsDescResp(_) => None,
        }
    }

    fn build_consensus(&mut self) {
        let Some(signer) = self.cfg.authority_signer.clone() else {
            return;
        };
        let mut relays = self.received_descs.clone();
        relays.sort_by_key(|a| a.fingerprint);
        let consensus = Consensus { epoch: 1, relays };
        let body = consensus.encode();
        let signature = signer
            .lock()
            .expect("authority signer lock poisoned")
            .sign(&body)
            .expect("authority signer exhausted");
        let signed = SignedConsensus { body, signature };
        self.signed_consensus = Some(signed.encode());
    }

    fn alloc_circuit(&mut self, circ: RelayCircuit) -> usize {
        for (i, slot) in self.circuits.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(circ);
                return i;
            }
        }
        self.circuits.push(Some(circ));
        self.circuits.len() - 1
    }

    fn teardown_circuit(&mut self, ctx: &mut Ctx<'_>, slot: usize, notify: bool) {
        let Some(circ) = self.circuits.get_mut(slot).and_then(Option::take) else {
            return;
        };
        self.circ_lookup.remove(&circ.prev);
        if let Some(next) = circ.next {
            self.circ_lookup.remove(&next);
            if notify {
                let destroy = Cell::new(next.1, CellCmd::Destroy);
                self.send_cell(ctx, next.0, destroy);
            }
        }
        if notify {
            let destroy = Cell::new(circ.prev.1, CellCmd::Destroy);
            self.send_cell(ctx, circ.prev.0, destroy);
        }
        for (_, stream) in circ.streams {
            match stream.kind {
                StreamKind::Exit => {
                    if let Some(conn) = stream.conn {
                        self.exit_conns.remove(&conn);
                        ctx.close(conn);
                    }
                }
                StreamKind::Local(id) => {
                    self.local_streams.remove(&id);
                    self.events.push_back(RelayEvent::LocalStreamClosed {
                        stream: LocalStream(id),
                    });
                }
                StreamKind::Dir(_) => {}
            }
        }
        if let Some(addr) = circ.intro_service {
            self.intro_points.remove(&addr);
        }
        if let Some(cookie) = circ.rendezvous_cookie {
            self.rendezvous.remove(&cookie);
        }
        if let Some(other) = circ.splice {
            if let Some(Some(o)) = self.circuits.get_mut(other) {
                o.splice = None;
            }
        }
    }
}

/// A standalone relay host node: a [`RelayCore`] and nothing else. Local
/// service streams are refused (no co-resident service).
pub struct RelayNode {
    /// The relay component.
    pub relay: RelayCore,
}

impl RelayNode {
    /// Wrap a relay core.
    pub fn new(cfg: RelayConfig) -> RelayNode {
        RelayNode {
            relay: RelayCore::new(cfg),
        }
    }
}

impl Node for RelayNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.relay.on_start(ctx);
    }
    fn on_conn_open(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, peer: NodeId, port: u16) {
        self.relay.on_conn_open(ctx, conn, peer, port);
    }
    fn on_conn_established(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, peer: NodeId) {
        self.relay.on_conn_established(ctx, conn, peer);
    }
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
        self.relay.on_msg(ctx, conn, msg);
        // A bare relay has no local service: close anything that opens.
        for ev in self.relay.drain_events() {
            if let RelayEvent::LocalStreamOpened { stream, .. } = ev {
                self.relay.local_close(ctx, stream);
            }
        }
    }
    fn on_msgs(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msgs: Vec<Vec<u8>>) {
        self.relay.on_msgs(ctx, conn, msgs);
        for ev in self.relay.drain_events() {
            if let RelayEvent::LocalStreamOpened { stream, .. } = ev {
                self.relay.local_close(ctx, stream);
            }
        }
    }
    fn on_conn_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        self.relay.on_conn_closed(ctx, conn);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        self.relay.on_timer(ctx, tag);
    }
    fn on_crash(&mut self) {
        self.relay.reset();
    }
    // Default on_restart → on_start: the reborn relay re-registers with the
    // authority under its (seed-derived, therefore unchanged) identity.
    fn flush_telemetry(&mut self) {
        self.relay.flush_telemetry();
    }
}
