//! The hidden-service host component: descriptor publication, introduction
//! points, and the service side of rendezvous.
//!
//! [`HiddenServiceHost`] drives a [`TorClient`]: it builds intro circuits,
//! registers at introduction points, signs and publishes its descriptor to
//! the responsible HSDir, and answers INTRODUCE2 by building a circuit to
//! the client's rendezvous point and joining with RENDEZVOUS1 plus an
//! end-to-end virtual hop.
//!
//! For the paper's LoadBalancer (§8): construct with `auto_rendezvous =
//! false` and the host receives [`HsEvent::Introduction`] instead — it can
//! forward the raw introduction to a *replica*, which calls
//! [`HiddenServiceHost::handle_introduction`] itself. Replicas share the
//! service's key material ("copies all files including the hostname and
//! private key", §8.2), so a replica's RENDEZVOUS1 authenticates correctly.

use crate::cell::RelayCmd;
use crate::client::{CircuitHandle, TerminalReq, TorClient, TorEvent};
use crate::dir::{Consensus, DirMsg, Fingerprint, HsDescriptor, OnionAddr};
use onion_crypto::aead::{open as aead_open, AeadKey};
use onion_crypto::hashsig::MerkleSigner;
use onion_crypto::hmac::hkdf;
use onion_crypto::ntor;
use onion_crypto::sha256::sha256;
use onion_crypto::x25519::{PublicKey, StaticSecret};
use simnet::Ctx;
use std::collections::{BTreeMap, BTreeSet};

pub use crate::dir::OnionAddr as HsAddr;

/// §9.4 DDoS defense: hashcash over the rendezvous cookie. Count the
/// leading zero bits of SHA-256(cookie ‖ nonce).
fn pow_zero_bits(cookie: &[u8; 20], nonce: u64) -> u32 {
    let mut input = Vec::with_capacity(28);
    input.extend_from_slice(cookie);
    input.extend_from_slice(&nonce.to_be_bytes());
    let d = sha256(&input);
    let mut bits = 0u32;
    for b in d {
        if b == 0 {
            bits += 8;
        } else {
            bits += b.leading_zeros();
            break;
        }
    }
    bits
}

/// Solve the client puzzle: find a nonce whose digest has at least `bits`
/// leading zeros. Cost doubles per bit; this is the "client-side proofs of
/// work prior to establishing a connection" of §9.4.
pub fn solve_pow(cookie: &[u8; 20], bits: u8) -> u64 {
    let mut nonce = 0u64;
    loop {
        if pow_zero_bits(cookie, nonce) >= bits as u32 {
            return nonce;
        }
        nonce += 1;
    }
}

/// Verify a client puzzle solution.
pub fn check_pow(cookie: &[u8; 20], nonce: u64, bits: u8) -> bool {
    pow_zero_bits(cookie, nonce) >= bits as u32
}

/// Pick the HSDir responsible for an onion address by rendezvous hashing —
/// service and client derive the same answer from the same consensus.
pub fn responsible_hsdir(cons: &Consensus, addr: &OnionAddr) -> Option<Fingerprint> {
    cons.with_flags(crate::dir::RelayFlags::HSDIR)
        .into_iter()
        .min_by_key(|r| {
            let mut input = Vec::with_capacity(52);
            input.extend_from_slice(&r.fingerprint);
            input.extend_from_slice(&addr.0);
            sha256(&input)
        })
        .map(|r| r.fingerprint)
}

/// Events the hidden-service component surfaces to its host.
#[derive(Debug)]
pub enum HsEvent {
    /// The descriptor is published; clients can now connect.
    Published(OnionAddr),
    /// An INTRODUCE2 arrived and `auto_rendezvous` is off: the host decides
    /// who answers (the LoadBalancer hook).
    Introduction(Vec<u8>),
    /// A rendezvous circuit to a client is live; incoming streams on it
    /// arrive as ordinary [`TorEvent`]s.
    ClientCircuit(CircuitHandle),
}

struct PendingRendezvous {
    cookie: [u8; 20],
    reply: Vec<u8>,
    keys: ntor::CircuitKeys,
}

/// The service component.
pub struct HiddenServiceHost {
    signer: MerkleSigner,
    enc_secret: StaticSecret,
    n_intro: usize,
    auto_rendezvous: bool,
    /// Required proof-of-work bits on introductions (0 = none).
    require_pow_bits: u8,
    /// Introductions dropped for missing/invalid proof of work.
    pub pow_rejections: u64,
    /// Rendezvous cookies already answered (replay protection: a malicious
    /// intro point re-forwarding an INTRODUCE2 must not make the service
    /// build endless rendezvous circuits).
    seen_cookies: BTreeSet<[u8; 20]>,
    /// Introductions dropped as replays.
    pub replay_rejections: u64,
    onion_addr: OnionAddr,
    /// intro circuit slot -> (fingerprint, established).
    /// Keyed by circuit handle; a `BTreeMap` so every iteration (notably
    /// the descriptor's intro point list) is deterministic.
    intro_circs: BTreeMap<usize, (Fingerprint, bool)>,
    /// Intro relays whose circuits died; avoided when picking replacements
    /// (failing open when the consensus offers nothing else).
    intro_failures: Vec<Fingerprint>,
    /// Intro circuits lost and rebuilt since `start()`.
    pub intro_rebuilds: u64,
    /// The published descriptor no longer matches the live intro set
    /// (an intro circuit died); republish once all circuits re-establish.
    desc_stale: bool,
    hsdir_circ: Option<CircuitHandle>,
    desc_bytes: Option<Vec<u8>>,
    pending_rendezvous: BTreeMap<usize, PendingRendezvous>,
    client_circs: Vec<CircuitHandle>,
    published: bool,
    revision: u64,
    events: Vec<HsEvent>,
}

impl HiddenServiceHost {
    /// Create a service whose keys derive deterministically from `seed`.
    /// `auto_rendezvous = false` defers introductions to the host.
    pub fn new(seed: [u8; 32], n_intro: usize, auto_rendezvous: bool) -> HiddenServiceHost {
        let signer = MerkleSigner::generate(seed, 6);
        let enc_secret = StaticSecret::from_bytes(sha256(&[&seed[..], b"enc"].concat()));
        let onion_addr = OnionAddr::from_service_key(&signer.verify_key());
        HiddenServiceHost {
            signer,
            enc_secret,
            n_intro,
            auto_rendezvous,
            require_pow_bits: 0,
            pow_rejections: 0,
            seen_cookies: BTreeSet::new(),
            replay_rejections: 0,
            onion_addr,
            intro_circs: BTreeMap::new(),
            intro_failures: Vec::new(),
            intro_rebuilds: 0,
            desc_stale: false,
            hsdir_circ: None,
            desc_bytes: None,
            pending_rendezvous: BTreeMap::new(),
            client_circs: Vec::new(),
            published: false,
            revision: 0,
            events: Vec::new(),
        }
    }

    /// Require `bits` of client proof of work on every introduction
    /// (§9.4's hidden-service DDoS defense, as a per-service policy
    /// rather than a Tor protocol change).
    pub fn with_pow(mut self, bits: u8) -> Self {
        self.require_pow_bits = bits;
        self
    }

    /// The service's onion address.
    pub fn onion_addr(&self) -> OnionAddr {
        self.onion_addr
    }

    /// Whether the descriptor has been published.
    pub fn is_published(&self) -> bool {
        self.published
    }

    /// Drain service events.
    pub fn drain_events(&mut self) -> Vec<HsEvent> {
        std::mem::take(&mut self.events)
    }

    /// Rendezvous circuits currently serving clients.
    pub fn client_circuits(&self) -> &[CircuitHandle] {
        &self.client_circs
    }

    /// Fingerprints of the current intro relays (established or building),
    /// in circuit-handle order.
    pub fn intro_points(&self) -> Vec<Fingerprint> {
        self.intro_circs.values().map(|(fp, _)| *fp).collect()
    }

    /// Number of intro circuits currently established.
    pub fn intro_established(&self) -> usize {
        self.intro_circs.values().filter(|(_, est)| *est).count()
    }

    /// Begin establishing introduction points (requires the client to have
    /// a consensus). Call once.
    pub fn start(&mut self, ctx: &mut Ctx<'_>, client: &mut TorClient) {
        let Some(cons) = client.consensus() else {
            return;
        };
        // Pick intro relays: walk the consensus in order, skipping any the
        // client cannot end a circuit at (e.g. a Bento box's own relay),
        // until n_intro circuits are building.
        let all: Vec<Fingerprint> = cons
            .with_flags(crate::dir::RelayFlags::FAST)
            .iter()
            .map(|r| r.fingerprint)
            .collect();
        let mut established = 0usize;
        for fp in all {
            if established >= self.n_intro {
                break;
            }
            if let Some(path) = client.select_path(ctx, TerminalReq::Specific(fp)) {
                if let Some(h) = client.build_circuit(ctx, path) {
                    self.intro_circs.insert(h.0, (fp, false));
                    established += 1;
                }
            }
        }
    }

    /// Answer an introduction (raw INTRODUCE2 payload): decrypt, build a
    /// circuit to the rendezvous point, join, and add the e2e hop.
    /// This is the entry point a LoadBalancer replica uses.
    pub fn handle_introduction(
        &mut self,
        ctx: &mut Ctx<'_>,
        client: &mut TorClient,
        data: &[u8],
    ) -> bool {
        // data = onion_addr(32) | eph_pub(32) | sealed(rp_fp 20 | rp_addr 4 |
        //        rp_port 2 | cookie 20 | onionskin 84 | tag 32)
        if data.len() < 64 {
            return false;
        }
        let mut addr = [0u8; 32];
        addr.copy_from_slice(&data[..32]);
        if OnionAddr(addr) != self.onion_addr {
            return false;
        }
        let mut eph = [0u8; 32];
        eph.copy_from_slice(&data[32..64]);
        let shared = self.enc_secret.diffie_hellman(&PublicKey(eph));
        let mut master = [0u8; 32];
        master.copy_from_slice(&hkdf(b"bento-intro", &shared, b"blob", 32));
        let key = AeadKey::from_master(&master);
        let Ok(plain) = aead_open(&key, &[0u8; 12], &addr, &data[64..]) else {
            return false;
        };
        const BASE: usize = 20 + 4 + 2 + 20 + ntor::ONIONSKIN_LEN;
        if plain.len() != BASE && plain.len() != BASE + 8 {
            return false;
        }
        let mut rp_fp = [0u8; 20];
        rp_fp.copy_from_slice(&plain[..20]);
        let mut cookie = [0u8; 20];
        cookie.copy_from_slice(&plain[26..46]);
        if self.require_pow_bits > 0 {
            let ok = plain.len() == BASE + 8 && {
                let nonce = u64::from_be_bytes(plain[BASE..].try_into().expect("8 bytes"));
                check_pow(&cookie, nonce, self.require_pow_bits)
            };
            if !ok {
                self.pow_rejections += 1;
                return false;
            }
        }
        if !self.seen_cookies.insert(cookie) {
            self.replay_rejections += 1;
            return false;
        }
        let onionskin = &plain[46..BASE];
        // E2E handshake: we are the "server"; our identity is the enc key.
        let mut svc_id = [0u8; 20];
        svc_id.copy_from_slice(&addr[..20]);
        let Ok((reply, keys)) =
            ntor::server_respond(ctx.rng(), svc_id, &self.enc_secret, onionskin)
        else {
            return false;
        };
        // Circuit to the client's rendezvous point.
        let Some(path) = client.select_path(ctx, TerminalReq::Specific(rp_fp)) else {
            return false;
        };
        let Some(h) = client.build_circuit(ctx, path) else {
            return false;
        };
        self.pending_rendezvous.insert(
            h.0,
            PendingRendezvous {
                cookie,
                reply,
                keys,
            },
        );
        true
    }

    /// Feed a client event through the service machinery. Returns the event
    /// back if it was not service-related (the host should handle it).
    pub fn handle_event(
        &mut self,
        ctx: &mut Ctx<'_>,
        client: &mut TorClient,
        ev: TorEvent,
    ) -> Option<TorEvent> {
        match ev {
            TorEvent::CircuitReady(h) => {
                if self.intro_circs.contains_key(&h.0) {
                    client.send_control(
                        ctx,
                        h,
                        RelayCmd::EstablishIntro,
                        self.onion_addr.0.to_vec(),
                    );
                    return None;
                }
                if Some(h) == self.hsdir_circ {
                    if let Some(bytes) = self.desc_bytes.clone() {
                        client.dir_request(ctx, h, DirMsg::PublishHsDesc(bytes));
                    }
                    return None;
                }
                if let Some(pr) = self.pending_rendezvous.remove(&h.0) {
                    let mut data = Vec::with_capacity(20 + pr.reply.len());
                    data.extend_from_slice(&pr.cookie);
                    data.extend_from_slice(&pr.reply);
                    // Seal RENDEZVOUS1 for the RP (the current last hop)
                    // *before* adding the e2e hop.
                    client.send_control(ctx, h, RelayCmd::Rendezvous1, data);
                    client.push_virtual_hop_server(h, &pr.keys);
                    self.client_circs.push(h);
                    self.events.push(HsEvent::ClientCircuit(h));
                    return None;
                }
                Some(TorEvent::CircuitReady(h))
            }
            TorEvent::ControlCell(h, RelayCmd::IntroEstablished, _) => {
                if let Some(entry) = self.intro_circs.get_mut(&h.0) {
                    entry.1 = true;
                }
                if (!self.published || self.desc_stale)
                    && !self.intro_circs.is_empty()
                    && self.intro_circs.values().all(|(_, est)| *est)
                {
                    self.publish_descriptor(ctx, client);
                }
                None
            }
            TorEvent::CircuitClosed(h) => {
                if let Some((dead_fp, _)) = self.intro_circs.remove(&h.0) {
                    // An intro circuit died (relay crash, link loss): the
                    // descriptor now advertises a dead intro point. Rebuild
                    // on a fresh path and republish once re-established —
                    // without this, a host that loses every intro point
                    // stays unreachable until restart.
                    self.intro_failures.push(dead_fp);
                    self.intro_rebuilds += 1;
                    self.desc_stale = true;
                    self.rebuild_intro_circuits(ctx, client);
                    return None;
                }
                if Some(h) == self.hsdir_circ {
                    // The publish circuit died before DescAck: ship the
                    // already-signed descriptor over a fresh circuit.
                    self.hsdir_circ = None;
                    self.ship_descriptor(ctx, client);
                    return None;
                }
                if self.pending_rendezvous.remove(&h.0).is_some() {
                    // The rendezvous circuit failed before RENDEZVOUS1; the
                    // client's own retry machinery re-introduces.
                    return None;
                }
                if let Some(pos) = self.client_circs.iter().position(|&c| c == h) {
                    self.client_circs.remove(pos);
                    return None;
                }
                Some(TorEvent::CircuitClosed(h))
            }
            TorEvent::ControlCell(h, RelayCmd::Introduce2, data) => {
                if self.intro_circs.contains_key(&h.0) {
                    if self.auto_rendezvous {
                        self.handle_introduction(ctx, client, &data);
                    } else {
                        self.events.push(HsEvent::Introduction(data));
                    }
                    return None;
                }
                Some(TorEvent::ControlCell(h, RelayCmd::Introduce2, data))
            }
            TorEvent::DirResponse(h, _, DirMsg::DescAck) => {
                if Some(h) == self.hsdir_circ {
                    self.hsdir_circ = None;
                    client.destroy_circuit(ctx, h);
                    if !self.published {
                        self.published = true;
                        self.events.push(HsEvent::Published(self.onion_addr));
                    }
                    return None;
                }
                Some(TorEvent::DirResponse(h, 0, DirMsg::DescAck))
            }
            other => Some(other),
        }
    }

    /// Sign the current descriptor and ship it to the responsible HSDir.
    fn publish_descriptor(&mut self, ctx: &mut Ctx<'_>, client: &mut TorClient) {
        self.revision += 1;
        let desc = HsDescriptor {
            service_key: self.signer.verify_key(),
            enc_key: self.enc_secret.public_key(),
            intro_points: self.intro_circs.values().map(|(fp, _)| *fp).collect(),
            revision: self.revision,
        };
        let Some(bytes) = desc.encode_signed(&mut self.signer) else {
            return;
        };
        self.desc_bytes = Some(bytes);
        self.desc_stale = false;
        self.ship_descriptor(ctx, client);
    }

    /// Build a circuit to the responsible HSDir carrying the already-signed
    /// descriptor (the CircuitReady arm sends the publish request).
    fn ship_descriptor(&mut self, ctx: &mut Ctx<'_>, client: &mut TorClient) {
        if self.desc_bytes.is_none() || self.hsdir_circ.is_some() {
            return;
        }
        let Some(cons) = client.consensus() else {
            return;
        };
        let Some(hsdir_fp) = responsible_hsdir(cons, &self.onion_addr) else {
            return;
        };
        if let Some(path) = client.select_path(ctx, TerminalReq::Specific(hsdir_fp)) {
            if let Some(h) = client.build_circuit(ctx, path) {
                self.hsdir_circ = Some(h);
            }
        }
    }

    /// Top the intro set back up to `n_intro` circuits after losses. Walks
    /// the consensus FAST relays in order — the same deterministic policy
    /// as [`HiddenServiceHost::start`] — skipping relays already serving as
    /// intro points; relays whose circuits died on us are taken only as a
    /// last resort (failing open, like the client's own failure cache).
    fn rebuild_intro_circuits(&mut self, ctx: &mut Ctx<'_>, client: &mut TorClient) {
        let Some(cons) = client.consensus() else {
            return;
        };
        let candidates: Vec<Fingerprint> = cons
            .with_flags(crate::dir::RelayFlags::FAST)
            .iter()
            .map(|r| r.fingerprint)
            .collect();
        let mut in_use: BTreeSet<Fingerprint> =
            self.intro_circs.values().map(|(fp, _)| *fp).collect();
        for avoid_failed in [true, false] {
            for &fp in &candidates {
                if self.intro_circs.len() >= self.n_intro {
                    return;
                }
                if in_use.contains(&fp) {
                    continue;
                }
                if avoid_failed && self.intro_failures.contains(&fp) {
                    continue;
                }
                if let Some(path) = client.select_path(ctx, TerminalReq::Specific(fp)) {
                    if let Some(h) = client.build_circuit(ctx, path) {
                        self.intro_circs.insert(h.0, (fp, false));
                        in_use.insert(fp);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::{ExitPolicy, RelayFlags, RelayInfo};
    use onion_crypto::hashsig::MerkleSigner;
    use simnet::NodeId;

    fn consensus_with_hsdirs(n: u8) -> Consensus {
        Consensus {
            epoch: 1,
            relays: (0..n)
                .map(|i| RelayInfo {
                    fingerprint: [i; 20],
                    nickname: format!("r{i}"),
                    addr: NodeId(i as u32),
                    or_port: 9001,
                    dir_port: 9030,
                    onion_key: PublicKey([i; 32]),
                    flags: RelayFlags::default().with(RelayFlags::HSDIR),
                    bandwidth: 1000,
                    exit_policy: ExitPolicy::reject_all(),
                    bento_port: None,
                })
                .collect(),
        }
    }

    #[test]
    fn responsible_hsdir_is_deterministic_and_balanced() {
        let cons = consensus_with_hsdirs(8);
        let addr_a = OnionAddr([1u8; 32]);
        let _addr_b = OnionAddr([2u8; 32]);
        let a1 = responsible_hsdir(&cons, &addr_a).unwrap();
        let a2 = responsible_hsdir(&cons, &addr_a).unwrap();
        assert_eq!(a1, a2, "same inputs, same HSDir");
        // Over many addresses, more than one HSDir should be used.
        let mut seen = std::collections::HashSet::new();
        for i in 0..32u8 {
            let addr = OnionAddr([i; 32]);
            seen.insert(responsible_hsdir(&cons, &addr).unwrap());
        }
        assert!(seen.len() > 1, "rendezvous hashing should spread load");
    }

    #[test]
    fn no_hsdirs_yields_none() {
        let mut cons = consensus_with_hsdirs(3);
        for r in &mut cons.relays {
            r.flags = RelayFlags::default();
        }
        assert!(responsible_hsdir(&cons, &OnionAddr([0u8; 32])).is_none());
    }

    #[test]
    fn onion_addr_derives_from_seed_deterministically() {
        let a = HiddenServiceHost::new([7u8; 32], 3, true);
        let b = HiddenServiceHost::new([7u8; 32], 3, true);
        let c = HiddenServiceHost::new([8u8; 32], 3, true);
        assert_eq!(a.onion_addr(), b.onion_addr());
        assert_ne!(a.onion_addr(), c.onion_addr());
    }

    #[test]
    fn replica_shares_identity_with_same_seed() {
        // The LoadBalancer's replica construction contract: same seed =>
        // same onion address and same enc key (can answer introductions).
        let primary = HiddenServiceHost::new([9u8; 32], 3, false);
        let replica = HiddenServiceHost::new([9u8; 32], 0, true);
        assert_eq!(primary.onion_addr(), replica.onion_addr());
        assert_eq!(
            primary.enc_secret.public_key(),
            replica.enc_secret.public_key()
        );
    }

    #[test]
    fn descriptor_round_trips_through_signer() {
        let mut signer = MerkleSigner::generate([3u8; 32], 4);
        let desc = HsDescriptor {
            service_key: signer.verify_key(),
            enc_key: PublicKey([5u8; 32]),
            intro_points: vec![[1u8; 20]],
            revision: 1,
        };
        let bytes = desc.encode_signed(&mut signer).unwrap();
        assert_eq!(HsDescriptor::decode_verified(&bytes).unwrap(), desc);
    }
}
