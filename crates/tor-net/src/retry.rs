//! Retry policy: seeded jittered exponential backoff and a decaying cache
//! of recently-failed relays.
//!
//! Both pieces are deterministic given the simulation RNG: the backoff's
//! jitter draw comes from the caller-supplied (seeded) generator, and the
//! failure cache is a `BTreeMap` so its iteration order can never leak hash
//! randomness into the simulation.

use crate::dir::Fingerprint;
use rand::rngs::StdRng;
use rand::Rng;
use simnet::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Parameters of a jittered exponential backoff schedule.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// Nominal first delay.
    pub base: SimDuration,
    /// Nominal delay ceiling.
    pub cap: SimDuration,
    /// Attempts allowed before [`Backoff::next_delay`] returns `None`
    /// (0 = unlimited).
    pub max_attempts: u32,
}

impl BackoffPolicy {
    /// A policy with `base` and `cap` and unlimited attempts.
    pub fn new(base: SimDuration, cap: SimDuration) -> BackoffPolicy {
        BackoffPolicy {
            base,
            cap,
            max_attempts: 0,
        }
    }

    /// Limit the number of attempts.
    pub fn with_max_attempts(mut self, n: u32) -> BackoffPolicy {
        self.max_attempts = n;
        self
    }
}

/// Mutable backoff state: counts attempts, produces the next delay.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    attempt: u32,
}

impl Backoff {
    /// Fresh state for `policy` (no attempts made).
    pub fn new(policy: BackoffPolicy) -> Backoff {
        Backoff { policy, attempt: 0 }
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The nominal (pre-jitter) delay for attempt `n`: `base << n`, capped.
    fn nominal(&self, n: u32) -> SimDuration {
        let base = self.policy.base.as_nanos();
        let cap = self.policy.cap.as_nanos().max(base);
        let shifted = base.checked_shl(n.min(63)).unwrap_or(u64::MAX);
        SimDuration::from_nanos(shifted.min(cap))
    }

    /// Consume an attempt and return the delay before the next try, or
    /// `None` when attempts are exhausted. The delay is drawn uniformly from
    /// `[nominal/2, nominal]` — jittered so synchronized failers desync, yet
    /// monotone in expectation, never above the cap, and a pure function of
    /// the RNG stream (deterministic per seed).
    pub fn next_delay(&mut self, rng: &mut StdRng) -> Option<SimDuration> {
        if self.policy.max_attempts != 0 && self.attempt >= self.policy.max_attempts {
            return None;
        }
        let nominal = self.nominal(self.attempt).as_nanos().max(1);
        self.attempt += 1;
        let lo = nominal / 2;
        let jittered = lo + rng.gen_range(0..=(nominal - lo));
        Some(SimDuration::from_nanos(jittered))
    }

    /// Reset after a success: the next failure starts from `base` again.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Relays that failed us recently, with per-entry decay: a failed relay is
/// avoided during path selection until its entry expires.
#[derive(Debug, Clone)]
pub struct FailureCache {
    /// Fingerprint → time the failure stops counting.
    entries: BTreeMap<Fingerprint, SimTime>,
    decay: SimDuration,
}

impl FailureCache {
    /// A cache whose entries expire `decay` after being recorded.
    pub fn new(decay: SimDuration) -> FailureCache {
        FailureCache {
            entries: BTreeMap::new(),
            decay,
        }
    }

    /// Record a failure observed at `now` (re-recording extends the expiry).
    pub fn record(&mut self, fp: Fingerprint, now: SimTime) {
        self.entries.insert(fp, now + self.decay);
    }

    /// Is `fp` still considered failed at `now`?
    pub fn is_failed(&self, fp: &Fingerprint, now: SimTime) -> bool {
        self.entries.get(fp).is_some_and(|&until| until > now)
    }

    /// Fingerprints still failed at `now`, pruning expired entries.
    pub fn active(&mut self, now: SimTime) -> Vec<Fingerprint> {
        self.entries.retain(|_, &mut until| until > now);
        self.entries.keys().copied().collect()
    }

    /// Fingerprints still failed at `now`, without pruning (usable from
    /// shared references).
    pub fn snapshot(&self, now: SimTime) -> Vec<Fingerprint> {
        self.entries
            .iter()
            .filter(|(_, &until)| until > now)
            .map(|(fp, _)| *fp)
            .collect()
    }

    /// Number of (possibly expired) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no failures are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forget everything (e.g. after a consensus refresh).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn policy_ms(base: u64, cap: u64) -> BackoffPolicy {
        BackoffPolicy::new(
            SimDuration::from_millis(base),
            SimDuration::from_millis(cap),
        )
    }

    #[test]
    fn backoff_respects_attempt_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = Backoff::new(policy_ms(100, 1000).with_max_attempts(3));
        assert!(b.next_delay(&mut rng).is_some());
        assert!(b.next_delay(&mut rng).is_some());
        assert!(b.next_delay(&mut rng).is_some());
        assert!(b.next_delay(&mut rng).is_none());
        b.reset();
        assert!(b.next_delay(&mut rng).is_some());
    }

    #[test]
    fn failure_cache_decays() {
        let mut fc = FailureCache::new(SimDuration::from_secs(10));
        let fp: Fingerprint = [7u8; 20];
        let t0 = SimTime::ZERO;
        fc.record(fp, t0);
        assert!(fc.is_failed(&fp, t0 + SimDuration::from_secs(5)));
        assert!(!fc.is_failed(&fp, t0 + SimDuration::from_secs(15)));
        assert_eq!(
            fc.active(t0 + SimDuration::from_secs(15)),
            Vec::<Fingerprint>::new()
        );
        assert!(fc.is_empty());
    }

    use proptest::prelude::*;

    proptest! {
        /// The jittered schedule stays within the monotone nominal envelope
        /// `[base<<n / 2, min(base<<n, cap)]` and never exceeds the cap.
        #[test]
        fn backoff_schedule_bounded_and_capped(
            seed in 0u64..1000,
            base_ms in 1u64..500,
            cap_ms in 1u64..10_000,
            n in 1usize..40,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = Backoff::new(policy_ms(base_ms, cap_ms));
            let base = SimDuration::from_millis(base_ms).as_nanos();
            let cap = SimDuration::from_millis(cap_ms).as_nanos().max(base);
            for i in 0..n {
                let d = b.next_delay(&mut rng).unwrap().as_nanos();
                let nominal = base.checked_shl(i.min(63) as u32).unwrap_or(u64::MAX).min(cap);
                prop_assert!(d <= nominal, "attempt {i}: {d} > nominal {nominal}");
                prop_assert!(d >= nominal / 2, "attempt {i}: {d} < {}", nominal / 2);
                prop_assert!(d <= cap, "attempt {i}: {d} above cap {cap}");
            }
        }

        /// Same seed → the same delay sequence, different seed → (almost
        /// always) a different one: the schedule is a pure function of the
        /// RNG stream.
        #[test]
        fn backoff_deterministic_per_seed(seed in 0u64..1000, n in 1usize..20) {
            let schedule = |s: u64| {
                let mut rng = StdRng::seed_from_u64(s);
                let mut b = Backoff::new(policy_ms(50, 5_000));
                (0..n).map(|_| b.next_delay(&mut rng).unwrap()).collect::<Vec<_>>()
            };
            prop_assert_eq!(schedule(seed), schedule(seed));
        }

        /// Nominal (pre-jitter) delays are monotone non-decreasing — the
        /// "schedule is monotone" half of the satellite property.
        #[test]
        fn backoff_nominal_monotone(base_ms in 1u64..500, cap_ms in 1u64..10_000) {
            let b = Backoff::new(policy_ms(base_ms, cap_ms));
            let mut last = SimDuration::from_nanos(0);
            for i in 0..48 {
                let nom = b.nominal(i);
                prop_assert!(nom >= last, "nominal regressed at attempt {i}");
                last = nom;
            }
        }
    }
}
