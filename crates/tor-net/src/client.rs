//! The onion-proxy component: what runs inside a Tor client (and inside a
//! Bento box's "Onion Proxy for functions", Figure 3 of the paper).
//!
//! [`TorClient`] bootstraps from the directory authority, builds circuits
//! with weighted path selection, opens streams (to exit destinations, to
//! relay directory services, and to hidden services over rendezvous
//! circuits), enforces circuit-level SENDME flow control, can emit cover
//! (DROP) cells, and runs the client side of the hidden-service rendezvous
//! protocol — including the end-to-end virtual hop.

use crate::cell::{Cell, CellCmd, RelayCell, RelayCmd, CELL_LEN, MAX_RELAY_DATA, PAYLOAD_LEN};
use crate::dir::{
    Consensus, DirMsg, Fingerprint, HsDescriptor, OnionAddr, RelayFlags, RelayInfo, SignedConsensus,
};
use crate::ports::DIR_PORT;
use crate::relay::{CIRC_WINDOW, SENDME_INCREMENT};
use crate::relay_crypto::{CircuitCrypto, LayerCrypto};
use crate::retry::{Backoff, BackoffPolicy, FailureCache};
use crate::stream_frame::{encode_frame, FrameAssembler};
use onion_crypto::aead::{seal as aead_seal, AeadKey};
use onion_crypto::hashsig::MerkleVerifyKey;
use onion_crypto::hmac::hkdf;
use onion_crypto::ntor;
use onion_crypto::x25519::StaticSecret;
use rand::Rng;
use simnet::node::TimerId;
use simnet::{ConnId, Ctx, NodeId, SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

// Recovery-path instruments: every one of these sits on a cold path (a
// failure, a retry, a timeout), so inline registry access is fine.
static T_CONSENSUS_RETRIES: telemetry::Counter =
    telemetry::Counter::new("tornet.client.consensus_retries");
static T_CIRC_REBUILDS: telemetry::Counter = telemetry::Counter::new("tornet.client.circ_rebuilds");
static T_BUILD_TIMEOUTS: telemetry::Counter =
    telemetry::Counter::new("tornet.client.build_timeouts");
static T_STREAM_TIMEOUTS: telemetry::Counter =
    telemetry::Counter::new("tornet.client.stream_timeouts");
static T_HS_RETRIES: telemetry::Counter = telemetry::Counter::new("tornet.client.hs_retries");
static T_FAILCACHE_BYPASS: telemetry::Counter =
    telemetry::Counter::new("tornet.client.failcache_bypass");
static T_RECOVER_MS: telemetry::Histo =
    telemetry::Histo::new("tornet.client.circ_time_to_recover_ms");

/// Timer-tag namespace reserved by the client component.
pub const CLIENT_TAG_BASE: u64 = 0x0200_0000_0000_0000;
const TAG_FETCH_RETRY: u64 = CLIENT_TAG_BASE + 1;
/// Per-category sub-namespaces under [`CLIENT_TAG_BASE`]; each holds a
/// slot/token in its low 28 bits.
const TAG_SPAN: u64 = 0x1000_0000;
const TAG_BUILD_TIMEOUT_BASE: u64 = CLIENT_TAG_BASE + 0x1000_0000;
const TAG_STREAM_TIMEOUT_BASE: u64 = CLIENT_TAG_BASE + 0x2000_0000;
const TAG_REBUILD_BASE: u64 = CLIENT_TAG_BASE + 0x3000_0000;
/// Introduction/HSDir retries per onion connection before giving up.
const MAX_HS_RETRIES: u32 = 3;

/// Handle to a client circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CircuitHandle(pub usize);

/// Where a stream should terminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamTarget {
    /// An external host:port, opened by the exit relay.
    Node(NodeId, u16),
    /// The terminal relay's own directory service.
    Dir,
    /// The hidden service at the far end of a rendezvous circuit.
    Hs(u16),
}

impl StreamTarget {
    fn encode(&self) -> Vec<u8> {
        match self {
            StreamTarget::Node(addr, port) => {
                let mut v = vec![0u8];
                v.extend_from_slice(&addr.0.to_be_bytes());
                v.extend_from_slice(&port.to_be_bytes());
                v
            }
            StreamTarget::Dir => vec![1u8],
            StreamTarget::Hs(port) => {
                let mut v = vec![2u8];
                v.extend_from_slice(&port.to_be_bytes());
                v
            }
        }
    }

    /// Parse from Begin data (used by the service side of rendezvous).
    pub fn decode(data: &[u8]) -> Option<StreamTarget> {
        match data.first()? {
            0 if data.len() == 7 => Some(StreamTarget::Node(
                NodeId(u32::from_be_bytes([data[1], data[2], data[3], data[4]])),
                u16::from_be_bytes([data[5], data[6]]),
            )),
            1 if data.len() == 1 => Some(StreamTarget::Dir),
            2 if data.len() == 3 => Some(StreamTarget::Hs(u16::from_be_bytes([data[1], data[2]]))),
            _ => None,
        }
    }
}

/// Events the client surfaces to its host.
#[derive(Debug)]
pub enum TorEvent {
    /// The verified consensus is available.
    ConsensusReady,
    /// A circuit finished building and is usable.
    CircuitReady(CircuitHandle),
    /// A circuit could not be built or was destroyed.
    CircuitClosed(CircuitHandle),
    /// A stream opened with [`TorClient::open_stream`] is connected.
    StreamConnected(CircuitHandle, u16),
    /// Stream data arrived.
    StreamData(CircuitHandle, u16, Vec<u8>),
    /// The far end closed a stream.
    StreamEnded(CircuitHandle, u16),
    /// The far end of a rendezvous circuit opened a stream toward us
    /// (hidden-service side). Respond with [`TorClient::respond_incoming`].
    IncomingStream(CircuitHandle, u16, u16),
    /// A control cell addressed to us that the client does not consume
    /// internally (hidden-service machinery: INTRODUCE2, INTRO_ESTABLISHED).
    ControlCell(CircuitHandle, RelayCmd, Vec<u8>),
    /// A directory response arrived on a dir stream.
    DirResponse(CircuitHandle, u16, DirMsg),
    /// `connect_onion` completed: the circuit now ends at the hidden
    /// service with end-to-end crypto.
    RendezvousReady(CircuitHandle),
    /// `connect_onion` failed (no descriptor, no intro points, ...).
    RendezvousFailed(CircuitHandle, String),
    /// A managed circuit (built with [`TorClient::build_circuit_managed`])
    /// that failed has been rebuilt on a fresh path: `(old, new)`. Emitted
    /// just before the new circuit's [`TorEvent::CircuitReady`].
    CircuitRebuilt(CircuitHandle, CircuitHandle),
}

enum StreamKind {
    App,
    Dir(FrameAssembler),
    Incoming,
}

struct ClientStream {
    kind: StreamKind,
    connected: bool,
    /// Frames queued before the stream connected.
    pending: Vec<Vec<u8>>,
    /// Connect-timeout timer (recovery mode only).
    timeout: Option<TimerId>,
}

struct BuildState {
    /// Index of the hop currently being created/extended.
    hop: usize,
    handshake: ntor::ClientHandshake,
}

struct ClientCircuit {
    path: Vec<RelayInfo>,
    conn: ConnId,
    circ_id: u32,
    crypto: CircuitCrypto,
    building: Option<BuildState>,
    ready: bool,
    alive: bool,
    streams: BTreeMap<u16, ClientStream>,
    package_window: i32,
    delivered_since_sendme: i32,
    queued_data: VecDeque<(u16, Vec<u8>)>,
    /// Outstanding e2e handshake awaiting RENDEZVOUS2.
    pending_e2e: Option<ntor::ClientHandshake>,
    /// Index into `hs_conns` if this circuit belongs to an onion connection.
    hs_conn: Option<usize>,
    /// Build-timeout timer (recovery mode only).
    build_timer: Option<TimerId>,
    /// Present on circuits the client rebuilds automatically on failure.
    managed: Option<ManagedCirc>,
}

/// Rebuild state carried by a managed circuit across its incarnations.
struct ManagedCirc {
    req: TerminalReq,
    backoff: Backoff,
    /// When the previous incarnation died (drives the time-to-recover
    /// histogram); cleared once a rebuild succeeds.
    failed_at: Option<SimTime>,
    /// Slot of the incarnation that most recently failed, if any.
    origin: Option<usize>,
}

/// Knobs of the client's failure-recovery machinery. Recovery is off by
/// default — [`TorClient::enable_recovery`] switches it on — so programs
/// that never opt in keep their exact pre-recovery event and RNG streams.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// A circuit still building after this long is abandoned (and the hop
    /// being extended is recorded in the failure cache).
    pub build_timeout: SimDuration,
    /// A stream not Connected after this long is torn down.
    pub stream_timeout: SimDuration,
    /// Backoff between rebuild attempts of a managed circuit.
    pub rebuild_backoff: BackoffPolicy,
    /// How long a failed relay stays avoided during path selection.
    pub failure_decay: SimDuration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            build_timeout: SimDuration::from_secs(8),
            stream_timeout: SimDuration::from_secs(10),
            rebuild_backoff: BackoffPolicy::new(
                SimDuration::from_millis(300),
                SimDuration::from_secs(10),
            )
            .with_max_attempts(12),
            failure_decay: SimDuration::from_secs(30),
        }
    }
}

struct LinkState {
    established: bool,
    queued: Vec<Cell>,
    next_circ_id: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HsPhase {
    Starting,
    Waiting,
    Introduced,
    Done,
    Failed,
}

struct HsConn {
    addr: OnionAddr,
    pow_bits: u8,
    rendezvous_circ: usize,
    hsdir_circ: Option<usize>,
    intro_circ: Option<usize>,
    cookie: [u8; 20],
    rp_established: bool,
    est_sent: bool,
    desc_requested: bool,
    desc: Option<HsDescriptor>,
    phase: HsPhase,
    /// Failed introduction attempts so far (capped at [`MAX_HS_RETRIES`]).
    intro_retries: u32,
    /// Failed HSDir fetch circuits so far.
    hsdir_retries: u32,
    /// Intro points already tried; retries prefer untried ones.
    used_intros: Vec<Fingerprint>,
}

/// What a path must satisfy at its terminal hop.
#[derive(Debug, Clone, Copy)]
pub enum TerminalReq {
    /// Any relay.
    Any,
    /// An exit whose policy allows this destination.
    ExitTo(NodeId, u16),
    /// A specific relay.
    Specific(Fingerprint),
    /// A relay with the HSDir flag.
    HsDir,
    /// A relay with the Bento flag.
    Bento,
}

/// The client component.
pub struct TorClient {
    authority_addr: NodeId,
    authority_key: MerkleVerifyKey,
    /// A relay this client must never include in its paths — the co-resident
    /// relay when this client is a Bento box's onion proxy (a node cannot
    /// hold both ends of a loopback OR link).
    excluded: Option<Fingerprint>,
    consensus: Option<Consensus>,
    dir_conn: Option<ConnId>,
    links: BTreeMap<ConnId, LinkState>,
    links_by_peer: BTreeMap<NodeId, ConnId>,
    circuits: Vec<ClientCircuit>,
    circ_lookup: BTreeMap<(ConnId, u32), usize>,
    hs_conns: Vec<HsConn>,
    next_stream_id: u16,
    events: VecDeque<TorEvent>,
    /// Consensus-fetch retry schedule (jittered exponential backoff).
    fetch_backoff: Backoff,
    /// Consensus-fetch retries performed (also mirrored to telemetry).
    consensus_retries: u64,
    /// `Some` once [`TorClient::enable_recovery`] has been called.
    recovery: Option<RecoveryConfig>,
    /// Relays that recently failed us; avoided during path selection until
    /// their entries decay.
    failures: FailureCache,
    /// Managed circuits waiting out a rebuild backoff, keyed by timer token.
    pending_rebuilds: BTreeMap<u64, ManagedCirc>,
    next_rebuild_token: u64,
}

impl TorClient {
    /// A client that trusts the given directory authority.
    pub fn new(authority_addr: NodeId, authority_key: MerkleVerifyKey) -> TorClient {
        TorClient {
            authority_addr,
            authority_key,
            excluded: None,
            consensus: None,
            dir_conn: None,
            links: BTreeMap::new(),
            links_by_peer: BTreeMap::new(),
            circuits: Vec::new(),
            circ_lookup: BTreeMap::new(),
            hs_conns: Vec::new(),
            next_stream_id: 1,
            events: VecDeque::new(),
            fetch_backoff: Backoff::new(Self::FETCH_BACKOFF),
            consensus_retries: 0,
            recovery: None,
            failures: FailureCache::new(SimDuration::from_secs(30)),
            pending_rebuilds: BTreeMap::new(),
            next_rebuild_token: 0,
        }
    }

    /// Consensus-fetch retry schedule: the first retry lands around the old
    /// fixed 200 ms delay, then backs off toward 5 s.
    const FETCH_BACKOFF: BackoffPolicy = BackoffPolicy {
        base: SimDuration(200_000_000),  // 200 ms
        cap: SimDuration(5_000_000_000), // 5 s
        max_attempts: 0,
    };

    /// Exclude a relay (by fingerprint) from every path this client builds;
    /// used by Bento boxes to keep their onion proxy off their own relay.
    pub fn exclude_relay(&mut self, fp: Fingerprint) {
        self.excluded = Some(fp);
    }

    /// Switch on failure recovery: circuit build and stream connect
    /// timeouts, the recently-failed relay cache, and automatic rebuild of
    /// managed circuits. Off by default so recovery-oblivious programs keep
    /// their exact event streams.
    pub fn enable_recovery(&mut self) {
        self.enable_recovery_with(RecoveryConfig::default());
    }

    /// [`TorClient::enable_recovery`] with explicit knobs.
    pub fn enable_recovery_with(&mut self, cfg: RecoveryConfig) {
        self.failures = FailureCache::new(cfg.failure_decay);
        self.recovery = Some(cfg);
    }

    /// Consensus-fetch retries performed so far.
    pub fn consensus_retries(&self) -> u64 {
        self.consensus_retries
    }

    /// Drop all volatile state, as a host crash would: consensus, links,
    /// circuits, onion connections, queued events. Configuration (authority,
    /// trust key, exclusions, recovery knobs) survives, like files on disk.
    /// The simulator suppresses the old incarnation's timers, so stale tags
    /// can never reach the reborn client.
    pub fn reset(&mut self) {
        self.consensus = None;
        self.dir_conn = None;
        self.links.clear();
        self.links_by_peer.clear();
        self.circuits.clear();
        self.circ_lookup.clear();
        self.hs_conns.clear();
        self.next_stream_id = 1;
        self.events.clear();
        self.fetch_backoff.reset();
        self.failures.clear();
        self.pending_rebuilds.clear();
    }

    /// Fetch (and keep retrying for) the consensus.
    pub fn bootstrap(&mut self, ctx: &mut Ctx<'_>) {
        if self.dir_conn.is_some() || self.consensus.is_some() {
            return;
        }
        let conn = ctx.connect(self.authority_addr, DIR_PORT);
        ctx.send(conn, DirMsg::FetchConsensus.encode());
        self.dir_conn = Some(conn);
    }

    /// The verified consensus, once ready.
    pub fn consensus(&self) -> Option<&Consensus> {
        self.consensus.as_ref()
    }

    /// Drain pending events.
    pub fn poll_events(&mut self) -> Vec<TorEvent> {
        self.events.drain(..).collect()
    }

    /// Whether a circuit is ready for streams.
    pub fn is_ready(&self, circ: CircuitHandle) -> bool {
        self.circuits
            .get(circ.0)
            .map(|c| c.ready && c.alive)
            .unwrap_or(false)
    }

    /// Number of hops (including any virtual hop) on a circuit.
    pub fn hops(&self, circ: CircuitHandle) -> usize {
        self.circuits
            .get(circ.0)
            .map(|c| c.crypto.len())
            .unwrap_or(0)
    }

    /// Fingerprints of the relays on a circuit's path, guard first
    /// (inspection for tests and experiments; empty for unknown handles).
    pub fn circuit_path(&self, circ: CircuitHandle) -> Vec<Fingerprint> {
        self.circuits
            .get(circ.0)
            .map(|c| c.path.iter().map(|r| r.fingerprint).collect())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Path selection.
    // ------------------------------------------------------------------

    /// Choose a 3-hop path meeting `req` at the terminal position. Relays
    /// are weighted by bandwidth; hops are distinct.
    pub fn select_path(&self, ctx: &mut Ctx<'_>, req: TerminalReq) -> Option<Vec<Fingerprint>> {
        self.select_path_avoiding(ctx, req, &[])
    }

    /// Like [`TorClient::select_path`], additionally refusing every relay
    /// in `avoid` at every position — the client-side half of §9.4's
    /// geographical avoidance: the caller maps regions to fingerprints
    /// (e.g. all relays in a jurisdiction) and no chosen path touches them.
    /// Returns `None` when no compliant path exists (fail closed).
    pub fn select_path_avoiding(
        &self,
        ctx: &mut Ctx<'_>,
        req: TerminalReq,
        avoid: &[Fingerprint],
    ) -> Option<Vec<Fingerprint>> {
        let cons = self.consensus.as_ref()?;
        // The exclusion only applies to the *guard* position: a client that
        // dialed its own co-resident relay's OR port would hold both ends
        // of a loopback link. Later hops at the own relay are reached over
        // ordinary remote links and are fine (a function may even target
        // its own box when composing).
        let excluded = self.excluded;
        let avoided = |r: &RelayInfo| avoid.contains(&r.fingerprint);
        let guard_ok = |r: &RelayInfo| excluded.map(|x| r.fingerprint != x).unwrap_or(true);
        let rng = ctx.rng();
        let exit = match req {
            TerminalReq::Any => cons.pick_weighted(rng, RelayFlags::FAST, |r| !avoided(r))?,
            TerminalReq::ExitTo(addr, port) => cons.pick_weighted(rng, RelayFlags::EXIT, |r| {
                !avoided(r) && r.exit_policy.allows(addr, port)
            })?,
            TerminalReq::Specific(fp) => {
                let r = cons.relay(&fp)?;
                if avoided(r) {
                    return None;
                }
                r
            }
            TerminalReq::HsDir => cons.pick_weighted(rng, RelayFlags::HSDIR, |r| !avoided(r))?,
            TerminalReq::Bento => cons.pick_weighted(rng, RelayFlags::BENTO, |r| {
                !avoided(r) && r.bento_port.is_some()
            })?,
        };
        let exit_fp = exit.fingerprint;
        let guard = cons.pick_weighted(rng, RelayFlags::GUARD, |r| {
            !avoided(r) && guard_ok(r) && r.fingerprint != exit_fp
        })?;
        let guard_fp = guard.fingerprint;
        let middle = cons.pick_weighted(rng, RelayFlags::FAST, |r| {
            !avoided(r) && r.fingerprint != exit_fp && r.fingerprint != guard_fp
        })?;
        Some(vec![guard_fp, middle.fingerprint, exit_fp])
    }

    /// Path selection that avoids recently-failed relays, failing *open*:
    /// if no path exists without them (small networks under heavy churn),
    /// retry ignoring the failure cache rather than stalling forever.
    fn select_path_resilient(
        &self,
        ctx: &mut Ctx<'_>,
        req: TerminalReq,
    ) -> Option<Vec<Fingerprint>> {
        let failed = self.failures.snapshot(ctx.now());
        if failed.is_empty() {
            return self.select_path(ctx, req);
        }
        match self.select_path_avoiding(ctx, req, &failed) {
            Some(path) => Some(path),
            None => {
                T_FAILCACHE_BYPASS.inc();
                self.select_path(ctx, req)
            }
        }
    }

    // ------------------------------------------------------------------
    // Circuits.
    // ------------------------------------------------------------------

    /// Begin building a circuit along `path`. Emits
    /// [`TorEvent::CircuitReady`] when complete.
    pub fn build_circuit(
        &mut self,
        ctx: &mut Ctx<'_>,
        path: Vec<Fingerprint>,
    ) -> Option<CircuitHandle> {
        let cons = self.consensus.as_ref()?;
        let mut infos = Vec::with_capacity(path.len());
        for fp in &path {
            infos.push(cons.relay(fp)?.clone());
        }
        let guard = infos.first()?.clone();
        // Reuse or open the guard link.
        let conn = match self.links_by_peer.get(&guard.addr) {
            Some(&c) => c,
            None => {
                let c = ctx.connect(guard.addr, guard.or_port);
                self.links.insert(
                    c,
                    LinkState {
                        established: false,
                        queued: Vec::new(),
                        next_circ_id: 1,
                    },
                );
                self.links_by_peer.insert(guard.addr, c);
                c
            }
        };
        let circ_id = {
            // bento-lint: allow(BL005) -- the link was found or inserted in the match above
            let link = self.links.get_mut(&conn).expect("link exists");
            let id = link.next_circ_id;
            link.next_circ_id += 2;
            id
        };
        let (handshake, onionskin) =
            ntor::client_begin(ctx.rng(), guard.fingerprint, guard.onion_key);
        let slot = self.circuits.len();
        self.circuits.push(ClientCircuit {
            path: infos,
            conn,
            circ_id,
            crypto: CircuitCrypto::new(),
            building: Some(BuildState { hop: 0, handshake }),
            ready: false,
            alive: true,
            streams: BTreeMap::new(),
            package_window: CIRC_WINDOW,
            delivered_since_sendme: 0,
            queued_data: VecDeque::new(),
            pending_e2e: None,
            hs_conn: None,
            build_timer: None,
            managed: None,
        });
        self.circ_lookup.insert((conn, circ_id), slot);
        if let Some(rc) = self.recovery {
            let t = ctx.set_timer(rc.build_timeout, TAG_BUILD_TIMEOUT_BASE + slot as u64);
            self.circuits[slot].build_timer = Some(t);
        }
        let create = Cell::with_payload(circ_id, CellCmd::Create, &onionskin);
        self.send_cell(ctx, conn, create);
        Some(CircuitHandle(slot))
    }

    /// Build a circuit whose terminal hop satisfies `req`, selecting a path
    /// that avoids recently-failed relays — and keep it alive: if it fails
    /// to build or dies later, the client automatically rebuilds it on a
    /// fresh path after a jittered exponential backoff, emitting
    /// [`TorEvent::CircuitRebuilt`] when the replacement is ready. Requires
    /// [`TorClient::enable_recovery`].
    pub fn build_circuit_managed(
        &mut self,
        ctx: &mut Ctx<'_>,
        req: TerminalReq,
    ) -> Option<CircuitHandle> {
        let rc = self.recovery?;
        let path = self.select_path_resilient(ctx, req)?;
        let handle = self.build_circuit(ctx, path)?;
        self.circuits[handle.0].managed = Some(ManagedCirc {
            req,
            backoff: Backoff::new(rc.rebuild_backoff),
            failed_at: None,
            origin: None,
        });
        Some(handle)
    }

    /// Tear down a circuit.
    pub fn destroy_circuit(&mut self, ctx: &mut Ctx<'_>, circ: CircuitHandle) {
        let Some(c) = self.circuits.get_mut(circ.0) else {
            return;
        };
        if !c.alive {
            return;
        }
        c.alive = false;
        let destroy = Cell::new(c.circ_id, CellCmd::Destroy);
        let conn = c.conn;
        self.circ_lookup
            .remove(&(conn, self.circuits[circ.0].circ_id));
        self.send_cell(ctx, conn, destroy);
    }

    // ------------------------------------------------------------------
    // Streams.
    // ------------------------------------------------------------------

    /// Open a stream on a ready circuit. Returns the stream id; watch for
    /// [`TorEvent::StreamConnected`].
    pub fn open_stream(
        &mut self,
        ctx: &mut Ctx<'_>,
        circ: CircuitHandle,
        target: StreamTarget,
    ) -> Option<u16> {
        if !self.is_ready(circ) {
            return None;
        }
        let stream_id = self.next_stream_id;
        self.next_stream_id = self.next_stream_id.wrapping_add(1).max(1);
        let kind = match target {
            StreamTarget::Dir => StreamKind::Dir(FrameAssembler::new()),
            _ => StreamKind::App,
        };
        let timeout = self.recovery.map(|rc| {
            let tag = TAG_STREAM_TIMEOUT_BASE + ((circ.0 as u64) << 16 | stream_id as u64);
            ctx.set_timer(rc.stream_timeout, tag)
        });
        self.circuits[circ.0].streams.insert(
            stream_id,
            ClientStream {
                kind,
                connected: false,
                pending: Vec::new(),
                timeout,
            },
        );
        let cmd = if matches!(target, StreamTarget::Dir) {
            RelayCmd::BeginDir
        } else {
            RelayCmd::Begin
        };
        let data = if matches!(target, StreamTarget::Dir) {
            vec![]
        } else {
            target.encode()
        };
        self.send_relay_last(ctx, circ.0, RelayCell::new(cmd, stream_id, data));
        Some(stream_id)
    }

    /// Send application bytes on a stream (chunked into data cells, subject
    /// to the circuit window).
    pub fn send_stream(
        &mut self,
        ctx: &mut Ctx<'_>,
        circ: CircuitHandle,
        stream: u16,
        data: &[u8],
    ) {
        for chunk in data.chunks(MAX_RELAY_DATA) {
            self.send_data_chunk(ctx, circ.0, stream, chunk);
        }
    }

    /// Close a stream.
    pub fn close_stream(&mut self, ctx: &mut Ctx<'_>, circ: CircuitHandle, stream: u16) {
        let Some(c) = self.circuits.get_mut(circ.0) else {
            return;
        };
        if let Some(s) = c.streams.remove(&stream) {
            if let Some(t) = s.timeout {
                ctx.cancel_timer(t);
            }
            self.send_relay_last(ctx, circ.0, RelayCell::new(RelayCmd::End, stream, vec![]));
        }
    }

    /// Accept (or refuse) an incoming stream on a rendezvous circuit.
    pub fn respond_incoming(
        &mut self,
        ctx: &mut Ctx<'_>,
        circ: CircuitHandle,
        stream: u16,
        accept: bool,
    ) {
        if accept {
            if let Some(c) = self.circuits.get_mut(circ.0) {
                if let Some(s) = c.streams.get_mut(&stream) {
                    s.connected = true;
                }
            }
            self.send_relay_last(
                ctx,
                circ.0,
                RelayCell::new(RelayCmd::Connected, stream, vec![]),
            );
        } else {
            if let Some(c) = self.circuits.get_mut(circ.0) {
                c.streams.remove(&stream);
            }
            self.send_relay_last(ctx, circ.0, RelayCell::new(RelayCmd::End, stream, vec![]));
        }
    }

    /// Send a cover (DROP) cell the full length of the circuit: to an
    /// observer it is indistinguishable from data.
    pub fn send_drop(&mut self, ctx: &mut Ctx<'_>, circ: CircuitHandle) {
        if self.is_ready(circ) {
            self.send_relay_last(ctx, circ.0, RelayCell::new(RelayCmd::Drop, 0, vec![]));
        }
    }

    /// Send a control relay cell sealed for the terminal hop.
    pub fn send_control(
        &mut self,
        ctx: &mut Ctx<'_>,
        circ: CircuitHandle,
        cmd: RelayCmd,
        data: Vec<u8>,
    ) {
        self.send_relay_last(ctx, circ.0, RelayCell::new(cmd, 0, data));
    }

    /// Open a dir stream on `circ` and send one directory request; the
    /// response arrives as [`TorEvent::DirResponse`].
    pub fn dir_request(
        &mut self,
        ctx: &mut Ctx<'_>,
        circ: CircuitHandle,
        msg: DirMsg,
    ) -> Option<u16> {
        let stream = self.open_stream(ctx, circ, StreamTarget::Dir)?;
        if let Some(c) = self.circuits.get_mut(circ.0) {
            if let Some(s) = c.streams.get_mut(&stream) {
                s.pending.push(encode_frame(&msg.encode()));
            }
        }
        Some(stream)
    }

    /// Append a server-side end-to-end hop (hidden service use).
    pub fn push_virtual_hop_server(&mut self, circ: CircuitHandle, keys: &ntor::CircuitKeys) {
        if let Some(c) = self.circuits.get_mut(circ.0) {
            c.crypto.push_hop(LayerCrypto::relay_side(keys));
        }
    }

    // ------------------------------------------------------------------
    // Hidden-service client: connect to an onion address.
    // ------------------------------------------------------------------

    /// Start connecting to a hidden service. Returns the handle of the
    /// rendezvous circuit; wait for [`TorEvent::RendezvousReady`] before
    /// opening streams on it with [`StreamTarget::Hs`].
    pub fn connect_onion(&mut self, ctx: &mut Ctx<'_>, addr: OnionAddr) -> Option<CircuitHandle> {
        self.connect_onion_with_pow(ctx, addr, 0)
    }

    /// Like [`TorClient::connect_onion`], attaching `bits` of hashcash over
    /// the rendezvous cookie to the introduction — for services running the
    /// §9.4 DDoS defense.
    pub fn connect_onion_with_pow(
        &mut self,
        ctx: &mut Ctx<'_>,
        addr: OnionAddr,
        pow_bits: u8,
    ) -> Option<CircuitHandle> {
        // Rendezvous circuit: 3 arbitrary hops.
        let rp_path = self.select_path(ctx, TerminalReq::Any)?;
        let rendezvous = self.build_circuit(ctx, rp_path)?;
        // HSDir circuit for the descriptor: rendezvous-hash to the same
        // HSDir the service published to.
        let hsdir_fp = crate::hs::responsible_hsdir(self.consensus.as_ref()?, &addr)?;
        let dir_path = self.select_path(ctx, TerminalReq::Specific(hsdir_fp))?;
        let hsdir = self.build_circuit(ctx, dir_path)?;
        let mut cookie = [0u8; 20];
        ctx.rng().fill(&mut cookie);
        let idx = self.hs_conns.len();
        self.hs_conns.push(HsConn {
            addr,
            pow_bits,
            rendezvous_circ: rendezvous.0,
            hsdir_circ: Some(hsdir.0),
            intro_circ: None,
            cookie,
            rp_established: false,
            est_sent: false,
            desc_requested: false,
            desc: None,
            phase: HsPhase::Starting,
            intro_retries: 0,
            hsdir_retries: 0,
            used_intros: Vec::new(),
        });
        self.circuits[rendezvous.0].hs_conn = Some(idx);
        self.circuits[hsdir.0].hs_conn = Some(idx);
        Some(rendezvous)
    }

    // ------------------------------------------------------------------
    // Host-delegated callbacks.
    // ------------------------------------------------------------------

    /// Delegate of [`simnet::Node::on_conn_established`].
    pub fn handle_conn_established(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) -> bool {
        if Some(conn) == self.dir_conn {
            return true;
        }
        if let Some(link) = self.links.get_mut(&conn) {
            link.established = true;
            let queued = std::mem::take(&mut link.queued);
            for cell in queued {
                let mut wire = ctx.take_buf(CELL_LEN);
                cell.encode_into(&mut wire);
                ctx.send(conn, wire);
            }
            return true;
        }
        false
    }

    /// Delegate of [`simnet::Node::on_msg`].
    pub fn handle_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) -> bool {
        if Some(conn) == self.dir_conn {
            if let Ok(DirMsg::ConsensusResp(bytes)) = DirMsg::decode(&msg) {
                if bytes.is_empty() {
                    // Authority not ready: retry after a jittered exponential
                    // backoff (starts near the old fixed 200 ms, caps at 5 s).
                    self.schedule_fetch_retry(ctx);
                } else if let Ok(sc) = SignedConsensus::decode(&bytes) {
                    if let Some(cons) = sc.verify(&self.authority_key) {
                        self.consensus = Some(cons);
                        self.fetch_backoff.reset();
                        if let Some(c) = self.dir_conn.take() {
                            ctx.close(c);
                        }
                        self.events.push_back(TorEvent::ConsensusReady);
                    }
                }
            }
            return true;
        }
        if self.links.contains_key(&conn) {
            if let Some(cell) = Cell::decode(&msg) {
                ctx.recycle_buf(msg);
                self.handle_cell(ctx, conn, cell);
            }
            return true;
        }
        false
    }

    /// Delegate of [`simnet::Node::on_conn_closed`].
    pub fn handle_conn_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) -> bool {
        if Some(conn) == self.dir_conn {
            self.dir_conn = None;
            if self.consensus.is_none() {
                // The authority link died before we got a consensus (crash,
                // partition): back off and redial.
                self.schedule_fetch_retry(ctx);
            }
            return true;
        }
        if self.links.remove(&conn).is_some() {
            self.links_by_peer.retain(|_, c| *c != conn);
            let mut slots: Vec<usize> = self
                .circ_lookup
                .iter()
                .filter(|((c, _), _)| *c == conn)
                .map(|(_, &s)| s)
                .collect();
            // Sorted by slot so teardown order (which feeds the shared RNG)
            // is the circuit-allocation order, not the map's key order.
            slots.sort_unstable();
            for slot in slots {
                if self.recovery.is_some() {
                    // The guard link died under this circuit: remember the
                    // guard so rebuilds steer around it while it decays.
                    if let Some(fp) = self.circuits[slot].path.first().map(|r| r.fingerprint) {
                        self.failures.record(fp, ctx.now());
                    }
                }
                self.circuit_closed(ctx, slot);
            }
            return true;
        }
        false
    }

    /// Delegate of [`simnet::Node::on_timer`]; claims client-namespace tags.
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) -> bool {
        if tag == TAG_FETCH_RETRY {
            if self.consensus.is_some() {
                return true;
            }
            match self.dir_conn {
                Some(conn) => {
                    ctx.send(conn, DirMsg::FetchConsensus.encode());
                }
                None => self.bootstrap(ctx),
            }
            return true;
        }
        if (TAG_BUILD_TIMEOUT_BASE..TAG_BUILD_TIMEOUT_BASE + TAG_SPAN).contains(&tag) {
            self.fire_build_timeout(ctx, (tag - TAG_BUILD_TIMEOUT_BASE) as usize);
            return true;
        }
        if (TAG_STREAM_TIMEOUT_BASE..TAG_STREAM_TIMEOUT_BASE + TAG_SPAN).contains(&tag) {
            let sub = tag - TAG_STREAM_TIMEOUT_BASE;
            self.fire_stream_timeout(ctx, (sub >> 16) as usize, (sub & 0xFFFF) as u16);
            return true;
        }
        if (TAG_REBUILD_BASE..TAG_REBUILD_BASE + TAG_SPAN).contains(&tag) {
            self.fire_rebuild(ctx, tag - TAG_REBUILD_BASE);
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // Recovery internals.
    // ------------------------------------------------------------------

    /// Arm the consensus-fetch retry timer and count the retry. With
    /// recovery on, delays follow a jittered exponential backoff; without
    /// it, the legacy fixed 200 ms retry — which draws nothing from the
    /// shared RNG — so recovery-oblivious programs keep their exact event
    /// and RNG streams.
    fn schedule_fetch_retry(&mut self, ctx: &mut Ctx<'_>) {
        let delay = if self.recovery.is_some() {
            self.fetch_backoff
                .next_delay(ctx.rng())
                .unwrap_or(Self::FETCH_BACKOFF.cap)
        } else {
            SimDuration::from_millis(200)
        };
        ctx.set_timer(delay, TAG_FETCH_RETRY);
        self.consensus_retries += 1;
        T_CONSENSUS_RETRIES.inc();
    }

    /// A circuit took longer than `build_timeout` to finish building: blame
    /// the hop being extended, tear the circuit down, and (if managed) let
    /// `circuit_closed` schedule the rebuild.
    fn fire_build_timeout(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let Some(c) = self.circuits.get_mut(slot) else {
            return;
        };
        c.build_timer = None;
        if !c.alive || c.ready {
            return;
        }
        T_BUILD_TIMEOUTS.inc();
        if self.recovery.is_some() {
            let blamed = c
                .building
                .as_ref()
                .and_then(|b| c.path.get(b.hop))
                .map(|r| r.fingerprint);
            if let Some(fp) = blamed {
                self.failures.record(fp, ctx.now());
            }
        }
        self.destroy_circuit(ctx, CircuitHandle(slot));
        self.circuit_closed(ctx, slot);
    }

    /// A stream never reached Connected within `stream_timeout`: end it.
    fn fire_stream_timeout(&mut self, ctx: &mut Ctx<'_>, slot: usize, stream: u16) {
        let Some(c) = self.circuits.get_mut(slot) else {
            return;
        };
        let timed_out = c
            .streams
            .get(&stream)
            .map(|s| !s.connected)
            .unwrap_or(false);
        if !timed_out {
            return;
        }
        c.streams.remove(&stream);
        T_STREAM_TIMEOUTS.inc();
        self.send_relay_last(ctx, slot, RelayCell::new(RelayCmd::End, stream, vec![]));
        self.emit_or_hs(
            ctx,
            slot,
            TorEvent::StreamEnded(CircuitHandle(slot), stream),
        );
    }

    /// Park a managed circuit's rebuild behind its next backoff delay.
    fn schedule_rebuild(&mut self, ctx: &mut Ctx<'_>, mut managed: ManagedCirc) {
        let Some(delay) = managed.backoff.next_delay(ctx.rng()) else {
            return; // attempts exhausted: the circuit stays down
        };
        let token = self.next_rebuild_token;
        self.next_rebuild_token += 1;
        self.pending_rebuilds.insert(token, managed);
        ctx.set_timer(delay, TAG_REBUILD_BASE + token);
    }

    /// A rebuild backoff expired: try building the replacement circuit.
    fn fire_rebuild(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some(managed) = self.pending_rebuilds.remove(&token) else {
            return;
        };
        if self.consensus.is_none() {
            // Still re-bootstrapping; try again after another backoff.
            self.schedule_rebuild(ctx, managed);
            return;
        }
        let req = managed.req;
        let attempt = self
            .select_path_resilient(ctx, req)
            .and_then(|path| self.build_circuit(ctx, path));
        match attempt {
            Some(handle) => {
                self.circuits[handle.0].managed = Some(managed);
            }
            None => self.schedule_rebuild(ctx, managed),
        }
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn send_cell(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, cell: Cell) {
        if let Some(link) = self.links.get_mut(&conn) {
            if !link.established {
                link.queued.push(cell);
                return;
            }
        }
        let mut wire = ctx.take_buf(CELL_LEN);
        cell.encode_into(&mut wire);
        ctx.send(conn, wire);
    }

    fn send_relay_last(&mut self, ctx: &mut Ctx<'_>, slot: usize, rc: RelayCell) {
        self.send_relay_last_payload(ctx, slot, rc.encode_payload());
    }

    fn send_relay_last_payload(
        &mut self,
        ctx: &mut Ctx<'_>,
        slot: usize,
        mut payload: [u8; PAYLOAD_LEN],
    ) {
        let Some(c) = self.circuits.get_mut(slot) else {
            return;
        };
        if !c.alive || c.crypto.is_empty() {
            return;
        }
        c.crypto.seal_for_last(&mut payload);
        let cell = Cell {
            circ_id: c.circ_id,
            cmd: CellCmd::Relay,
            payload,
        };
        let conn = c.conn;
        self.send_cell(ctx, conn, cell);
    }

    /// Send a control relay cell sealed for a specific hop (e.g. a
    /// RENDEZVOUS1 to the penultimate hop of a circuit that already has a
    /// virtual hop).
    pub fn send_control_at(
        &mut self,
        ctx: &mut Ctx<'_>,
        circ: CircuitHandle,
        hop: usize,
        cmd: RelayCmd,
        data: Vec<u8>,
    ) {
        self.send_relay_at(ctx, circ.0, hop, RelayCell::new(cmd, 0, data));
    }

    fn send_relay_at(&mut self, ctx: &mut Ctx<'_>, slot: usize, hop: usize, rc: RelayCell) {
        let Some(c) = self.circuits.get_mut(slot) else {
            return;
        };
        if !c.alive || hop >= c.crypto.len() {
            return;
        }
        let mut payload = rc.encode_payload();
        c.crypto.seal_for_hop(hop, &mut payload);
        let cell = Cell {
            circ_id: c.circ_id,
            cmd: CellCmd::Relay,
            payload,
        };
        let conn = c.conn;
        self.send_cell(ctx, conn, cell);
    }

    /// Package borrowed stream bytes into one DATA cell; bytes are only
    /// copied to the heap when the package window is closed and the chunk
    /// must be queued.
    fn send_data_chunk(&mut self, ctx: &mut Ctx<'_>, slot: usize, stream: u16, chunk: &[u8]) {
        {
            let Some(c) = self.circuits.get_mut(slot) else {
                return;
            };
            if c.package_window <= 0 {
                c.queued_data.push_back((stream, chunk.to_vec()));
                return;
            }
            c.package_window -= 1;
        }
        let payload = RelayCell::encode_payload_from(RelayCmd::Data, stream, chunk);
        self.send_relay_last_payload(ctx, slot, payload);
    }

    fn flush_queued_data(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        loop {
            let item = {
                let Some(c) = self.circuits.get_mut(slot) else {
                    return;
                };
                if c.package_window <= 0 {
                    return;
                }
                match c.queued_data.pop_front() {
                    Some(x) => {
                        c.package_window -= 1;
                        x
                    }
                    None => return,
                }
            };
            self.send_relay_last(ctx, slot, RelayCell::new(RelayCmd::Data, item.0, item.1));
        }
    }

    fn handle_cell(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, mut cell: Cell) {
        let Some(&slot) = self.circ_lookup.get(&(conn, cell.circ_id)) else {
            return;
        };
        match cell.cmd {
            CellCmd::Created => {
                let reply = cell.payload[..ntor::REPLY_LEN].to_vec();
                self.handle_hop_complete(ctx, slot, &reply);
            }
            CellCmd::Relay => {
                let recognized = self.circuits[slot].crypto.unwrap_inbound(&mut cell.payload);
                match recognized {
                    Some(hop) => {
                        if let Some(rc) = RelayCell::parse_payload(&cell.payload) {
                            self.handle_inbound_relay(ctx, slot, hop, rc);
                        }
                    }
                    None => {
                        // Unrecognized backward cell: integrity violation.
                        self.destroy_circuit(ctx, CircuitHandle(slot));
                        self.circuit_closed(ctx, slot);
                    }
                }
            }
            CellCmd::Destroy => {
                self.circuit_closed(ctx, slot);
            }
            CellCmd::Create | CellCmd::Padding => {}
        }
    }

    /// CREATED or EXTENDED completed hop `building.hop`.
    fn handle_hop_complete(&mut self, ctx: &mut Ctx<'_>, slot: usize, reply: &[u8]) {
        let Some(build) = self.circuits[slot].building.take() else {
            return;
        };
        let Ok(keys) = ntor::client_finish(&build.handshake, reply) else {
            self.destroy_circuit(ctx, CircuitHandle(slot));
            self.circuit_closed(ctx, slot);
            return;
        };
        self.circuits[slot]
            .crypto
            .push_hop(LayerCrypto::client_side(&keys));
        let next_hop = build.hop + 1;
        if next_hop < self.circuits[slot].path.len() {
            // Extend to the next relay.
            let next = self.circuits[slot].path[next_hop].clone();
            let (handshake, onionskin) =
                ntor::client_begin(ctx.rng(), next.fingerprint, next.onion_key);
            self.circuits[slot].building = Some(BuildState {
                hop: next_hop,
                handshake,
            });
            let mut data = Vec::with_capacity(26 + onionskin.len());
            data.extend_from_slice(&next.fingerprint);
            data.extend_from_slice(&next.addr.0.to_be_bytes());
            data.extend_from_slice(&next.or_port.to_be_bytes());
            data.extend_from_slice(&onionskin);
            self.send_relay_last(ctx, slot, RelayCell::new(RelayCmd::Extend, 0, data));
        } else {
            self.circuits[slot].ready = true;
            if let Some(t) = self.circuits[slot].build_timer.take() {
                ctx.cancel_timer(t);
            }
            // A managed circuit coming up: if this is a rebuild, record the
            // recovery and announce old → new before CircuitReady.
            let mut rebuilt_from = None;
            if let Some(m) = self.circuits[slot].managed.as_mut() {
                m.backoff.reset();
                rebuilt_from = m.origin.take();
                if let Some(t0) = m.failed_at.take() {
                    T_RECOVER_MS.record((ctx.now() - t0).as_millis());
                }
            }
            if let Some(old) = rebuilt_from {
                T_CIRC_REBUILDS.inc();
                self.emit_or_hs(
                    ctx,
                    slot,
                    TorEvent::CircuitRebuilt(CircuitHandle(old), CircuitHandle(slot)),
                );
            }
            self.emit_or_hs(ctx, slot, TorEvent::CircuitReady(CircuitHandle(slot)));
        }
    }

    fn handle_inbound_relay(&mut self, ctx: &mut Ctx<'_>, slot: usize, _hop: usize, rc: RelayCell) {
        match rc.cmd {
            RelayCmd::Extended => {
                self.handle_hop_complete(ctx, slot, &rc.data);
            }
            RelayCmd::Connected => {
                let mut flush = Vec::new();
                let mut timer = None;
                if let Some(s) = self.circuits[slot].streams.get_mut(&rc.stream_id) {
                    s.connected = true;
                    flush = std::mem::take(&mut s.pending);
                    timer = s.timeout.take();
                }
                if let Some(t) = timer {
                    ctx.cancel_timer(t);
                }
                for frame in flush {
                    self.send_stream(ctx, CircuitHandle(slot), rc.stream_id, &frame);
                }
                self.emit_or_hs(
                    ctx,
                    slot,
                    TorEvent::StreamConnected(CircuitHandle(slot), rc.stream_id),
                );
            }
            RelayCmd::Data => {
                self.account_delivery(ctx, slot);
                enum D {
                    App(Vec<u8>),
                    Dir(Vec<Vec<u8>>),
                    None,
                }
                let d = match self.circuits[slot].streams.get_mut(&rc.stream_id) {
                    Some(s) => match &mut s.kind {
                        StreamKind::Dir(asm) => {
                            asm.push(&rc.data);
                            D::Dir(asm.drain_frames())
                        }
                        _ => D::App(rc.data),
                    },
                    None => D::None,
                };
                match d {
                    D::App(data) => {
                        self.emit_or_hs(
                            ctx,
                            slot,
                            TorEvent::StreamData(CircuitHandle(slot), rc.stream_id, data),
                        );
                    }
                    D::Dir(frames) => {
                        for f in frames {
                            if let Ok(dm) = DirMsg::decode(&f) {
                                self.emit_or_hs(
                                    ctx,
                                    slot,
                                    TorEvent::DirResponse(CircuitHandle(slot), rc.stream_id, dm),
                                );
                            }
                        }
                    }
                    D::None => {}
                }
            }
            RelayCmd::End => {
                if let Some(s) = self.circuits[slot].streams.remove(&rc.stream_id) {
                    if let Some(t) = s.timeout {
                        ctx.cancel_timer(t);
                    }
                }
                self.emit_or_hs(
                    ctx,
                    slot,
                    TorEvent::StreamEnded(CircuitHandle(slot), rc.stream_id),
                );
            }
            RelayCmd::Begin => {
                // Far end of a rendezvous circuit opening a stream toward us.
                let port = StreamTarget::decode(&rc.data)
                    .and_then(|t| match t {
                        StreamTarget::Hs(p) => Some(p),
                        _ => None,
                    })
                    .unwrap_or(0);
                self.circuits[slot].streams.insert(
                    rc.stream_id,
                    ClientStream {
                        kind: StreamKind::Incoming,
                        connected: false,
                        pending: Vec::new(),
                        timeout: None,
                    },
                );
                self.emit_or_hs(
                    ctx,
                    slot,
                    TorEvent::IncomingStream(CircuitHandle(slot), rc.stream_id, port),
                );
            }
            RelayCmd::Sendme => {
                self.circuits[slot].package_window += SENDME_INCREMENT;
                self.flush_queued_data(ctx, slot);
            }
            RelayCmd::Drop => {}
            RelayCmd::Rendezvous2 => {
                self.handle_rendezvous2(ctx, slot, &rc.data);
            }
            RelayCmd::RendezvousEstablished => {
                if let Some(idx) = self.circuits[slot].hs_conn {
                    self.hs_conns[idx].rp_established = true;
                    self.hs_advance(ctx, idx);
                } else {
                    self.events.push_back(TorEvent::ControlCell(
                        CircuitHandle(slot),
                        rc.cmd,
                        rc.data,
                    ));
                }
            }
            RelayCmd::IntroduceAck => {
                if let Some(idx) = self.circuits[slot].hs_conn {
                    if !rc.data.is_empty() {
                        self.hs_fail(ctx, idx, "introduction NACK");
                    }
                    // ACK: nothing to do but wait for RENDEZVOUS2.
                } else {
                    self.events.push_back(TorEvent::ControlCell(
                        CircuitHandle(slot),
                        rc.cmd,
                        rc.data,
                    ));
                }
            }
            // Surfaced for the hidden-service host component.
            RelayCmd::IntroEstablished | RelayCmd::Introduce2 => {
                self.events
                    .push_back(TorEvent::ControlCell(CircuitHandle(slot), rc.cmd, rc.data));
            }
            // Never legitimately addressed to a client.
            RelayCmd::Extend
            | RelayCmd::BeginDir
            | RelayCmd::EstablishIntro
            | RelayCmd::Introduce1
            | RelayCmd::EstablishRendezvous
            | RelayCmd::Rendezvous1 => {}
        }
    }

    fn account_delivery(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let send_sendme = {
            let c = &mut self.circuits[slot];
            c.delivered_since_sendme += 1;
            if c.delivered_since_sendme >= SENDME_INCREMENT {
                c.delivered_since_sendme -= SENDME_INCREMENT;
                true
            } else {
                false
            }
        };
        if send_sendme {
            self.send_relay_last(ctx, slot, RelayCell::new(RelayCmd::Sendme, 0, vec![]));
        }
    }

    /// Route an event to the hidden-service state machine if the circuit
    /// belongs to one; otherwise emit it to the host.
    fn emit_or_hs(&mut self, ctx: &mut Ctx<'_>, slot: usize, ev: TorEvent) {
        let Some(idx) = self.circuits[slot].hs_conn else {
            self.events.push_back(ev);
            return;
        };
        match ev {
            TorEvent::CircuitReady(_) => {
                self.hs_advance(ctx, idx);
            }
            TorEvent::DirResponse(_, _, DirMsg::HsDescResp(resp)) => {
                match resp.and_then(|b| HsDescriptor::decode_verified(&b)) {
                    Some(desc) if desc.onion_addr() == self.hs_conns[idx].addr => {
                        // Done with the HSDir circuit.
                        if let Some(hsdir) = self.hs_conns[idx].hsdir_circ.take() {
                            self.destroy_circuit(ctx, CircuitHandle(hsdir));
                        }
                        self.hs_conns[idx].desc = Some(desc);
                        self.hs_advance(ctx, idx);
                    }
                    _ => self.hs_fail(ctx, idx, "descriptor missing or invalid"),
                }
            }
            TorEvent::StreamConnected(circ, stream) => {
                // Dir stream connected: pending request flushes via the
                // normal path; also surface stream events for the
                // rendezvous circuit itself.
                if self.hs_conns[idx].rendezvous_circ == circ.0 {
                    self.events
                        .push_back(TorEvent::StreamConnected(circ, stream));
                }
            }
            TorEvent::CircuitClosed(circ) => {
                let (rendezvous, phase, intro, hsdir, have_desc) = {
                    let h = &self.hs_conns[idx];
                    (
                        h.rendezvous_circ,
                        h.phase,
                        h.intro_circ,
                        h.hsdir_circ,
                        h.desc.is_some(),
                    )
                };
                if rendezvous == circ.0 && phase != HsPhase::Done {
                    self.hs_fail(ctx, idx, "rendezvous circuit closed");
                } else if phase == HsPhase::Done {
                    self.events.push_back(TorEvent::CircuitClosed(circ));
                } else if self.recovery.is_some() && phase != HsPhase::Failed {
                    // Recovery mode: a support circuit (intro / HSDir) dying
                    // mid-handshake is retried on a fresh path, up to
                    // MAX_HS_RETRIES per role.
                    if intro == Some(circ.0) {
                        self.hs_conns[idx].intro_circ = None;
                        self.hs_conns[idx].intro_retries += 1;
                        T_HS_RETRIES.inc();
                        if self.hs_conns[idx].phase == HsPhase::Introduced {
                            self.hs_conns[idx].phase = HsPhase::Waiting;
                        }
                        if self.hs_conns[idx].intro_retries > MAX_HS_RETRIES {
                            self.hs_fail(ctx, idx, "introduction retries exhausted");
                        } else {
                            self.maybe_introduce(ctx, idx);
                        }
                    } else if hsdir == Some(circ.0) && !have_desc {
                        self.hs_conns[idx].hsdir_circ = None;
                        self.hs_conns[idx].hsdir_retries += 1;
                        T_HS_RETRIES.inc();
                        if self.hs_conns[idx].hsdir_retries > MAX_HS_RETRIES {
                            self.hs_fail(ctx, idx, "descriptor fetch retries exhausted");
                        } else {
                            self.retry_hsdir(ctx, idx);
                        }
                    }
                }
            }
            // Data/End on the rendezvous circuit post-handshake flow to the
            // host directly.
            other => {
                self.events.push_back(other);
            }
        }
    }

    /// Progress an onion connection whenever one of its inputs changes.
    fn hs_advance(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        if matches!(self.hs_conns[idx].phase, HsPhase::Done | HsPhase::Failed) {
            return;
        }
        // 1. Request the descriptor once the HSDir circuit is up.
        let hsdir_circ = self.hs_conns[idx].hsdir_circ;
        let hsdir_ready = hsdir_circ.map(|c| self.circuits[c].ready).unwrap_or(false);
        if let Some(hsdir) = hsdir_circ {
            if hsdir_ready
                && self.hs_conns[idx].desc.is_none()
                && !self.hs_conns[idx].desc_requested
            {
                self.hs_conns[idx].desc_requested = true;
                let addr = self.hs_conns[idx].addr;
                self.dir_request(ctx, CircuitHandle(hsdir), DirMsg::FetchHsDesc(addr));
            }
        }
        // 2. Register the rendezvous cookie once that circuit is up.
        let rendezvous_circ = self.hs_conns[idx].rendezvous_circ;
        if self.circuits[rendezvous_circ].ready && !self.hs_conns[idx].est_sent {
            self.hs_conns[idx].est_sent = true;
            let cookie = self.hs_conns[idx].cookie;
            self.send_relay_last(
                ctx,
                rendezvous_circ,
                RelayCell::new(RelayCmd::EstablishRendezvous, 0, cookie.to_vec()),
            );
            self.hs_conns[idx].phase = HsPhase::Waiting;
        }
        // 3. Introduce when everything is in hand.
        self.maybe_introduce(ctx, idx);
    }

    /// If the descriptor and the rendezvous registration are both in hand
    /// and the intro circuit is ready (building it if needed), introduce.
    fn maybe_introduce(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        if self.hs_conns[idx].desc.is_none() || !self.hs_conns[idx].rp_established {
            return;
        }
        if self.hs_conns[idx].phase == HsPhase::Introduced {
            return;
        }
        match self.hs_conns[idx].intro_circ {
            None => {
                // Build a circuit to one of the service's intro points,
                // preferring ones this connection has not tried yet. On the
                // first attempt nothing is used, so the RNG draw is the same
                // range as a retry-oblivious client's.
                let intro_fp = {
                    let h = &self.hs_conns[idx];
                    let Some(desc) = h.desc.as_ref() else {
                        self.hs_fail(ctx, idx, "descriptor missing");
                        return;
                    };
                    if desc.intro_points.is_empty() {
                        self.hs_fail(ctx, idx, "descriptor has no intro points");
                        return;
                    }
                    let fresh: Vec<Fingerprint> = desc
                        .intro_points
                        .iter()
                        .filter(|fp| !h.used_intros.contains(fp))
                        .copied()
                        .collect();
                    let pool: &[Fingerprint] = if fresh.is_empty() {
                        &desc.intro_points
                    } else {
                        &fresh
                    };
                    let pick = ctx.rng().gen_range(0..pool.len());
                    pool[pick]
                };
                self.hs_conns[idx].used_intros.push(intro_fp);
                let Some(path) = self.select_path_resilient(ctx, TerminalReq::Specific(intro_fp))
                else {
                    self.hs_fail(ctx, idx, "intro point not in consensus");
                    return;
                };
                let Some(circ) = self.build_circuit(ctx, path) else {
                    self.hs_fail(ctx, idx, "could not build intro circuit");
                    return;
                };
                self.circuits[circ.0].hs_conn = Some(idx);
                self.hs_conns[idx].intro_circ = Some(circ.0);
            }
            Some(intro) if self.circuits[intro].ready => {
                self.send_introduce1(ctx, idx, intro);
            }
            Some(_) => {} // still building
        }
    }

    fn send_introduce1(&mut self, ctx: &mut Ctx<'_>, idx: usize, intro_slot: usize) {
        let (addr, cookie, enc_key, rp_info) = {
            let h = &self.hs_conns[idx];
            let Some(desc) = h.desc.as_ref() else {
                self.hs_fail(ctx, idx, "descriptor missing");
                return;
            };
            let Some(rp) = self.circuits[h.rendezvous_circ].path.last() else {
                self.hs_fail(ctx, idx, "rendezvous circuit has no path");
                return;
            };
            (h.addr, h.cookie, desc.enc_key, rp.clone())
        };
        // E2E ntor handshake toward the service's encryption key; the
        // service id for the handshake is the first 20 bytes of the onion
        // address.
        let mut svc_id = [0u8; 20];
        svc_id.copy_from_slice(&addr.0[..20]);
        let (handshake, onionskin) = ntor::client_begin(ctx.rng(), svc_id, enc_key);
        self.circuits[self.hs_conns[idx].rendezvous_circ].pending_e2e = Some(handshake);

        // Encrypt the introduction payload to the service's key.
        let eph = StaticSecret::random(ctx.rng());
        let shared = eph.diffie_hellman(&enc_key);
        let mut master = [0u8; 32];
        master.copy_from_slice(&hkdf(b"bento-intro", &shared, b"blob", 32));
        let key = AeadKey::from_master(&master);
        let mut plain = Vec::new();
        plain.extend_from_slice(&rp_info.fingerprint);
        plain.extend_from_slice(&rp_info.addr.0.to_be_bytes());
        plain.extend_from_slice(&rp_info.or_port.to_be_bytes());
        plain.extend_from_slice(&cookie);
        plain.extend_from_slice(&onionskin);
        let pow_bits = self.hs_conns[idx].pow_bits;
        if pow_bits > 0 {
            let nonce = crate::hs::solve_pow(&cookie, pow_bits);
            plain.extend_from_slice(&nonce.to_be_bytes());
        }
        let sealed = aead_seal(&key, &[0u8; 12], &addr.0, &plain);

        let mut data = Vec::new();
        data.extend_from_slice(&addr.0);
        data.extend_from_slice(eph.public_key().as_bytes());
        data.extend_from_slice(&sealed);
        self.send_relay_last(
            ctx,
            intro_slot,
            RelayCell::new(RelayCmd::Introduce1, 0, data),
        );
        self.hs_conns[idx].phase = HsPhase::Introduced;
    }

    fn handle_rendezvous2(&mut self, ctx: &mut Ctx<'_>, slot: usize, reply: &[u8]) {
        let Some(handshake) = self.circuits[slot].pending_e2e.take() else {
            return;
        };
        let Ok(keys) = ntor::client_finish(&handshake, reply) else {
            if let Some(idx) = self.circuits[slot].hs_conn {
                self.hs_fail(ctx, idx, "e2e handshake authentication failed");
            }
            return;
        };
        self.circuits[slot]
            .crypto
            .push_hop(LayerCrypto::client_side(&keys));
        if let Some(idx) = self.circuits[slot].hs_conn {
            self.hs_conns[idx].phase = HsPhase::Done;
            if let Some(intro) = self.hs_conns[idx].intro_circ.take() {
                self.destroy_circuit(ctx, CircuitHandle(intro));
            }
        }
        self.events
            .push_back(TorEvent::RendezvousReady(CircuitHandle(slot)));
    }

    /// Rebuild the HSDir circuit of an onion connection whose descriptor
    /// fetch failed, and re-arm the fetch.
    fn retry_hsdir(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let addr = self.hs_conns[idx].addr;
        let Some(hsdir_fp) = self
            .consensus
            .as_ref()
            .and_then(|c| crate::hs::responsible_hsdir(c, &addr))
        else {
            self.hs_fail(ctx, idx, "no responsible HSDir in consensus");
            return;
        };
        let Some(path) = self.select_path_resilient(ctx, TerminalReq::Specific(hsdir_fp)) else {
            self.hs_fail(ctx, idx, "no path to HSDir");
            return;
        };
        let Some(circ) = self.build_circuit(ctx, path) else {
            self.hs_fail(ctx, idx, "could not rebuild HSDir circuit");
            return;
        };
        self.circuits[circ.0].hs_conn = Some(idx);
        self.hs_conns[idx].hsdir_circ = Some(circ.0);
        self.hs_conns[idx].desc_requested = false;
        self.hs_advance(ctx, idx);
    }

    fn hs_fail(&mut self, ctx: &mut Ctx<'_>, idx: usize, why: &str) {
        if self.hs_conns[idx].phase == HsPhase::Failed {
            return;
        }
        self.hs_conns[idx].phase = HsPhase::Failed;
        let rendezvous = self.hs_conns[idx].rendezvous_circ;
        for circ in [
            Some(rendezvous),
            self.hs_conns[idx].hsdir_circ,
            self.hs_conns[idx].intro_circ,
        ]
        .into_iter()
        .flatten()
        {
            self.destroy_circuit(ctx, CircuitHandle(circ));
        }
        self.events.push_back(TorEvent::RendezvousFailed(
            CircuitHandle(rendezvous),
            why.to_string(),
        ));
    }

    fn circuit_closed(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        if !self.circuits[slot].alive {
            return;
        }
        self.circuits[slot].alive = false;
        self.circuits[slot].ready = false;
        let conn = self.circuits[slot].conn;
        let circ_id = self.circuits[slot].circ_id;
        self.circ_lookup.remove(&(conn, circ_id));
        // Quiesce every timer owned by the dead circuit before its slot can
        // be misread by a later firing.
        let mut timers: Vec<TimerId> = self.circuits[slot].build_timer.take().into_iter().collect();
        for s in self.circuits[slot].streams.values_mut() {
            timers.extend(s.timeout.take());
        }
        for t in timers {
            ctx.cancel_timer(t);
        }
        // A managed circuit dying is not the end: carry its rebuild state
        // into the backoff queue.
        if let Some(mut m) = self.circuits[slot].managed.take() {
            m.origin = Some(slot);
            if m.failed_at.is_none() {
                m.failed_at = Some(ctx.now());
            }
            self.schedule_rebuild(ctx, m);
        }
        self.emit_or_hs(ctx, slot, TorEvent::CircuitClosed(CircuitHandle(slot)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_target_roundtrip() {
        for t in [
            StreamTarget::Node(NodeId(7), 80),
            StreamTarget::Dir,
            StreamTarget::Hs(443),
        ] {
            assert_eq!(StreamTarget::decode(&t.encode()), Some(t));
        }
    }

    #[test]
    fn stream_target_rejects_malformed() {
        assert_eq!(StreamTarget::decode(&[]), None);
        assert_eq!(StreamTarget::decode(&[0, 1, 2]), None); // short Node
        assert_eq!(StreamTarget::decode(&[1, 9]), None); // long Dir
        assert_eq!(StreamTarget::decode(&[2, 1]), None); // short Hs
        assert_eq!(StreamTarget::decode(&[9]), None); // unknown tag
    }

    #[test]
    fn client_without_consensus_cannot_build() {
        // Structural guard: select_path and build_circuit require a
        // consensus; before bootstrap they return None instead of panicking.
        use onion_crypto::hashsig::MerkleSigner;
        let key = MerkleSigner::generate([0u8; 32], 1).verify_key();
        let client = TorClient::new(NodeId(0), key);
        assert!(client.consensus().is_none());
        assert!(!client.is_ready(CircuitHandle(0)));
        assert_eq!(client.hops(CircuitHandle(0)), 0);
    }
}
