//! Tor cells: the fixed-size link-layer unit of the overlay.
//!
//! Every message on an OR connection is one 514-byte cell:
//!
//! ```text
//! circ_id (4) | command (1) | payload (509)
//! ```
//!
//! RELAY cells structure their payload further:
//!
//! ```text
//! relay_cmd (1) | recognized (2) | stream_id (2) | digest (4) | length (2) | data (498)
//! ```
//!
//! `recognized` is zero and `digest` is the running-digest prefix only at the
//! hop a relay cell is addressed to; at every other hop both fields are
//! ciphertext (see [`crate::relay_crypto`]).

/// Total cell length on the wire.
pub const CELL_LEN: usize = 514;
/// Payload length of every cell.
pub const PAYLOAD_LEN: usize = 509;
/// Relay-cell header length inside the payload.
pub const RELAY_HEADER_LEN: usize = 11;
/// Maximum data bytes carried by one RELAY_DATA cell.
pub const MAX_RELAY_DATA: usize = PAYLOAD_LEN - RELAY_HEADER_LEN; // 498

/// Link-level cell commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellCmd {
    /// Filler; ignored on receipt.
    Padding,
    /// Circuit-creation request carrying an ntor onionskin.
    Create,
    /// Circuit-creation reply.
    Created,
    /// An onion-encrypted relay cell.
    Relay,
    /// Circuit teardown.
    Destroy,
}

impl CellCmd {
    fn to_byte(self) -> u8 {
        match self {
            CellCmd::Padding => 0,
            CellCmd::Create => 1,
            CellCmd::Created => 2,
            CellCmd::Relay => 3,
            CellCmd::Destroy => 4,
        }
    }

    fn from_byte(b: u8) -> Option<CellCmd> {
        Some(match b {
            0 => CellCmd::Padding,
            1 => CellCmd::Create,
            2 => CellCmd::Created,
            3 => CellCmd::Relay,
            4 => CellCmd::Destroy,
            _ => return None,
        })
    }
}

/// Commands inside a relay cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelayCmd {
    /// Open a stream from the terminal hop.
    Begin,
    /// Stream payload bytes.
    Data,
    /// Close a stream.
    End,
    /// Stream successfully opened.
    Connected,
    /// Circuit-level flow-control credit.
    Sendme,
    /// Extend the circuit to another relay.
    Extend,
    /// Circuit extension complete.
    Extended,
    /// Long-range dummy cell (cover traffic); dropped at the terminal hop.
    Drop,
    /// Open a stream to the terminal relay's own directory service.
    BeginDir,
    /// Hidden service: register this circuit as an introduction point.
    EstablishIntro,
    /// Hidden service: introduction point registration acknowledged.
    IntroEstablished,
    /// Hidden service: client → intro point introduction request.
    Introduce1,
    /// Hidden service: intro point → service forwarded introduction.
    Introduce2,
    /// Hidden service: intro point → client acknowledgment.
    IntroduceAck,
    /// Hidden service: client registers a rendezvous cookie.
    EstablishRendezvous,
    /// Hidden service: rendezvous registration acknowledged.
    RendezvousEstablished,
    /// Hidden service: service → rendezvous point join.
    Rendezvous1,
    /// Hidden service: rendezvous point → client completion.
    Rendezvous2,
}

impl RelayCmd {
    fn to_byte(self) -> u8 {
        use RelayCmd::*;
        match self {
            Begin => 1,
            Data => 2,
            End => 3,
            Connected => 4,
            Sendme => 5,
            Extend => 6,
            Extended => 7,
            Drop => 8,
            BeginDir => 13,
            EstablishIntro => 32,
            IntroEstablished => 33,
            Introduce1 => 34,
            Introduce2 => 35,
            IntroduceAck => 40,
            EstablishRendezvous => 36,
            RendezvousEstablished => 37,
            Rendezvous1 => 38,
            Rendezvous2 => 39,
        }
    }

    fn from_byte(b: u8) -> Option<RelayCmd> {
        use RelayCmd::*;
        Some(match b {
            1 => Begin,
            2 => Data,
            3 => End,
            4 => Connected,
            5 => Sendme,
            6 => Extend,
            7 => Extended,
            8 => Drop,
            13 => BeginDir,
            32 => EstablishIntro,
            33 => IntroEstablished,
            34 => Introduce1,
            35 => Introduce2,
            40 => IntroduceAck,
            36 => EstablishRendezvous,
            37 => RendezvousEstablished,
            38 => Rendezvous1,
            39 => Rendezvous2,
            _ => return None,
        })
    }
}

/// A link cell.
#[derive(Clone)]
pub struct Cell {
    /// Which circuit on this connection the cell belongs to.
    pub circ_id: u32,
    /// Link command.
    pub cmd: CellCmd,
    /// Fixed-size payload (relay cells keep theirs encrypted here).
    pub payload: [u8; PAYLOAD_LEN],
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cell(circ={}, cmd={:?})", self.circ_id, self.cmd)
    }
}

impl Cell {
    /// A cell with a zeroed payload.
    pub fn new(circ_id: u32, cmd: CellCmd) -> Cell {
        Cell {
            circ_id,
            cmd,
            payload: [0; PAYLOAD_LEN],
        }
    }

    /// A cell with the given payload prefix (rest zero-padded).
    ///
    /// # Panics
    /// If `data` exceeds the payload size.
    pub fn with_payload(circ_id: u32, cmd: CellCmd, data: &[u8]) -> Cell {
        assert!(data.len() <= PAYLOAD_LEN, "payload too large for a cell");
        let mut c = Cell::new(circ_id, cmd);
        c.payload[..data.len()].copy_from_slice(data);
        c
    }

    /// Encode to the 514-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CELL_LEN);
        self.encode_into(&mut out);
        out
    }

    /// Append the 514-byte wire form to `out` — the allocation-free variant
    /// of [`Cell::encode`] for callers reusing pooled buffers.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(CELL_LEN);
        out.extend_from_slice(&self.circ_id.to_be_bytes());
        out.push(self.cmd.to_byte());
        out.extend_from_slice(&self.payload);
    }

    /// Append the wire form of a cell given as parts, skipping the
    /// intermediate [`Cell`] value — the relay's sealed-send path writes an
    /// already-encrypted payload straight into a pooled wire buffer.
    pub fn encode_parts_into(
        circ_id: u32,
        cmd: CellCmd,
        payload: &[u8; PAYLOAD_LEN],
        out: &mut Vec<u8>,
    ) {
        out.reserve(CELL_LEN);
        out.extend_from_slice(&circ_id.to_be_bytes());
        out.push(cmd.to_byte());
        out.extend_from_slice(payload);
    }

    /// Decode from the wire; `None` for wrong length or unknown command.
    pub fn decode(buf: &[u8]) -> Option<Cell> {
        if buf.len() != CELL_LEN {
            return None;
        }
        let circ_id = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let cmd = CellCmd::from_byte(buf[4])?;
        let mut payload = [0u8; PAYLOAD_LEN];
        payload.copy_from_slice(&buf[5..]);
        Some(Cell {
            circ_id,
            cmd,
            payload,
        })
    }

    // ------------------------------------------------------------------
    // In-place wire accessors: let a relay re-encrypt and forward a cell
    // inside the buffer it arrived in, instead of decode → mutate → encode.
    // ------------------------------------------------------------------

    /// The circuit id of an encoded cell, without decoding it.
    /// `None` unless `wire` is exactly one cell.
    pub fn peek_circ_id(wire: &[u8]) -> Option<u32> {
        if wire.len() != CELL_LEN {
            return None;
        }
        Some(u32::from_be_bytes([wire[0], wire[1], wire[2], wire[3]]))
    }

    /// The command of an encoded cell, without decoding it.
    /// `None` for a wrong length or unknown command byte.
    pub fn peek_cmd(wire: &[u8]) -> Option<CellCmd> {
        if wire.len() != CELL_LEN {
            return None;
        }
        CellCmd::from_byte(wire[4])
    }

    /// Rewrite the circuit id of an encoded cell in place.
    ///
    /// # Panics
    /// If `wire` is shorter than a cell header.
    pub fn set_wire_circ_id(wire: &mut [u8], circ_id: u32) {
        wire[..4].copy_from_slice(&circ_id.to_be_bytes());
    }

    /// Mutable view of the payload of an encoded cell, sized for the
    /// in-place [`crate::relay_crypto`] primitives. `None` for wrong length.
    pub fn wire_payload_mut(wire: &mut [u8]) -> Option<&mut [u8; PAYLOAD_LEN]> {
        if wire.len() != CELL_LEN {
            return None;
        }
        (&mut wire[5..]).try_into().ok()
    }

    /// Immutable view of the payload of an encoded cell. `None` for wrong
    /// length.
    pub fn wire_payload(wire: &[u8]) -> Option<&[u8; PAYLOAD_LEN]> {
        if wire.len() != CELL_LEN {
            return None;
        }
        wire[5..].try_into().ok()
    }
}

/// A parsed relay-cell payload (after decryption at the addressed hop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayCell {
    /// Relay command.
    pub cmd: RelayCmd,
    /// Stream the cell belongs to (0 for circuit-level commands).
    pub stream_id: u16,
    /// Data bytes.
    pub data: Vec<u8>,
}

impl RelayCell {
    /// New relay cell.
    ///
    /// # Panics
    /// If `data` exceeds [`MAX_RELAY_DATA`].
    pub fn new(cmd: RelayCmd, stream_id: u16, data: Vec<u8>) -> RelayCell {
        assert!(data.len() <= MAX_RELAY_DATA, "relay data too large");
        RelayCell {
            cmd,
            stream_id,
            data,
        }
    }

    /// Encode into a cell payload with `recognized = 0` and a zeroed digest
    /// field; [`crate::relay_crypto::LayerCrypto::seal`] fills the digest.
    pub fn encode_payload(&self) -> [u8; PAYLOAD_LEN] {
        Self::encode_payload_from(self.cmd, self.stream_id, &self.data)
    }

    /// Encode a relay payload directly from borrowed data, skipping the
    /// intermediate owned [`RelayCell`] — the zero-copy path for chunking
    /// stream bytes into DATA cells.
    ///
    /// # Panics
    /// If `data` exceeds [`MAX_RELAY_DATA`].
    pub fn encode_payload_from(cmd: RelayCmd, stream_id: u16, data: &[u8]) -> [u8; PAYLOAD_LEN] {
        assert!(data.len() <= MAX_RELAY_DATA, "relay data too large");
        let mut p = [0u8; PAYLOAD_LEN];
        p[0] = cmd.to_byte();
        // p[1..3] recognized = 0
        p[3..5].copy_from_slice(&stream_id.to_be_bytes());
        // p[5..9] digest = 0 (filled by seal)
        p[9..11].copy_from_slice(&(data.len() as u16).to_be_bytes());
        p[11..11 + data.len()].copy_from_slice(data);
        p
    }

    /// Parse a decrypted, recognized payload. `None` if structurally invalid.
    pub fn parse_payload(p: &[u8; PAYLOAD_LEN]) -> Option<RelayCell> {
        let cmd = RelayCmd::from_byte(p[0])?;
        let stream_id = u16::from_be_bytes([p[3], p[4]]);
        let len = u16::from_be_bytes([p[9], p[10]]) as usize;
        if len > MAX_RELAY_DATA {
            return None;
        }
        Some(RelayCell {
            cmd,
            stream_id,
            data: p[11..11 + len].to_vec(),
        })
    }

    /// The `recognized` field of a payload.
    pub fn recognized_field(p: &[u8; PAYLOAD_LEN]) -> u16 {
        u16::from_be_bytes([p[1], p[2]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_roundtrip() {
        let c = Cell::with_payload(7, CellCmd::Create, b"onionskin bytes");
        let wire = c.encode();
        assert_eq!(wire.len(), CELL_LEN);
        let back = Cell::decode(&wire).unwrap();
        assert_eq!(back.circ_id, 7);
        assert_eq!(back.cmd, CellCmd::Create);
        assert_eq!(&back.payload[..15], b"onionskin bytes");
    }

    #[test]
    fn cell_decode_rejects_bad_input() {
        assert!(Cell::decode(&[0u8; 10]).is_none());
        assert!(Cell::decode(&[0u8; CELL_LEN + 1]).is_none());
        let mut wire = Cell::new(1, CellCmd::Relay).encode();
        wire[4] = 200; // unknown command
        assert!(Cell::decode(&wire).is_none());
    }

    #[test]
    fn relay_cell_roundtrip() {
        let rc = RelayCell::new(RelayCmd::Data, 42, vec![9u8; 100]);
        let payload = rc.encode_payload();
        assert_eq!(RelayCell::recognized_field(&payload), 0);
        let back = RelayCell::parse_payload(&payload).unwrap();
        assert_eq!(back, rc);
    }

    #[test]
    fn relay_cell_empty_and_max_data() {
        for len in [0usize, 1, MAX_RELAY_DATA] {
            let rc = RelayCell::new(RelayCmd::Data, 1, vec![7; len]);
            let back = RelayCell::parse_payload(&rc.encode_payload()).unwrap();
            assert_eq!(back.data.len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "relay data too large")]
    fn relay_cell_rejects_oversize() {
        let _ = RelayCell::new(RelayCmd::Data, 1, vec![0; MAX_RELAY_DATA + 1]);
    }

    #[test]
    fn relay_cell_parse_rejects_bad_length_field() {
        let rc = RelayCell::new(RelayCmd::Data, 1, vec![1; 4]);
        let mut p = rc.encode_payload();
        p[9] = 0xFF;
        p[10] = 0xFF;
        assert!(RelayCell::parse_payload(&p).is_none());
    }

    #[test]
    fn all_relay_cmds_roundtrip() {
        use RelayCmd::*;
        for cmd in [
            Begin,
            Data,
            End,
            Connected,
            Sendme,
            Extend,
            Extended,
            Drop,
            BeginDir,
            EstablishIntro,
            IntroEstablished,
            Introduce1,
            Introduce2,
            IntroduceAck,
            EstablishRendezvous,
            RendezvousEstablished,
            Rendezvous1,
            Rendezvous2,
        ] {
            let rc = RelayCell::new(cmd, 3, vec![]);
            let back = RelayCell::parse_payload(&rc.encode_payload()).unwrap();
            assert_eq!(back.cmd, cmd);
        }
    }
}
