//! Chaos test: many clients issuing randomized (but seeded, hence
//! reproducible) operations against one network — circuits built and torn
//! down mid-use, streams opened to real and bogus targets, onion
//! connections, cover cells. The assertions are survival properties: the
//! simulator never panics, traffic flows, and the run is deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{SimDuration, SimTime};
use tor_net::client::TerminalReq;
use tor_net::netbuild::{NetworkBuilder, TestClientNode};
use tor_net::ports::HTTP_PORT;
use tor_net::stream_frame::encode_frame;
use tor_net::{CircuitHandle, HiddenServiceHost, StreamTarget};

fn run_chaos(seed: u64) -> (u64, u64) {
    let mut net = NetworkBuilder::new()
        .seed(seed)
        .middles(8)
        .exits(3)
        .hsdirs(2)
        .build();
    let server = net.add_web_server("web", vec![("/".to_string(), vec![vec![0xAAu8; 40_000]])]);
    let service = {
        let hs = HiddenServiceHost::new([0x99; 32], 2, true);
        let mut node = TestClientNode::new(net.authority, net.authority_key).with_hs(hs);
        node.serve_bytes = Some(10_000);
        net.sim
            .add_node("service", simnet::Iface::datacenter(), Box::new(node))
    };
    let onion = HiddenServiceHost::new([0x99; 32], 0, true).onion_addr();
    let clients: Vec<_> = (0..8)
        .map(|i| net.add_client(&format!("chaos{i}")))
        .collect();
    net.sim.run_until(SimTime::ZERO + SimDuration::from_secs(6));

    let mut driver = StdRng::seed_from_u64(seed ^ 0xC4A05);
    let mut known: Vec<Vec<CircuitHandle>> = vec![Vec::new(); clients.len()];
    for step in 0..80u64 {
        for (ci, &c) in clients.iter().enumerate() {
            let op = driver.gen_range(0..6);
            let circs = known[ci].clone();
            let new_circ = net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
                match op {
                    0 => {
                        // Build a fresh circuit.
                        n.tor
                            .select_path(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
                            .and_then(|p| n.tor.build_circuit(ctx, p))
                    }
                    1 => {
                        // Open a stream and request the page on a ready circuit.
                        for &h in circs.iter().rev() {
                            if n.tor.is_ready(h) {
                                if let Some(s) =
                                    n.tor
                                        .open_stream(ctx, h, StreamTarget::Node(server, HTTP_PORT))
                                {
                                    n.tor.send_stream(ctx, h, s, &encode_frame(b"/"));
                                }
                                break;
                            }
                        }
                        None
                    }
                    2 => {
                        // Tear down a random circuit, possibly mid-download.
                        if !circs.is_empty() {
                            let victim = circs[(step as usize + ci) % circs.len()];
                            n.tor.destroy_circuit(ctx, victim);
                        }
                        None
                    }
                    3 => {
                        // Cover cells on everything ready.
                        for &h in &circs {
                            if n.tor.is_ready(h) {
                                n.tor.send_drop(ctx, h);
                            }
                        }
                        None
                    }
                    4 => n.tor.connect_onion(ctx, onion),
                    _ => {
                        // Bogus target: a stream to a port nothing allows.
                        for &h in circs.iter().rev() {
                            if n.tor.is_ready(h) {
                                let _ = n.tor.open_stream(ctx, h, StreamTarget::Node(server, 2222));
                                break;
                            }
                        }
                        None
                    }
                }
            });
            if let Some(h) = new_circ {
                known[ci].push(h);
            }
        }
        let now = net.sim.now();
        net.sim.run_until(now + SimDuration::from_millis(700));
    }
    // Drain to quiescence-ish and collect outcome numbers.
    let now = net.sim.now();
    net.sim.run_until(now + SimDuration::from_secs(30));
    let stats = net.sim.stats();
    let delivered_to_clients: u64 = clients
        .iter()
        .map(|&c| {
            net.sim.with_node::<TestClientNode, _>(c, |n, _| {
                n.events
                    .iter()
                    .filter_map(|e| match e {
                        tor_net::TorEvent::StreamData(_, _, d) => Some(d.len() as u64),
                        _ => None,
                    })
                    .sum::<u64>()
            })
        })
        .sum();
    let _ = service;
    (stats.events, delivered_to_clients)
}

#[test]
fn chaos_run_survives_and_is_deterministic() {
    let (events_a, delivered_a) = run_chaos(2024);
    assert!(delivered_a > 200_000, "real data flowed: {delivered_a}");
    assert!(
        events_a > 50_000,
        "the run did substantial work: {events_a}"
    );
    let (events_b, delivered_b) = run_chaos(2024);
    assert_eq!(
        (events_a, delivered_a),
        (events_b, delivered_b),
        "deterministic"
    );
}

#[test]
fn chaos_other_seeds_also_survive() {
    for seed in [7u64, 99] {
        let (_, delivered) = run_chaos(seed);
        assert!(delivered > 100_000, "seed {seed}: {delivered}");
    }
}
