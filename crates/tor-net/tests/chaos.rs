//! Chaos tests, two layers deep:
//!
//! 1. Randomized-operation chaos: many clients issuing seeded random
//!    operations against one healthy network — circuits built and torn
//!    down mid-use, streams to real and bogus targets, onion connections,
//!    cover cells.
//! 2. Fault-plane chaos: the same kind of network under a deterministic
//!    [`FaultPlan`] — a relay crash + restart targeted at a live circuit,
//!    5% link loss, and a partition that heals — with recovery-enabled
//!    clients that must keep delivering data.
//!
//! The assertions are survival properties: the simulator never panics,
//! traffic flows (goodput under 5% loss is nonzero), failed circuits are
//! rebuilt, and every run replays byte-identically from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{FaultAction, FaultPlan, LinkFault, SimDuration, SimTime};
use tor_net::client::TerminalReq;
use tor_net::netbuild::{NetworkBuilder, TestClientNode};
use tor_net::ports::{HS_VIRTUAL_PORT, HTTP_PORT};
use tor_net::stream_frame::encode_frame;
use tor_net::{CircuitHandle, HiddenServiceHost, StreamTarget, TorEvent};

fn run_chaos(seed: u64) -> (u64, u64) {
    let mut net = NetworkBuilder::new()
        .seed(seed)
        .middles(8)
        .exits(3)
        .hsdirs(2)
        .build();
    let server = net.add_web_server("web", vec![("/".to_string(), vec![vec![0xAAu8; 40_000]])]);
    let service = {
        let hs = HiddenServiceHost::new([0x99; 32], 2, true);
        let mut node = TestClientNode::new(net.authority, net.authority_key).with_hs(hs);
        node.serve_bytes = Some(10_000);
        net.sim
            .add_node("service", simnet::Iface::datacenter(), Box::new(node))
    };
    let onion = HiddenServiceHost::new([0x99; 32], 0, true).onion_addr();
    let clients: Vec<_> = (0..8)
        .map(|i| net.add_client(&format!("chaos{i}")))
        .collect();
    net.sim.run_until(SimTime::ZERO + SimDuration::from_secs(6));

    let mut driver = StdRng::seed_from_u64(seed ^ 0xC4A05);
    let mut known: Vec<Vec<CircuitHandle>> = vec![Vec::new(); clients.len()];
    for step in 0..80u64 {
        for (ci, &c) in clients.iter().enumerate() {
            let op = driver.gen_range(0..6);
            let circs = known[ci].clone();
            let new_circ = net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
                match op {
                    0 => {
                        // Build a fresh circuit.
                        n.tor
                            .select_path(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
                            .and_then(|p| n.tor.build_circuit(ctx, p))
                    }
                    1 => {
                        // Open a stream and request the page on a ready circuit.
                        for &h in circs.iter().rev() {
                            if n.tor.is_ready(h) {
                                if let Some(s) =
                                    n.tor
                                        .open_stream(ctx, h, StreamTarget::Node(server, HTTP_PORT))
                                {
                                    n.tor.send_stream(ctx, h, s, &encode_frame(b"/"));
                                }
                                break;
                            }
                        }
                        None
                    }
                    2 => {
                        // Tear down a random circuit, possibly mid-download.
                        if !circs.is_empty() {
                            let victim = circs[(step as usize + ci) % circs.len()];
                            n.tor.destroy_circuit(ctx, victim);
                        }
                        None
                    }
                    3 => {
                        // Cover cells on everything ready.
                        for &h in &circs {
                            if n.tor.is_ready(h) {
                                n.tor.send_drop(ctx, h);
                            }
                        }
                        None
                    }
                    4 => n.tor.connect_onion(ctx, onion),
                    _ => {
                        // Bogus target: a stream to a port nothing allows.
                        for &h in circs.iter().rev() {
                            if n.tor.is_ready(h) {
                                let _ = n.tor.open_stream(ctx, h, StreamTarget::Node(server, 2222));
                                break;
                            }
                        }
                        None
                    }
                }
            });
            if let Some(h) = new_circ {
                known[ci].push(h);
            }
        }
        let now = net.sim.now();
        net.sim.run_until(now + SimDuration::from_millis(700));
    }
    // Drain to quiescence-ish and collect outcome numbers.
    let now = net.sim.now();
    net.sim.run_until(now + SimDuration::from_secs(30));
    let stats = net.sim.stats();
    let delivered_to_clients: u64 = clients
        .iter()
        .map(|&c| {
            net.sim.with_node::<TestClientNode, _>(c, |n, _| {
                n.events
                    .iter()
                    .filter_map(|e| match e {
                        tor_net::TorEvent::StreamData(_, _, d) => Some(d.len() as u64),
                        _ => None,
                    })
                    .sum::<u64>()
            })
        })
        .sum();
    let _ = service;
    (stats.events, delivered_to_clients)
}

#[test]
fn chaos_run_survives_and_is_deterministic() {
    let (events_a, delivered_a) = run_chaos(2024);
    assert!(delivered_a > 200_000, "real data flowed: {delivered_a}");
    assert!(
        events_a > 50_000,
        "the run did substantial work: {events_a}"
    );
    let (events_b, delivered_b) = run_chaos(2024);
    assert_eq!(
        (events_a, delivered_a),
        (events_b, delivered_b),
        "deterministic"
    );
}

#[test]
fn chaos_other_seeds_also_survive() {
    for seed in [7u64, 99] {
        let (_, delivered) = run_chaos(seed);
        assert!(delivered > 100_000, "seed {seed}: {delivered}");
    }
}

// ---------------------------------------------------------------------------
// Fault-plane chaos: a deterministic fault schedule instead of random client
// operations. Recovery-enabled clients download in a loop while the plan
// crashes a relay under a live circuit, degrades every link, and partitions
// two relays away — all of which heals before the horizon.
// ---------------------------------------------------------------------------

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

#[derive(Debug, PartialEq, Eq)]
struct FaultRun {
    events: u64,
    delivered: u64,
    rebuilds: u64,
    msgs_dropped: u64,
    crashes: u64,
    restarts: u64,
}

fn run_fault_plan(seed: u64) -> FaultRun {
    let mut net = NetworkBuilder::new()
        .seed(seed)
        .middles(8)
        .exits(3)
        .hsdirs(2)
        .build();
    let server = net.add_web_server("web", vec![("/".to_string(), vec![vec![0x5Au8; 20_000]])]);
    let middles: Vec<simnet::NodeId> = net.relays[1..].iter().map(|(id, _)| *id).collect();
    // Static schedule: 5% loss on every link [6s, 20s); two middles cut off
    // from the world [14s, 17s).
    net.sim.install_faults(
        FaultPlan::new()
            .all_links(secs(6), LinkFault::loss_pct(5.0))
            .all_links_clear(secs(20))
            .partition(secs(14), vec![middles[1], middles[2]])
            .heal(secs(17)),
    );
    let clients: Vec<_> = (0..3).map(|i| net.add_client(&format!("fc{i}"))).collect();
    for &c in &clients {
        net.sim
            .with_node::<TestClientNode, _>(c, |n, _| n.tor.enable_recovery());
    }
    net.sim.run_until(secs(3));
    let mut circs: Vec<Option<CircuitHandle>> = clients
        .iter()
        .map(|&c| {
            net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
                n.tor
                    .build_circuit_managed(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
            })
        })
        .collect();
    net.sim.run_until(secs(5));
    // Crash a relay under client 0's circuit (so the crash provably kills a
    // live circuit), restart it four seconds later. Any hop will do, but
    // never the authority — skip hops that don't map to net.relays[1..].
    let path = net.sim.with_node::<TestClientNode, _>(clients[0], |n, _| {
        circs[0].map(|h| n.tor.circuit_path(h)).unwrap_or_default()
    });
    let victim = path
        .iter()
        .find_map(|fp| {
            net.relays[1..]
                .iter()
                .find(|(_, f)| f == fp)
                .map(|(id, _)| *id)
        })
        .unwrap_or(middles[0]);
    net.sim.inject_fault(secs(6), FaultAction::Crash(victim));
    net.sim.inject_fault(secs(10), FaultAction::Restart(victim));

    let mut run = FaultRun {
        events: 0,
        delivered: 0,
        rebuilds: 0,
        msgs_dropped: 0,
        crashes: 0,
        restarts: 0,
    };
    // The web server keeps streams open, so "download complete" is the full
    // page having arrived, not a StreamEnded.
    let mut busy = vec![false; clients.len()];
    let mut got = vec![0u64; clients.len()];
    while net.sim.now() < secs(30) {
        let now = net.sim.now();
        net.sim.run_until(now + SimDuration::from_millis(500));
        for (i, &c) in clients.iter().enumerate() {
            let events = net
                .sim
                .with_node::<TestClientNode, _>(c, |n, _| n.take_events());
            for ev in events {
                match ev {
                    TorEvent::StreamData(_, _, d) => {
                        run.delivered += d.len() as u64;
                        got[i] += d.len() as u64;
                        if got[i] >= 20_000 {
                            busy[i] = false;
                        }
                    }
                    TorEvent::StreamEnded(..) => busy[i] = false,
                    TorEvent::CircuitRebuilt(old, new) => {
                        run.rebuilds += 1;
                        if circs[i] == Some(old) {
                            circs[i] = Some(new);
                            busy[i] = false;
                        }
                    }
                    TorEvent::CircuitClosed(h) if circs[i] == Some(h) => busy[i] = false,
                    _ => {}
                }
            }
            let Some(h) = circs[i] else { continue };
            if !busy[i] {
                got[i] = 0;
                busy[i] = net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
                    if !n.tor.is_ready(h) {
                        return false;
                    }
                    match n
                        .tor
                        .open_stream(ctx, h, StreamTarget::Node(server, HTTP_PORT))
                    {
                        Some(s) => {
                            n.tor.send_stream(ctx, h, s, &encode_frame(b"/"));
                            true
                        }
                        None => false,
                    }
                });
            }
        }
    }
    let stats = net.sim.stats();
    let faults = net.sim.fault_stats();
    run.events = stats.events;
    run.msgs_dropped = faults.msgs_dropped;
    run.crashes = faults.crashes;
    run.restarts = faults.restarts;
    run
}

#[test]
fn fault_plan_chaos_recovers_and_is_deterministic() {
    let a = run_fault_plan(404);
    // The faults really happened ...
    assert_eq!(a.crashes, 1, "{a:?}");
    assert_eq!(a.restarts, 1, "{a:?}");
    assert!(a.msgs_dropped > 0, "loss/partition dropped messages: {a:?}");
    // ... and the clients recovered from them: the crashed guard's circuit
    // came back, and goodput under 5% loss is nonzero.
    assert!(a.rebuilds >= 1, "managed circuit rebuilt: {a:?}");
    assert!(a.delivered > 0, "goodput under faults: {a:?}");
    // Same seed, same fault plan -> byte-identical outcome.
    let b = run_fault_plan(404);
    assert_eq!(a, b, "fault-plane runs replay deterministically");
}

// ---------------------------------------------------------------------------
// Hidden-service intro recovery: a service must re-establish intro circuits
// that die *after* `start()`. Crash both intro relays and leave them dead;
// the service has to pick fresh relays, republish its descriptor, and serve
// a client that only shows up after the crash.
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq, Eq)]
struct IntroCrashRun {
    events: u64,
    rebuilds: u64,
    echoed: Vec<u8>,
}

fn run_intro_crash(seed: u64) -> IntroCrashRun {
    let mut net = NetworkBuilder::new()
        .seed(seed)
        .middles(10)
        .hsdirs(2)
        .build();
    let service = {
        let hs = HiddenServiceHost::new([0x77; 32], 2, true);
        let node = TestClientNode::new(net.authority, net.authority_key).with_hs(hs);
        net.sim
            .add_node("service", simnet::Iface::datacenter(), Box::new(node))
    };
    net.sim.run_until(secs(6));
    let (onion, old_intros) = net.sim.with_node::<TestClientNode, _>(service, |n, _| {
        let hs = n.hs.as_ref().unwrap();
        assert!(hs.is_published(), "service published before the crash");
        assert_eq!(hs.intro_established(), 2, "both intro circuits up");
        (hs.onion_addr(), hs.intro_points())
    });
    // Crash BOTH intro relays. No restart: the replacements must be relays
    // the service was not previously using.
    for fp in &old_intros {
        let id = net
            .relays
            .iter()
            .find(|(_, f)| f == fp)
            .map(|(id, _)| *id)
            .expect("intro relay maps to a simnet node");
        net.sim.inject_fault(secs(7), FaultAction::Crash(id));
    }
    net.sim.run_until(secs(14));
    let (rebuilds, new_intros, established) =
        net.sim.with_node::<TestClientNode, _>(service, |n, _| {
            let hs = n.hs.as_ref().unwrap();
            (hs.intro_rebuilds, hs.intro_points(), hs.intro_established())
        });
    assert!(rebuilds >= 2, "both intro circuits rebuilt: {rebuilds}");
    assert_eq!(established, 2, "intro set fully re-established");
    for fp in &new_intros {
        assert!(
            !old_intros.contains(fp),
            "replacement intro points avoid the dead relays"
        );
    }
    // A client that only appears after the crash can only learn the *new*
    // intro points from the republished descriptor — if the republish didn't
    // happen, the rendezvous below can never complete.
    let client = net.add_client("late");
    net.sim
        .with_node::<TestClientNode, _>(service, |n, _| n.echo = true);
    net.sim.run_until(secs(18));
    let rendezvous = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        n.tor
            .connect_onion(ctx, onion)
            .expect("onion connection after the crash")
    });
    net.sim.run_until(secs(26));
    let stream = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        assert!(
            n.has_event(|e| matches!(e, TorEvent::RendezvousReady(h) if *h == rendezvous)),
            "rendezvous through a rebuilt intro point; events: {:?}",
            n.events
        );
        n.tor
            .open_stream(ctx, rendezvous, StreamTarget::Hs(HS_VIRTUAL_PORT))
            .expect("stream on the rendezvous circuit")
    });
    net.sim.run_until(secs(30));
    net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        n.tor.send_stream(ctx, rendezvous, stream, b"still there?");
    });
    net.sim.run_until(secs(36));
    let echoed = net
        .sim
        .with_node::<TestClientNode, _>(client, |n, _| n.stream_bytes(rendezvous, stream));
    IntroCrashRun {
        events: net.sim.stats().events,
        rebuilds,
        echoed,
    }
}

#[test]
fn hs_intro_circuits_rebuild_after_relay_crash() {
    let a = run_intro_crash(808);
    assert_eq!(
        a.echoed, b"still there?",
        "data flows through the recovered service"
    );
    // Same seed -> byte-identical recovery.
    let b = run_intro_crash(808);
    assert_eq!(a, b, "intro recovery replays deterministically");
}
