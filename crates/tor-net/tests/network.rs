//! End-to-end tests of the Tor overlay: bootstrap, circuits, exit streams,
//! directory streams, cover traffic, hidden services, and flow control.

use simnet::{SimDuration, SimTime};
use tor_net::client::TerminalReq;
use tor_net::dir::DirMsg;
use tor_net::netbuild::{NetworkBuilder, TestClientNode};
use tor_net::ports::{HS_VIRTUAL_PORT, HTTP_PORT};
use tor_net::stream_frame::encode_frame;
use tor_net::{HiddenServiceHost, StreamTarget, TorEvent};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

#[test]
fn client_bootstraps_and_verifies_consensus() {
    let mut net = NetworkBuilder::new().build();
    let client = net.add_client("alice");
    net.sim.run_until(secs(2));
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        assert!(n.has_event(|e| matches!(e, TorEvent::ConsensusReady)));
        let cons = n.tor.consensus().expect("consensus");
        // authority + 6 middles + 3 exits + 2 hsdirs
        assert_eq!(cons.relays.len(), 12);
    });
}

#[test]
fn three_hop_circuit_builds() {
    let mut net = NetworkBuilder::new().seed(11).build();
    let client = net.add_client("alice");
    net.sim.run_until(secs(2));
    let circ = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        let path = n.tor.select_path(ctx, TerminalReq::Any).expect("path");
        assert_eq!(path.len(), 3);
        n.tor.build_circuit(ctx, path).expect("build started")
    });
    net.sim.run_until(secs(4));
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        assert!(n.tor.is_ready(circ), "circuit should be ready");
        assert_eq!(n.tor.hops(circ), 3);
    });
}

#[test]
fn exit_stream_fetches_web_page() {
    let mut net = NetworkBuilder::new().seed(13).build();
    let page = vec![vec![7u8; 20_000]];
    let server = net.add_web_server("web", vec![("/index".to_string(), page)]);
    let client = net.add_client("alice");
    net.sim.run_until(secs(2));
    let circ = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        let path = n
            .tor
            .select_path(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
            .expect("exit path");
        n.tor.build_circuit(ctx, path).unwrap()
    });
    net.sim.run_until(secs(4));
    let stream = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        assert!(n.tor.is_ready(circ));

        n.tor
            .open_stream(ctx, circ, StreamTarget::Node(server, HTTP_PORT))
            .expect("stream")
    });
    net.sim.run_until(secs(5));
    net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        assert!(n.has_event(
            |e| matches!(e, TorEvent::StreamConnected(c, s) if *c == circ && *s == stream)
        ));
        n.tor
            .send_stream(ctx, circ, stream, &encode_frame(b"/index"));
    });
    net.sim.run_until(secs(30));
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        let bytes = n.stream_bytes(circ, stream);
        // frame header + 20 KB page
        assert!(
            bytes.len() >= 20_000,
            "got {} bytes of the page back",
            bytes.len()
        );
    });
}

#[test]
fn exit_policy_refuses_disallowed_port() {
    let mut net = NetworkBuilder::new().seed(17).build();
    let server = net.add_web_server("web", vec![]);
    let client = net.add_client("alice");
    net.sim.run_until(secs(2));
    let circ = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        let path = n
            .tor
            .select_path(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
            .unwrap();
        n.tor.build_circuit(ctx, path).unwrap()
    });
    net.sim.run_until(secs(4));
    let stream = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        // Port 22 is not in the web-only exit policy.
        n.tor
            .open_stream(ctx, circ, StreamTarget::Node(server, 22))
            .expect("stream id allocated")
    });
    net.sim.run_until(secs(6));
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        assert!(
            n.stream_ended(circ, stream),
            "policy-violating stream must be refused with END"
        );
        assert!(!n.has_event(
            |e| matches!(e, TorEvent::StreamConnected(c, s) if *c == circ && *s == stream)
        ));
    });
}

#[test]
fn dir_stream_fetches_consensus_anonymously() {
    let mut net = NetworkBuilder::new().seed(19).build();
    let authority_fp = net.relays[0].1;
    let client = net.add_client("alice");
    net.sim.run_until(secs(2));
    let circ = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        let path = n
            .tor
            .select_path(ctx, TerminalReq::Specific(authority_fp))
            .unwrap();
        n.tor.build_circuit(ctx, path).unwrap()
    });
    net.sim.run_until(secs(4));
    net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        n.tor.dir_request(ctx, circ, DirMsg::FetchConsensus);
    });
    net.sim.run_until(secs(10));
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        assert!(n.has_event(|e| matches!(
            e,
            TorEvent::DirResponse(c, _, DirMsg::ConsensusResp(bytes)) if *c == circ && !bytes.is_empty()
        )));
    });
}

#[test]
fn cover_drop_cells_are_absorbed() {
    let mut net = NetworkBuilder::new().seed(23).build();
    let client = net.add_client("alice");
    net.sim.run_until(secs(2));
    let circ = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        let path = n.tor.select_path(ctx, TerminalReq::Any).unwrap();
        n.tor.build_circuit(ctx, path).unwrap()
    });
    net.sim.run_until(secs(4));
    net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        assert!(n.tor.is_ready(circ));
        for _ in 0..50 {
            n.tor.send_drop(ctx, circ);
        }
    });
    let before = net.sim.stats().msgs_delivered;
    net.sim.run_until(secs(8));
    let after = net.sim.stats().msgs_delivered;
    // The 50 drop cells crossed three links each but produced no stream
    // events at the client.
    assert!(after - before >= 150, "drops traverse the circuit");
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        assert!(!n.has_event(|e| matches!(e, TorEvent::StreamData(..))));
    });
}

#[test]
fn hidden_service_end_to_end() {
    let mut net = NetworkBuilder::new().seed(29).middles(8).build();
    // Service host.
    let service = {
        let hs = HiddenServiceHost::new([0x55; 32], 3, true);
        let node = TestClientNode::new(net.authority, net.authority_key).with_hs(hs);
        net.sim
            .add_node("service", simnet::Iface::datacenter(), Box::new(node))
    };
    let client = net.add_client("alice");
    // Let the service publish.
    net.sim.run_until(secs(6));
    let onion = net.sim.with_node::<TestClientNode, _>(service, |n, _| {
        let hs = n.hs.as_ref().unwrap();
        assert!(hs.is_published(), "descriptor should be published");
        hs.onion_addr()
    });
    // Client connects.
    let rendezvous = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        n.tor.connect_onion(ctx, onion).expect("onion connection")
    });
    net.sim.run_until(secs(12));
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        assert!(
            n.has_event(|e| matches!(e, TorEvent::RendezvousReady(h) if *h == rendezvous)),
            "rendezvous must complete; events: {:?}",
            n.events
        );
        // 3 relay hops + 1 virtual e2e hop.
        assert_eq!(n.tor.hops(rendezvous), 4);
    });
    // Open a stream and exchange data (service echoes).
    let stream = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        n.tor
            .open_stream(ctx, rendezvous, StreamTarget::Hs(HS_VIRTUAL_PORT))
            .expect("stream")
    });
    net.sim.with_node::<TestClientNode, _>(service, |n, _| {
        n.echo = true;
    });
    net.sim.run_until(secs(16));
    net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        assert!(n.has_event(
            |e| matches!(e, TorEvent::StreamConnected(c, s) if *c == rendezvous && *s == stream)
        ));
        n.tor
            .send_stream(ctx, rendezvous, stream, b"hello hidden world");
    });
    net.sim.run_until(secs(22));
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        assert_eq!(
            n.stream_bytes(rendezvous, stream),
            b"hello hidden world",
            "echo through 6 relays + e2e crypto"
        );
    });
}

#[test]
fn hidden_service_bulk_transfer_with_flow_control() {
    let mut net = NetworkBuilder::new().seed(31).middles(8).build();
    let service = {
        let hs = HiddenServiceHost::new([0x66; 32], 2, true);
        let mut node = TestClientNode::new(net.authority, net.authority_key).with_hs(hs);
        node.serve_bytes = Some(600_000); // > one circuit window of cells
        net.sim
            .add_node("service", simnet::Iface::datacenter(), Box::new(node))
    };
    let _ = service;
    let client = net.add_client("alice");
    net.sim.run_until(secs(6));
    let onion = net.sim.with_node::<TestClientNode, _>(service, |n, _| {
        assert!(n.hs.as_ref().unwrap().is_published());
        n.hs.as_ref().unwrap().onion_addr()
    });
    let rendezvous = net
        .sim
        .with_node::<TestClientNode, _>(client, |n, ctx| n.tor.connect_onion(ctx, onion).unwrap());
    net.sim.run_until(secs(12));
    let stream = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        assert!(n.has_event(|e| matches!(e, TorEvent::RendezvousReady(h) if *h == rendezvous)));
        n.tor
            .open_stream(ctx, rendezvous, StreamTarget::Hs(HS_VIRTUAL_PORT))
            .unwrap()
    });
    net.sim.run_until(secs(14));
    net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        n.tor.send_stream(ctx, rendezvous, stream, b"GET");
    });
    net.sim.run_until(secs(120));
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        let got = n.stream_bytes(rendezvous, stream).len();
        assert_eq!(
            got, 600_000,
            "the full file must arrive despite the 1000-cell window"
        );
    });
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut net = NetworkBuilder::new().seed(41).build();
        let server = net.add_web_server("web", vec![("/".to_string(), vec![vec![1u8; 50_000]])]);
        let client = net.add_client("alice");
        net.sim.run_until(secs(2));
        let circ = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
            let path = n
                .tor
                .select_path(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
                .unwrap();
            n.tor.build_circuit(ctx, path).unwrap()
        });
        net.sim.run_until(secs(4));
        let stream = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
            let s = n
                .tor
                .open_stream(ctx, circ, StreamTarget::Node(server, HTTP_PORT))
                .unwrap();
            n.tor.send_stream(ctx, circ, s, &encode_frame(b"/"));
            s
        });
        net.sim.run_until(secs(60));
        let events = net.sim.stats().events;
        let bytes = net
            .sim
            .with_node::<TestClientNode, _>(client, |n, _| n.stream_bytes(circ, stream).len());
        (events, bytes)
    };
    assert_eq!(run(), run());
}

#[test]
fn pow_gated_service_rejects_unpaid_introductions() {
    use tor_net::hs::{check_pow, solve_pow};
    // The puzzle primitive behaves.
    let cookie = [7u8; 20];
    let nonce = solve_pow(&cookie, 8);
    assert!(check_pow(&cookie, nonce, 8));
    assert!(!check_pow(&cookie, nonce.wrapping_add(1), 16) || nonce == u64::MAX);

    // A service requiring 8 bits of work.
    let mut net = NetworkBuilder::new().seed(47).middles(8).build();
    let service = {
        let hs = HiddenServiceHost::new([0x77; 32], 2, true).with_pow(8);
        let node = TestClientNode::new(net.authority, net.authority_key).with_hs(hs);
        net.sim
            .add_node("service", simnet::Iface::datacenter(), Box::new(node))
    };
    let freeloader = net.add_client("freeloader");
    let payer = net.add_client("payer");
    net.sim.run_until(secs(6));
    let onion = net.sim.with_node::<TestClientNode, _>(service, |n, _| {
        assert!(n.hs.as_ref().unwrap().is_published());
        n.hs.as_ref().unwrap().onion_addr()
    });
    // The freeloader introduces without solving the puzzle.
    let r_free = net
        .sim
        .with_node::<TestClientNode, _>(freeloader, |n, ctx| {
            n.tor.connect_onion(ctx, onion).unwrap()
        });
    // The payer attaches the proof of work.
    let r_paid = net.sim.with_node::<TestClientNode, _>(payer, |n, ctx| {
        n.tor.connect_onion_with_pow(ctx, onion, 8).unwrap()
    });
    net.sim.run_until(secs(15));
    net.sim.with_node::<TestClientNode, _>(freeloader, |n, _| {
        assert!(
            !n.has_event(|e| matches!(e, TorEvent::RendezvousReady(h) if *h == r_free)),
            "unpaid introduction must be dropped"
        );
    });
    net.sim.with_node::<TestClientNode, _>(payer, |n, _| {
        assert!(
            n.has_event(|e| matches!(e, TorEvent::RendezvousReady(h) if *h == r_paid)),
            "paid introduction completes: {:?}",
            n.events
        );
    });
    net.sim.with_node::<TestClientNode, _>(service, |n, _| {
        assert_eq!(n.hs.as_ref().unwrap().pow_rejections, 1);
    });
}

#[test]
fn destroy_circuit_tears_down_exit_stream() {
    let mut net = NetworkBuilder::new().seed(53).build();
    let server = net.add_web_server("web", vec![("/".to_string(), vec![vec![1u8; 6_000_000]])]);
    let client = net.add_client("alice");
    net.sim.run_until(secs(2));
    let circ = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        let path = n
            .tor
            .select_path(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
            .unwrap();
        n.tor.build_circuit(ctx, path).unwrap()
    });
    net.sim.run_until(secs(4));
    let stream = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        let s = n
            .tor
            .open_stream(ctx, circ, StreamTarget::Node(server, HTTP_PORT))
            .unwrap();
        n.tor.send_stream(ctx, circ, s, &encode_frame(b"/"));
        s
    });
    // Let a little data flow, then kill the circuit mid-download.
    net.sim.run_until(secs(5));
    let got_before = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        let g = n.stream_bytes(circ, stream).len();
        n.tor.destroy_circuit(ctx, circ);
        g
    });
    net.sim.run_until(secs(8));
    let shortly_after = net
        .sim
        .with_node::<TestClientNode, _>(client, |n, _| n.stream_bytes(circ, stream).len());
    net.sim.run_until(secs(30));
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        let got_after = n.stream_bytes(circ, stream).len();
        assert!(got_before < 6_000_000, "download was still in flight");
        assert_eq!(
            got_after, shortly_after,
            "no data arrives after teardown settles"
        );
        assert!(got_after < 6_000_000, "download did not complete");
    });
}

#[test]
fn concurrent_clients_share_relays() {
    let mut net = NetworkBuilder::new().seed(59).middles(3).exits(1).build();
    let server = net.add_web_server("web", vec![("/".to_string(), vec![vec![9u8; 60_000]])]);
    // With one exit, both clients' circuits MUST share the exit relay and
    // its OR links, exercising circuit-id multiplexing.
    let a = net.add_client("alice");
    let b = net.add_client("bob");
    net.sim.run_until(secs(2));
    let mut handles = Vec::new();
    for &c in &[a, b] {
        let (circ, stream) = net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
            let path = n
                .tor
                .select_path(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
                .unwrap();
            let circ = n.tor.build_circuit(ctx, path).unwrap();
            (circ, 0u16)
        });
        handles.push((c, circ, stream));
    }
    net.sim.run_until(secs(4));
    for h in handles.iter_mut() {
        let (c, circ) = (h.0, h.1);
        h.2 = net.sim.with_node::<TestClientNode, _>(c, |n, ctx| {
            let s = n
                .tor
                .open_stream(ctx, circ, StreamTarget::Node(server, HTTP_PORT))
                .unwrap();
            n.tor.send_stream(ctx, circ, s, &encode_frame(b"/"));
            s
        });
    }
    net.sim.run_until(secs(40));
    for &(c, circ, stream) in &handles {
        net.sim.with_node::<TestClientNode, _>(c, |n, _| {
            assert!(
                n.stream_bytes(circ, stream).len() >= 60_000,
                "client {c:?} completed through shared relays"
            );
        });
    }
}

#[test]
fn many_sequential_circuits_on_one_client() {
    // Circuit-id allocation and teardown across a long session.
    let mut net = NetworkBuilder::new().seed(61).build();
    let client = net.add_client("alice");
    net.sim.run_until(secs(2));
    let mut handles = Vec::new();
    for i in 0..12 {
        let circ = net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
            let path = n.tor.select_path(ctx, TerminalReq::Any).unwrap();
            n.tor.build_circuit(ctx, path).unwrap()
        });
        net.sim.run_until(secs(4 + i));
        net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
            assert!(n.tor.is_ready(circ), "circuit {i} ready");
            if i % 2 == 0 {
                n.tor.destroy_circuit(ctx, circ);
            }
        });
        handles.push(circ);
    }
    // Destroyed circuits report not-ready; surviving ones stay usable.
    net.sim.run_until(secs(20));
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        for (i, &h) in handles.iter().enumerate() {
            assert_eq!(n.tor.is_ready(h), i % 2 == 1, "circuit {i}");
        }
    });
}

#[test]
fn path_avoidance_never_touches_avoided_relays() {
    // §9.4 geographical avoidance, client side: map a "region" to a set of
    // fingerprints and verify no selected path ever includes them.
    let mut net = NetworkBuilder::new().seed(67).middles(8).exits(3).build();
    let client = net.add_client("alice");
    net.sim.run_until(secs(2));
    // Declare the authority plus two middles as the forbidden region.
    let region: Vec<_> = vec![net.relays[0].1, net.relays[1].1, net.relays[2].1];
    net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        for _ in 0..50 {
            let path = n
                .tor
                .select_path_avoiding(ctx, TerminalReq::Any, &region)
                .expect("compliant path exists");
            for hop in &path {
                assert!(!region.contains(hop), "avoided relay in path");
            }
        }
        // Fail closed: a Specific target inside the region is refused.
        assert!(n
            .tor
            .select_path_avoiding(ctx, TerminalReq::Specific(region[0]), &region)
            .is_none());
        // Avoiding everything leaves no path.
        let everything: Vec<_> = n
            .tor
            .consensus()
            .unwrap()
            .relays
            .iter()
            .map(|r| r.fingerprint)
            .collect();
        assert!(n
            .tor
            .select_path_avoiding(ctx, TerminalReq::Any, &everything)
            .is_none());
    });
}

#[test]
fn excluded_relay_never_chosen_as_guard() {
    let mut net = NetworkBuilder::new().seed(71).middles(6).build();
    let client = net.add_client("alice");
    net.sim.run_until(secs(2));
    let banned = net.relays[1].1;
    net.sim.with_node::<TestClientNode, _>(client, |n, ctx| {
        n.tor.exclude_relay(banned);
        let mut saw_banned_elsewhere = false;
        for _ in 0..100 {
            let path = n.tor.select_path(ctx, TerminalReq::Any).unwrap();
            assert_ne!(path[0], banned, "excluded relay used as guard");
            if path[1] == banned || path[2] == banned {
                saw_banned_elsewhere = true;
            }
        }
        // The exclusion is guard-only by design (loopback avoidance).
        assert!(
            saw_banned_elsewhere,
            "exclusion should not bar later hops (seed-dependent but \
             overwhelmingly likely across 100 draws)"
        );
    });
}

#[test]
fn replayed_introduction_is_dropped() {
    // A malicious introduction point replaying an INTRODUCE2 must not make
    // the service answer twice.
    let mut net = NetworkBuilder::new().seed(73).middles(8).build();
    let service = {
        let hs = HiddenServiceHost::new([0x88; 32], 2, false); // manual mode
        let node = TestClientNode::new(net.authority, net.authority_key).with_hs(hs);
        net.sim
            .add_node("service", simnet::Iface::datacenter(), Box::new(node))
    };
    let client = net.add_client("alice");
    net.sim.run_until(secs(6));
    let onion = net.sim.with_node::<TestClientNode, _>(service, |n, _| {
        assert!(n.hs.as_ref().unwrap().is_published());
        n.hs.as_ref().unwrap().onion_addr()
    });
    let r = net
        .sim
        .with_node::<TestClientNode, _>(client, |n, ctx| n.tor.connect_onion(ctx, onion).unwrap());
    net.sim.run_until(secs(10));
    // Manual mode surfaced the introduction; process it once, then replay.
    let blob = net.sim.with_node::<TestClientNode, _>(service, |n, _| {
        n.hs_events.iter().find_map(|e| match e {
            tor_net::HsEvent::Introduction(b) => Some(b.clone()),
            _ => None,
        })
    });
    let blob = blob.expect("introduction surfaced");
    net.sim.with_node::<TestClientNode, _>(service, |n, ctx| {
        let (hs, tor) = (n.hs.as_mut().unwrap(), &mut n.tor);
        assert!(hs.handle_introduction(ctx, tor, &blob), "first is answered");
        assert!(
            !hs.handle_introduction(ctx, tor, &blob),
            "replay is dropped"
        );
        assert_eq!(hs.replay_rejections, 1);
    });
    net.sim.run_until(secs(16));
    net.sim.with_node::<TestClientNode, _>(client, |n, _| {
        assert!(n.has_event(|e| matches!(e, TorEvent::RendezvousReady(h) if *h == r)));
    });
}
