//! Property-based tests: cell/frame codecs, onion-layer roundtrips, and
//! directory document robustness under arbitrary inputs.

use onion_crypto::ntor::CircuitKeys;
use proptest::prelude::*;
use tor_net::cell::{Cell, RelayCell, RelayCmd, MAX_RELAY_DATA};
use tor_net::dir::{DirMsg, HsDescriptor, RelayInfo, SignedConsensus};
use tor_net::relay_crypto::{CircuitCrypto, LayerCrypto};
use tor_net::stream_frame::{encode_frame, FrameAssembler};

fn keys(tag: u8) -> CircuitKeys {
    CircuitKeys {
        kf: [tag; 32],
        kb: [tag ^ 0xFF; 32],
        df: [tag.wrapping_add(1); 32],
        db: [tag.wrapping_add(2); 32],
        nf: [tag; 12],
        nb: [tag ^ 0xFF; 12],
    }
}

proptest! {
    /// Any relay cell roundtrips through the payload codec.
    #[test]
    fn relay_cell_roundtrip(stream: u16,
                            data in proptest::collection::vec(any::<u8>(), 0..MAX_RELAY_DATA)) {
        let rc = RelayCell::new(RelayCmd::Data, stream, data);
        let payload = rc.encode_payload();
        prop_assert_eq!(RelayCell::parse_payload(&payload).unwrap(), rc);
    }

    /// Cell decode never panics on arbitrary bytes.
    #[test]
    fn cell_decode_robust(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Cell::decode(&bytes);
    }

    /// A cell sealed for any hop of a 1–4 hop circuit is recognized exactly
    /// there, and nowhere earlier.
    #[test]
    fn onion_layers_target_exact_hop(n_hops in 1usize..5, target in 0usize..5,
                                     data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let target = target % n_hops;
        let mut client = CircuitCrypto::new();
        let mut relays = Vec::new();
        for t in 0..n_hops {
            let k = keys(t as u8 + 1);
            client.push_hop(LayerCrypto::client_side(&k));
            relays.push(LayerCrypto::relay_side(&k));
        }
        let rc = RelayCell::new(RelayCmd::Data, 1, data);
        let mut payload = rc.encode_payload();
        client.seal_for_hop(target, &mut payload);
        for (i, relay) in relays.iter_mut().enumerate().take(target + 1) {
            let recognized = relay.unseal(&mut payload);
            prop_assert_eq!(recognized, i == target, "hop {}", i);
        }
        prop_assert_eq!(RelayCell::parse_payload(&payload).unwrap(), rc);
    }

    /// Frames survive arbitrary re-chunking through the assembler.
    #[test]
    fn frames_survive_chunking(frames in proptest::collection::vec(
                                   proptest::collection::vec(any::<u8>(), 0..300), 0..8),
                               chunk in 1usize..97) {
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            asm.push(piece);
            got.extend(asm.drain_frames());
        }
        prop_assert_eq!(got, frames);
    }

    /// Directory decoders never panic on garbage.
    #[test]
    fn dir_decoders_robust(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = DirMsg::decode(&bytes);
        let _ = RelayInfo::decode(&bytes);
        let _ = SignedConsensus::decode(&bytes);
        let _ = HsDescriptor::decode_verified(&bytes);
    }
}
