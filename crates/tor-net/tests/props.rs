//! Property-based tests: cell/frame codecs, onion-layer roundtrips, and
//! directory document robustness under arbitrary inputs.

use onion_crypto::ntor::CircuitKeys;
use proptest::prelude::*;
use tor_net::cell::{Cell, RelayCell, RelayCmd, MAX_RELAY_DATA, PAYLOAD_LEN};
use tor_net::dir::{DirMsg, HsDescriptor, RelayInfo, SignedConsensus};
use tor_net::relay_crypto::{CircuitCrypto, LayerCrypto};
use tor_net::stream_frame::{encode_frame, FrameAssembler};

fn keys(tag: u8) -> CircuitKeys {
    CircuitKeys {
        kf: [tag; 32],
        kb: [tag ^ 0xFF; 32],
        df: [tag.wrapping_add(1); 32],
        db: [tag.wrapping_add(2); 32],
        nf: [tag; 12],
        nb: [tag ^ 0xFF; 12],
    }
}

proptest! {
    /// Any relay cell roundtrips through the payload codec.
    #[test]
    fn relay_cell_roundtrip(stream: u16,
                            data in proptest::collection::vec(any::<u8>(), 0..MAX_RELAY_DATA)) {
        let rc = RelayCell::new(RelayCmd::Data, stream, data);
        let payload = rc.encode_payload();
        prop_assert_eq!(RelayCell::parse_payload(&payload).unwrap(), rc);
    }

    /// Cell decode never panics on arbitrary bytes.
    #[test]
    fn cell_decode_robust(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Cell::decode(&bytes);
    }

    /// A cell sealed for any hop of a 1–4 hop circuit is recognized exactly
    /// there, and nowhere earlier.
    #[test]
    fn onion_layers_target_exact_hop(n_hops in 1usize..5, target in 0usize..5,
                                     data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let target = target % n_hops;
        let mut client = CircuitCrypto::new();
        let mut relays = Vec::new();
        for t in 0..n_hops {
            let k = keys(t as u8 + 1);
            client.push_hop(LayerCrypto::client_side(&k));
            relays.push(LayerCrypto::relay_side(&k));
        }
        let rc = RelayCell::new(RelayCmd::Data, 1, data);
        let mut payload = rc.encode_payload();
        client.seal_for_hop(target, &mut payload);
        for (i, relay) in relays.iter_mut().enumerate().take(target + 1) {
            let recognized = relay.unseal(&mut payload);
            prop_assert_eq!(recognized, i == target, "hop {}", i);
        }
        prop_assert_eq!(RelayCell::parse_payload(&payload).unwrap(), rc);
    }

    /// Frames survive arbitrary re-chunking through the assembler.
    #[test]
    fn frames_survive_chunking(frames in proptest::collection::vec(
                                   proptest::collection::vec(any::<u8>(), 0..300), 0..8),
                               chunk in 1usize..97) {
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            asm.push(piece);
            got.extend(asm.drain_frames());
        }
        prop_assert_eq!(got, frames);
    }

    /// Directory decoders never panic on garbage.
    #[test]
    fn dir_decoders_robust(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = DirMsg::decode(&bytes);
        let _ = RelayInfo::decode(&bytes);
        let _ = SignedConsensus::decode(&bytes);
        let _ = HsDescriptor::decode_verified(&bytes);
    }

    /// Batched unseal over maximal same-circuit runs is byte-identical to
    /// cell-at-a-time unseal — recognized flags AND payload bytes — for
    /// mixed-circuit arrival orders on one link, with digest-corrupted
    /// cells rejected at the same index in both arms. The `picks` vector
    /// drives which circuit each cell belongs to, so run shapes range from
    /// all-singletons to one maximal run, tails included.
    #[test]
    fn batched_unseal_matches_sequential(
        picks in proptest::collection::vec(any::<bool>(), 1..40),
        corrupt in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut senders = [LayerCrypto::client_side(&keys(1)), LayerCrypto::client_side(&keys(2))];
        let mut seq = [LayerCrypto::relay_side(&keys(1)), LayerCrypto::relay_side(&keys(2))];
        let mut bat = [LayerCrypto::relay_side(&keys(1)), LayerCrypto::relay_side(&keys(2))];
        bat[0].enable_batch();
        bat[1].enable_batch();

        // Seal each cell under its circuit, in arrival order; optionally
        // flip a ciphertext byte so the relay digest check must fail.
        let mut wire: Vec<(usize, [u8; PAYLOAD_LEN])> = Vec::new();
        for (i, &pick) in picks.iter().enumerate() {
            let circ = pick as usize;
            let rc = RelayCell::new(RelayCmd::Data, 1, vec![i as u8; 32]);
            let mut payload = rc.encode_payload();
            senders[circ].seal(&mut payload);
            if corrupt.get(i).copied().unwrap_or(false) {
                payload[20] ^= 0x41;
            }
            wire.push((circ, payload));
        }

        // Sequential arm: one unseal per cell, arrival order.
        let mut seq_out = wire.clone();
        let mut seq_flags = Vec::new();
        for (circ, payload) in seq_out.iter_mut() {
            seq_flags.push(seq[*circ].unseal(payload));
        }

        // Batched arm: maximal consecutive same-circuit runs, exactly how
        // the relay data plane forms them from a link drain.
        let mut bat_out = wire.clone();
        let mut bat_flags = vec![false; bat_out.len()];
        let mut i = 0;
        while i < bat_out.len() {
            let circ = bat_out[i].0;
            let mut j = i + 1;
            while j < bat_out.len() && bat_out[j].0 == circ {
                j += 1;
            }
            let mut refs: Vec<&mut [u8; PAYLOAD_LEN]> =
                bat_out[i..j].iter_mut().map(|(_, p)| p).collect();
            bat[circ].unseal_batch(&mut refs, &mut bat_flags[i..j]);
            i = j;
        }

        prop_assert_eq!(seq_flags, bat_flags);
        prop_assert_eq!(seq_out, bat_out);
    }

    /// Batched seal over arbitrary run splits — tail batches and
    /// single-cell runs included — matches cell-at-a-time seal byte for
    /// byte across the whole backward stream of one circuit.
    #[test]
    fn batched_seal_matches_sequential(sizes in proptest::collection::vec(1usize..12, 1..8)) {
        let mut seq = LayerCrypto::relay_side(&keys(7));
        let mut bat = LayerCrypto::relay_side(&keys(7));
        bat.enable_batch();
        let mut idx = 0u8;
        for run_len in sizes {
            let mut cells: Vec<[u8; PAYLOAD_LEN]> = (0..run_len)
                .map(|_| {
                    idx = idx.wrapping_add(1);
                    RelayCell::new(RelayCmd::Data, 3, vec![idx; 64]).encode_payload()
                })
                .collect();
            let mut seq_cells = cells.clone();
            for p in seq_cells.iter_mut() {
                seq.seal(p);
            }
            let mut refs: Vec<&mut [u8; PAYLOAD_LEN]> = cells.iter_mut().collect();
            bat.seal_batch(&mut refs);
            prop_assert_eq!(cells, seq_cells);
        }
    }
}
