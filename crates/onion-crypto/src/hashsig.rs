//! Hash-based few-time signatures: Winternitz one-time signatures (w = 16)
//! under a Merkle tree, in the style of XMSS.
//!
//! Directory authorities and hidden services in this reproduction sign
//! consensus documents and service descriptors. Rather than pull in (or
//! reimplement) a full elliptic-curve signature scheme, we use a hash-based
//! scheme built entirely on the SHA-256 module: genuinely unforgeable under
//! standard assumptions, simple to audit, and a few-time property (2^h
//! signatures per key) that fits the epoch-signed documents it is used for.

use crate::hmac::hmac_sha256;
use crate::sha256::{sha256_concat, DIGEST_LEN};

/// Winternitz parameter: 4 bits per chain.
const W_BITS: usize = 4;
const W: usize = 1 << W_BITS; // 16
/// Number of message chains (256-bit digest, 4 bits each).
const L1: usize = 256 / W_BITS; // 64
/// Number of checksum chains (max checksum 64*15 = 960 < 16^3).
const L2: usize = 3;
/// Total chains per one-time key.
const L: usize = L1 + L2; // 67

/// One signature: the Merkle leaf index, the WOTS chain values, and the
/// authentication path to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Which one-time key was used.
    pub leaf_index: u32,
    /// The 67 revealed chain values.
    pub wots: Vec<[u8; DIGEST_LEN]>,
    /// Sibling hashes from leaf to root.
    pub auth_path: Vec<[u8; DIGEST_LEN]>,
}

impl Signature {
    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + (self.wots.len() + self.auth_path.len()) * DIGEST_LEN + 2
    }

    /// Encode to bytes (leaf index, path length, chains, path).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.leaf_index.to_be_bytes());
        out.push(self.wots.len() as u8);
        out.push(self.auth_path.len() as u8);
        for c in &self.wots {
            out.extend_from_slice(c);
        }
        for a in &self.auth_path {
            out.extend_from_slice(a);
        }
        out
    }

    /// Decode from bytes; `None` on any structural problem.
    pub fn from_bytes(b: &[u8]) -> Option<Signature> {
        if b.len() < 6 {
            return None;
        }
        let leaf_index = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        let n_wots = b[4] as usize;
        let n_auth = b[5] as usize;
        if n_wots != L || n_auth > 32 {
            return None;
        }
        let need = 6 + (n_wots + n_auth) * DIGEST_LEN;
        if b.len() != need {
            return None;
        }
        let mut pos = 6;
        let mut take = || {
            let mut a = [0u8; DIGEST_LEN];
            a.copy_from_slice(&b[pos..pos + DIGEST_LEN]);
            pos += DIGEST_LEN;
            a
        };
        let wots = (0..n_wots).map(|_| take()).collect();
        let auth_path = (0..n_auth).map(|_| take()).collect();
        Some(Signature {
            leaf_index,
            wots,
            auth_path,
        })
    }
}

/// Split a digest into 4-bit digits plus checksum digits.
fn digits(msg_digest: &[u8; DIGEST_LEN]) -> [u8; L] {
    let mut d = [0u8; L];
    for (i, byte) in msg_digest.iter().enumerate() {
        d[2 * i] = byte >> 4;
        d[2 * i + 1] = byte & 0x0f;
    }
    let checksum: u32 = d[..L1].iter().map(|&x| (W - 1) as u32 - x as u32).sum();
    d[L1] = ((checksum >> 8) & 0x0f) as u8;
    d[L1 + 1] = ((checksum >> 4) & 0x0f) as u8;
    d[L1 + 2] = (checksum & 0x0f) as u8;
    d
}

/// The chain step function.
fn step(x: &[u8; DIGEST_LEN]) -> [u8; DIGEST_LEN] {
    sha256_concat(&[b"bento-wots-chain", x])
}

/// Apply `n` chain steps.
fn chain(mut x: [u8; DIGEST_LEN], n: usize) -> [u8; DIGEST_LEN] {
    for _ in 0..n {
        x = step(&x);
    }
    x
}

/// Secret chain start for (leaf, chain) from the key seed.
fn sk_element(seed: &[u8; 32], leaf: u32, chain_idx: usize) -> [u8; DIGEST_LEN] {
    let mut info = [0u8; 8];
    info[..4].copy_from_slice(&leaf.to_be_bytes());
    info[4..].copy_from_slice(&(chain_idx as u32).to_be_bytes());
    hmac_sha256(seed, &info)
}

/// Compress the 67 chain tops into a leaf hash.
fn leaf_hash(tops: &[[u8; DIGEST_LEN]]) -> [u8; DIGEST_LEN] {
    let mut parts: Vec<&[u8]> = Vec::with_capacity(tops.len() + 1);
    parts.push(b"bento-wots-leaf");
    for t in tops {
        parts.push(t);
    }
    sha256_concat(&parts)
}

fn node_hash(left: &[u8; DIGEST_LEN], right: &[u8; DIGEST_LEN]) -> [u8; DIGEST_LEN] {
    sha256_concat(&[b"bento-merkle-node", left, right])
}

/// A signing key: a seed, a signature budget of `2^height`, and the
/// precomputed Merkle tree.
pub struct MerkleSigner {
    seed: [u8; 32],
    height: usize,
    /// tree[0] = leaves, tree[h] = [root]
    tree: Vec<Vec<[u8; DIGEST_LEN]>>,
    next_leaf: u32,
}

/// The verification key: the Merkle root and tree height.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MerkleVerifyKey {
    /// Merkle root committing to all one-time public keys.
    pub root: [u8; DIGEST_LEN],
    /// Tree height (`2^height` signatures available).
    pub height: u8,
}

impl MerkleSigner {
    /// Generate a signer from a seed. `height` of 4–8 is typical; keygen cost
    /// is `2^height * 67 * 16` hashes.
    pub fn generate(seed: [u8; 32], height: usize) -> Self {
        assert!((1..=16).contains(&height), "unreasonable tree height");
        let n_leaves = 1usize << height;
        let mut leaves = Vec::with_capacity(n_leaves);
        for leaf in 0..n_leaves {
            let tops: Vec<[u8; DIGEST_LEN]> = (0..L)
                .map(|c| chain(sk_element(&seed, leaf as u32, c), W - 1))
                .collect();
            leaves.push(leaf_hash(&tops));
        }
        let mut tree = vec![leaves];
        for level in 0..height {
            let prev = &tree[level];
            let next: Vec<[u8; DIGEST_LEN]> = prev
                .chunks(2)
                .map(|pair| node_hash(&pair[0], &pair[1]))
                .collect();
            tree.push(next);
        }
        MerkleSigner {
            seed,
            height,
            tree,
            next_leaf: 0,
        }
    }

    /// The verification key.
    pub fn verify_key(&self) -> MerkleVerifyKey {
        MerkleVerifyKey {
            root: self.tree[self.height][0],
            height: self.height as u8,
        }
    }

    /// Signatures remaining before the key is exhausted.
    pub fn remaining(&self) -> u32 {
        (1u32 << self.height) - self.next_leaf
    }

    /// Sign `msg`; consumes one one-time key. `None` when exhausted.
    pub fn sign(&mut self, msg: &[u8]) -> Option<Signature> {
        if self.remaining() == 0 {
            return None;
        }
        let leaf = self.next_leaf;
        self.next_leaf += 1;
        let digest = sha256_concat(&[b"bento-wots-msg", msg]);
        let d = digits(&digest);
        let wots: Vec<[u8; DIGEST_LEN]> = (0..L)
            .map(|c| chain(sk_element(&self.seed, leaf, c), d[c] as usize))
            .collect();
        let mut auth_path = Vec::with_capacity(self.height);
        let mut idx = leaf as usize;
        for level in 0..self.height {
            auth_path.push(self.tree[level][idx ^ 1]);
            idx >>= 1;
        }
        Some(Signature {
            leaf_index: leaf,
            wots,
            auth_path,
        })
    }
}

impl MerkleVerifyKey {
    /// Verify `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        if sig.wots.len() != L || sig.auth_path.len() != self.height as usize {
            return false;
        }
        if sig.leaf_index as u64 >= 1u64 << self.height {
            return false;
        }
        let digest = sha256_concat(&[b"bento-wots-msg", msg]);
        let d = digits(&digest);
        let tops: Vec<[u8; DIGEST_LEN]> = (0..L)
            .map(|c| chain(sig.wots[c], W - 1 - d[c] as usize))
            .collect();
        let mut node = leaf_hash(&tops);
        let mut idx = sig.leaf_index as usize;
        for sibling in &sig.auth_path {
            node = if idx & 1 == 0 {
                node_hash(&node, sibling)
            } else {
                node_hash(sibling, &node)
            };
            idx >>= 1;
        }
        node == self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signer() -> MerkleSigner {
        MerkleSigner::generate([7u8; 32], 3)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut s = signer();
        let vk = s.verify_key();
        let sig = s.sign(b"consensus document").unwrap();
        assert!(vk.verify(b"consensus document", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut s = signer();
        let vk = s.verify_key();
        let sig = s.sign(b"real").unwrap();
        assert!(!vk.verify(b"fake", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut s = signer();
        let vk = s.verify_key();
        let mut sig = s.sign(b"m").unwrap();
        sig.wots[3][0] ^= 1;
        assert!(!vk.verify(b"m", &sig));
        let mut sig2 = s.sign(b"m").unwrap();
        sig2.auth_path[0][5] ^= 0x80;
        assert!(!vk.verify(b"m", &sig2));
    }

    #[test]
    fn all_leaves_usable_then_exhausted() {
        let mut s = signer();
        let vk = s.verify_key();
        for i in 0..8 {
            let msg = format!("epoch {i}");
            let sig = s.sign(msg.as_bytes()).unwrap();
            assert_eq!(sig.leaf_index, i);
            assert!(vk.verify(msg.as_bytes(), &sig));
        }
        assert_eq!(s.remaining(), 0);
        assert!(s.sign(b"one too many").is_none());
    }

    #[test]
    fn signature_under_wrong_key_rejected() {
        let mut s1 = signer();
        let mut s2 = MerkleSigner::generate([8u8; 32], 3);
        let vk1 = s1.verify_key();
        let sig2 = s2.sign(b"m").unwrap();
        assert!(!vk1.verify(b"m", &sig2));
        let sig1 = s1.sign(b"m").unwrap();
        assert!(vk1.verify(b"m", &sig1));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut s = signer();
        let vk = s.verify_key();
        let sig = s.sign(b"wire").unwrap();
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), sig.encoded_len());
        let back = Signature::from_bytes(&bytes).unwrap();
        assert_eq!(back, sig);
        assert!(vk.verify(b"wire", &back));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Signature::from_bytes(&[]).is_none());
        assert!(Signature::from_bytes(&[0; 5]).is_none());
        let mut s = signer();
        let mut bytes = s.sign(b"x").unwrap().to_bytes();
        bytes.pop();
        assert!(Signature::from_bytes(&bytes).is_none());
        bytes.push(0);
        bytes.push(0);
        assert!(Signature::from_bytes(&bytes).is_none());
    }

    #[test]
    fn out_of_range_leaf_index_rejected() {
        let mut s = signer();
        let vk = s.verify_key();
        let mut sig = s.sign(b"m").unwrap();
        sig.leaf_index = 1 << 10;
        assert!(!vk.verify(b"m", &sig));
    }
}
