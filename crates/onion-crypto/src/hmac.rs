//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//!
//! HKDF is how circuit handshakes expand a shared secret into the forward
//! and backward onion keys, and how FS Protect derives its file keys.

use crate::sha256::{Sha256, DIGEST_LEN};

const BLOCK: usize = 64;

/// HMAC-SHA256 of `msg` under `key`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256_parts(key, &[msg])
}

/// HMAC over multiple message parts, streamed straight into the inner hash
/// (the message is never concatenated into a scratch buffer).
pub fn hmac_sha256_parts(key: &[u8], parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        k[..DIGEST_LEN].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    for p in parts {
        inner.update(p);
    }
    let mut h = Sha256::new();
    h.update(&opad);
    h.update(&inner.finalize());
    h.finalize()
}

/// HKDF-Extract: a pseudorandom key from input keying material and salt.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: `len` bytes of output keying material from a PRK and info.
///
/// # Panics
/// If `len > 255 * 32` (the RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        t = block.to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block[..take]);
        counter = counter.wrapping_add(1);
    }
    out
}

/// Full HKDF: extract then expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

/// Constant-time equality for MACs and tokens.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let out = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            hex(&out),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: oversized key is hashed first.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let out = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&out),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let okm = hkdf(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3: empty salt and info.
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0b; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn hkdf_expand_rejects_oversize() {
        let prk = [0u8; 32];
        let r = std::panic::catch_unwind(|| hkdf_expand(&prk, b"", 255 * 32 + 1));
        assert!(r.is_err());
    }

    #[test]
    fn ct_eq_behaves() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn parts_equals_concat() {
        assert_eq!(
            hmac_sha256_parts(b"k", &[b"a", b"bc", b""]),
            hmac_sha256(b"k", b"abc")
        );
    }
}
