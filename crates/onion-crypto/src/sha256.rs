//! SHA-256 (FIPS 180-4), implemented from the specification.
//!
//! Supports both one-shot hashing ([`sha256`]) and incremental hashing
//! ([`Sha256`]). Verified against the NIST test vectors in the unit tests.

/// Digest length in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// New hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            Self::compress_into(&mut self.state, block.try_into().expect("64-byte block"));
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
        self
    }

    /// Finish and produce the digest.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        self.clone_finalize()
    }

    /// Produce the digest of everything absorbed so far without consuming
    /// the hasher — the running state is untouched and can keep absorbing.
    ///
    /// Equivalent to `self.clone().finalize()` but pads into a scratch
    /// block instead of cloning the whole hasher.
    pub fn clone_finalize(&self) -> [u8; DIGEST_LEN] {
        let mut out = [0u8; DIGEST_LEN];
        self.finalize_into(&mut out);
        out
    }

    /// [`Self::clone_finalize`] writing into a caller-provided buffer.
    pub fn finalize_into(&self, out: &mut [u8; DIGEST_LEN]) {
        let mut state = self.state;
        let bit_len = self.total_len.wrapping_mul(8);
        // Build the final padded block(s) directly: the buffered tail,
        // 0x80, zeros, then the 8-byte big-endian bit length. Two blocks
        // when the tail leaves fewer than 9 free bytes.
        let mut block = [0u8; 64];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        block[self.buf_len] = 0x80;
        if self.buf_len >= 56 {
            Self::compress_into(&mut state, &block);
            block = [0u8; 64];
        }
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        Self::compress_into(&mut state, &block);
        for (chunk, w) in out.chunks_exact_mut(4).zip(state.iter()) {
            chunk.copy_from_slice(&w.to_be_bytes());
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        Self::compress_into(&mut self.state, block);
    }

    /// The FIPS 180-4 compression function, fully unrolled.
    ///
    /// The message schedule is kept as a rolling 16-word window updated in
    /// place (`w[i & 15]`), instead of a precomputed 64-entry array — half
    /// the memory traffic. The eight working variables rotate by *renaming*
    /// across the unrolled rounds rather than by shifting eight registers
    /// every round, so each round is just the two Σ/ch/maj adds.
    fn compress_into(state: &mut [u32; 8], block: &[u8; 64]) {
        let mut w = [0u32; 16];
        for (wi, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
            *wi = u32::from_be_bytes(chunk.try_into().expect("4-byte word"));
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

        // One round: consumes the round constant + schedule word, writes the
        // `$d`/`$h` slots. Callers rotate the variable names between rounds.
        macro_rules! rnd {
            ($a:ident, $b:ident, $c:ident, $d:ident,
             $e:ident, $f:ident, $g:ident, $h:ident, $i:expr, $w:expr) => {
                let t1 = $h
                    .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
                    .wrapping_add(($e & $f) ^ (!$e & $g))
                    .wrapping_add(K[$i])
                    .wrapping_add($w);
                let t2 = ($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
                    .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(t2);
            };
        }
        // Schedule word for round $i (16..64), updating the rolling window.
        macro_rules! wnext {
            ($i:expr) => {{
                let w15 = w[($i + 1) & 15];
                let w2 = w[($i + 14) & 15];
                let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
                let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
                w[$i & 15] = w[$i & 15]
                    .wrapping_add(s0)
                    .wrapping_add(w[($i + 9) & 15])
                    .wrapping_add(s1);
                w[$i & 15]
            }};
        }
        // Eight rounds with the register rotation spelled out; `$w` maps a
        // round index to its schedule word (direct read or rolling update).
        macro_rules! round8 {
            ($base:expr, $w:ident) => {
                rnd!(a, b, c, d, e, f, g, h, $base, $w!($base));
                rnd!(h, a, b, c, d, e, f, g, $base + 1, $w!($base + 1));
                rnd!(g, h, a, b, c, d, e, f, $base + 2, $w!($base + 2));
                rnd!(f, g, h, a, b, c, d, e, $base + 3, $w!($base + 3));
                rnd!(e, f, g, h, a, b, c, d, $base + 4, $w!($base + 4));
                rnd!(d, e, f, g, h, a, b, c, $base + 5, $w!($base + 5));
                rnd!(c, d, e, f, g, h, a, b, $base + 6, $w!($base + 6));
                rnd!(b, c, d, e, f, g, h, a, $base + 7, $w!($base + 7));
            };
        }
        macro_rules! wdirect {
            ($i:expr) => {
                w[$i & 15]
            };
        }
        round8!(0, wdirect);
        round8!(8, wdirect);
        round8!(16, wnext);
        round8!(24, wnext);
        round8!(32, wnext);
        round8!(40, wnext);
        round8!(48, wnext);
        round8!(56, wnext);

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 of the concatenation of several byte strings, without allocating.
pub fn sha256_concat(parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Render a digest as lowercase hex (debugging, descriptor ids).
pub fn digest_hex(digest: &[u8; DIGEST_LEN]) -> String {
    hex(digest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_empty_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block_vector() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..300u16).map(|i| (i % 251) as u8).collect();
        let whole = sha256(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn concat_helper_matches_manual_concat() {
        let a = b"hello ";
        let b = b"world";
        let joined: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(sha256_concat(&[a, b]), sha256(&joined));
    }
}
